//! `stcam-suite` is the workspace umbrella package: it hosts the
//! cross-crate integration tests in `tests/` and the runnable examples in
//! `examples/`, and re-exports the member crates for convenience.

pub use stcam;
pub use stcam_camnet;
pub use stcam_codec;
pub use stcam_geo;
pub use stcam_index;
pub use stcam_net;
pub use stcam_world;
