#!/usr/bin/env bash
# Regenerates every table and figure of the evaluation into results/.
# Usage: scripts/run_evaluation.sh
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build -p stcam-bench --release --bins
for bin in tab1_workload fig4_ingest_scaling fig5_range_latency fig6_knn \
           fig7_aggregate fig8_load_balance fig9_stitching fig10_continuous \
           tab2_comm_cost tab3_recovery fig11_camera_scale fig12_rebalance \
           fig13_index_ablation fig14_concurrent_clients fig15_ingest_loss \
           tab4_repair fig16_archive_scale; do
    echo "=== $bin ==="
    cargo run -p stcam-bench --release --bin "$bin" 2>/dev/null | tee "results/$bin.txt"
    echo
done
echo "all experiment outputs written to results/"
