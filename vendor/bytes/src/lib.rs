//! Offline stand-in for the `bytes` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors API-compatible subsets of its
//! external dependencies (wired up through `[patch.crates-io]`). This crate
//! provides exactly the `Buf` / `BufMut` / `BytesMut` surface `stcam-codec`
//! and friends use; semantics match the real crate for that subset
//! (including panics on buffer overruns).

/// Read access to a contiguous byte buffer that is consumed from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes from the front.
    ///
    /// # Panics
    ///
    /// Panics when `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `true` while at least one byte is unread.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than four bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.copy_to_slice(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than four bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        let mut bytes = [0u8; 4];
        self.copy_to_slice(&mut bytes);
        f32::from_le_bytes(bytes)
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than eight bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        let mut bytes = [0u8; 8];
        self.copy_to_slice(&mut bytes);
        f64::from_le_bytes(bytes)
    }

    /// Fills `dst` from the front of the buffer.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// A growable byte buffer that is written at the back and consumed from the
/// front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            head: 0,
        }
    }

    /// Unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// `true` when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` unread bytes.
    ///
    /// # Panics
    ///
    /// Panics when `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to past end of buffer");
        let front = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        BytesMut {
            data: front,
            head: 0,
        }
    }

    /// Copies the unread bytes into a fresh `Vec`.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.head..].to_vec()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.head += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_buf_consumes_from_front() {
        let mut s: &[u8] = &[1, 2, 3, 4, 5, 6];
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.get_u32_le(), u32::from_le_bytes([2, 3, 4, 5]));
        assert_eq!(s.remaining(), 1);
        assert!(s.has_remaining());
        s.advance(1);
        assert!(!s.has_remaining());
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        let front = b.split_to(2);
        assert_eq!(&front[..], &[1, 2]);
        assert_eq!(b.to_vec(), vec![3]);
        b.advance(1);
        assert!(b.is_empty());
    }

    #[test]
    fn indexing_through_deref() {
        let mut b = BytesMut::from(&[9u8, 8, 7][..]);
        assert_eq!(b[0..2], [9, 8]);
        b[1] = 0;
        assert_eq!(b.to_vec(), vec![9, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overrun_panics() {
        let mut s: &[u8] = &[1];
        s.advance(2);
    }
}
