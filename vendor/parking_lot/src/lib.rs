//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock`
//! / `read` / `write` return guards directly rather than `Result`s. A
//! poisoned std lock (a panic while held) is ignored and the inner data
//! returned anyway, matching parking_lot's behaviour of not tracking poison.

use std::fmt;
use std::sync::PoisonError;

/// Re-exported guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Re-exported guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not track poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Mutex { .. }")
    }
}

/// A reader-writer lock that does not track poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_still_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
