//! Offline stand-in for the `rand` crate.
//!
//! Implements the `Rng` / `SeedableRng` subset the workspace uses
//! (`gen_range` over half-open and inclusive ranges, `gen_bool`, `gen`)
//! backed by a SplitMix64 `StdRng`. Deterministic for a given seed, which
//! the simulation code relies on; statistical quality is sufficient for
//! synthetic-workload generation, not cryptography.

use std::ops::{Range, RangeInclusive};

/// A source of randomness. All other methods derive from [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform sample over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly over their whole domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Scale by 2^53 - 1 so `end` itself is reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// Construction of reproducible generators from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    ///
    /// Passes through every 64-bit state exactly once, has no weak seeds
    /// (even `seed_from_u64(0)` produces a well-mixed stream), and is a
    /// handful of arithmetic ops per draw.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let g = rng.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_full_domain_types() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u64 = rng.gen();
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
