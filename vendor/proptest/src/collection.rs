//! Collection strategies: `collection::vec(element, size)`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size specifications for [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_name("vec_sizes");
        let s = vec(0u8..10, 2..5);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut rng = TestRng::from_name("vec_exact");
        let s = vec(0u64..100, 64);
        assert_eq!(s.generate(&mut rng).len(), 64);
    }
}
