//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T`; build with [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any::<_>()")
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Reinterprets random bits, so infinities, NaNs, subnormals, and
    /// astronomical magnitudes all occur — the adversarial distribution
    /// bit-exact codec round-trips want.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! tuple_arbitrary {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    )*};
}

tuple_arbitrary! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_arbitrary_eventually_produces_specials() {
        let mut rng = TestRng::from_name("f64_specials");
        let mut saw_negative = false;
        let mut saw_huge = false;
        for _ in 0..10_000 {
            let v = f64::arbitrary(&mut rng);
            saw_negative |= v.is_sign_negative();
            saw_huge |= v.abs() > 1e100;
        }
        assert!(saw_negative && saw_huge);
    }

    #[test]
    fn tuple_any_compiles_and_runs() {
        let mut rng = TestRng::from_name("tuple_any");
        let _: (u32, u32) = Arbitrary::arbitrary(&mut rng);
        let s = any::<(u8, bool, u64)>();
        let _ = s.generate(&mut rng);
    }
}
