//! The per-test driver: configuration, case errors, and the deterministic
//! RNG that feeds every strategy.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!`; it is retried with
    /// fresh inputs and not counted.
    Reject(String),
    /// The property itself failed.
    Fail(String),
}

impl TestCaseError {
    /// A property failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// The deterministic value source handed to [`crate::Strategy::generate`].
///
/// SplitMix64 seeded from the test's name, so every run of a given test
/// binary generates the identical case sequence — a failure report's case
/// number is always reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub(crate) fn from_name(name: &str) -> Self {
        // FNV-1a folds the test name into the seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot pick below 0");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Runs `case` until `config.cases` successes accumulate.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first property failure,
/// or when rejections outnumber successes beyond any plausible assumption
/// density.
pub fn run(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let max_rejects = (config.cases as u64).saturating_mul(64).max(1024);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': too many rejected cases ({rejected}) — \
                     assumptions are unsatisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed}: {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn runner_counts_only_successes() {
        let mut calls = 0u32;
        run(
            "runner_counts_only_successes",
            &ProptestConfig::with_cases(10),
            |_| {
                calls += 1;
                if calls % 2 == 0 {
                    Err(TestCaseError::reject("every other"))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(calls, 19);
    }

    #[test]
    #[should_panic(expected = "failed at case 3")]
    fn runner_reports_failing_case() {
        let mut calls = 0u32;
        run(
            "runner_reports_failing_case",
            &ProptestConfig::default(),
            |_| {
                calls += 1;
                if calls > 3 {
                    Err(TestCaseError::fail("boom"))
                } else {
                    Ok(())
                }
            },
        );
    }
}
