//! Option strategies: `option::of(inner)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `None` about a quarter of the time and
/// `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_produces_both_variants() {
        let mut rng = TestRng::from_name("option_of");
        let s = of(0u32..100);
        let draws: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(Option::is_none));
        assert!(draws.iter().any(Option::is_some));
        assert!(draws.iter().flatten().all(|&v| v < 100));
    }
}
