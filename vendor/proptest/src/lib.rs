//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic property-testing harness covering the API subset the
//! workspace's `tests/properties.rs` files use: the `proptest!` macro,
//! `Strategy` with `prop_map`, `any::<T>()`, range/tuple/vec/option/string
//! strategies, `prop::sample::Index`, assumption rejection, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design: no shrinking (a failure
//! reports the case number and message; re-running is deterministic, so the
//! failing case is reproducible), and value generation is driven by a fixed
//! per-test seed derived from the test name rather than an OS entropy
//! source.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to the strategy modules (`prop::collection::vec`,
    /// `prop::sample::Index`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each `fn` item becomes a `#[test]` that runs
/// its body `ProptestConfig::cases` times with freshly generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one test item per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::test_runner::run(stringify!($name), &config, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Rejects the current test case (retried with fresh inputs, not counted
/// towards the case total) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
