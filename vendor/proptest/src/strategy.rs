//! The `Strategy` trait and the primitive strategies: numeric ranges,
//! tuples, string patterns, and `prop_map`.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for every generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String pattern strategy. The real crate interprets the pattern as a
/// regex; this stand-in treats every pattern as ".*" and produces short
/// arbitrary strings (mixing ASCII and multi-byte characters), which is
/// what the round-trip and never-panics properties in this workspace
/// actually exercise.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const WIDE: [char; 8] = ['é', 'λ', '中', '🦀', 'Ω', 'ß', '→', '\u{0}'];
        let len = rng.below(17);
        (0..len)
            .map(|_| {
                let r = rng.next_u64();
                if r.is_multiple_of(4) {
                    WIDE[(r >> 8) as usize % WIDE.len()]
                } else {
                    // Printable ASCII.
                    char::from(0x20 + ((r >> 8) % 0x5F) as u8)
                }
            })
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy_tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = rng();
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = rng();
        let (a, b, c) = (0u8..4, 0u32..9, 0.0..1.0f64).generate(&mut rng);
        assert!(a < 4 && b < 9 && (0.0..1.0).contains(&c));
    }

    #[test]
    fn string_pattern_generates_valid_utf8() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = ".*".generate(&mut rng);
            assert!(s.chars().count() <= 16);
        }
    }
}
