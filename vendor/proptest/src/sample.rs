//! Sampling helpers: `sample::Index`, an arbitrary index scaled into any
//! collection's bounds at use time.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A position drawn uniformly, resolved against a concrete length with
/// [`Index::index`]. Generate with `any::<prop::sample::Index>()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// This index scaled into `0..len`.
    ///
    /// # Panics
    ///
    /// Panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_bounds_for_any_len() {
        let mut rng = TestRng::from_name("sample_index");
        for _ in 0..1000 {
            let ix = Index::arbitrary(&mut rng);
            for len in [1usize, 2, 7, 1000] {
                assert!(ix.index(len) < len);
            }
        }
    }
}
