//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the subset of semantics the network
//! fabric relies on: multi-producer **multi-consumer** channels whose
//! `Receiver` is `Sync` (unlike `std::sync::mpsc`), blocking/timeout/non-
//! blocking receives, and disconnect detection when the last peer drops.

pub mod channel;
