//! MPMC channels built on `Mutex<VecDeque>` + `Condvar`.
//!
//! Correctness over throughput: the simulated fabric moves thousands of
//! messages per second, not millions, so a single well-understood lock per
//! channel is the right trade-off for an offline stand-in.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message arrives or the last sender disconnects.
    recv_ready: Condvar,
    /// Signalled when capacity frees up or the last receiver disconnects.
    send_ready: Condvar,
    capacity: Option<usize>,
}

fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// while the channel is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap))
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last sender drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable and `Sync`; the channel
/// disconnects for senders when the last receiver drops.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver has dropped. The
/// unsent message is handed back.
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message available.
    Timeout,
    /// Every sender dropped and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// Every sender dropped and the queue is drained.
    Disconnected,
}

impl<T> Sender<T> {
    /// Delivers `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the value back when every receiver has dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cap) = self.shared.capacity {
            while inner.receivers > 0 && inner.queue.len() >= cap {
                inner = self
                    .shared
                    .send_ready
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.recv_ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    fn pop(inner: &mut Inner<T>, shared: &Shared<T>) -> Option<T> {
        let value = inner.queue.pop_front();
        if value.is_some() && shared.capacity.is_some() {
            shared.send_ready.notify_one();
        }
        value
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is drained and every sender
    /// has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = Self::pop(&mut inner, &self.shared) {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .recv_ready
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the deadline passes,
    /// [`RecvTimeoutError::Disconnected`] when the channel is drained and
    /// every sender has dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = Self::pop(&mut inner, &self.shared) {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .recv_ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Takes a queued message without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally every sender has
    /// dropped.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        match Self::pop(&mut inner, &self.shared) {
            Some(v) => Ok(v),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.shared.recv_ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            self.shared.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
        handle.join().unwrap();
    }

    #[test]
    fn disconnect_when_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx2.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn receiver_is_sync_and_shareable() {
        let (tx, rx) = unbounded::<u32>();
        let rx = Arc::new(rx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = Arc::clone(&rx);
            handles.push(thread::spawn(move || {
                let mut got = 0;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn bounded_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap().unwrap();
    }
}
