//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/API surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_function` / `bench_with_input` / `Bencher::iter` / `black_box`)
//! with a simple calibrated-timing loop instead of criterion's statistical
//! machinery: each benchmark is auto-scaled to a target measurement window
//! and its mean iteration time printed. Good enough to compare hot paths
//! across commits; not a statistics suite.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_WINDOW: Duration = Duration::from_millis(200);

/// Top-level benchmark driver; one per process, created by
/// [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _criterion: self }
    }
}

/// A named set of benchmarks, closed with [`BenchmarkGroup::finish`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Measures `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&id.into_benchmark_id());
        self
    }

    /// Measures `f` under `id`, passing it `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&id.into_benchmark_id());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A function name plus parameter, e.g. `knn_indexed/128`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Anything `bench_function` accepts as a benchmark label.
pub trait IntoBenchmarkId {
    /// Converts to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

/// Runs and times the benchmarked closure.
#[derive(Debug, Default)]
pub struct Bencher {
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, auto-scaling the iteration count until the measurement
    /// window is long enough to trust the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count filling the window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_WINDOW || n >= 1 << 30 {
                self.mean = Some(elapsed / n.max(1) as u32);
                self.iters = n;
                return;
            }
            // Aim straight for the window with a 2x safety factor.
            let scale = TARGET_WINDOW.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64;
            n = ((n as f64 * scale * 2.0) as u64).clamp(n + 1, 1 << 30);
        }
    }

    fn report(&self, id: &BenchmarkId) {
        match self.mean {
            Some(mean) => println!(
                "  {:<40} {:>12.3?} /iter  ({} iters)",
                id.label, mean, self.iters
            ),
            None => println!("  {:<40} (no measurement)", id.label),
        }
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean.is_some());
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.bench_function("sum", |b| b.iter(|| (0..10u64).product::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| k * 2)
        });
        g.finish();
    }
}
