//! Failure injection: crashes, failover, replication levels, partitions.

use stcam::{Cluster, ClusterConfig, Predicate, QueryMode, StcamError};
use stcam_camnet::{CameraId, Observation, ObservationId, Signature};
use stcam_geo::{BBox, Point, TimeInterval, Timestamp};
use stcam_net::{LinkModel, NodeId};
use stcam_world::{EntityClass, EntityId};

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0))
}

fn config(workers: usize, replication: usize) -> ClusterConfig {
    ClusterConfig::new(extent(), workers)
        .with_replication(replication)
        .with_link(LinkModel::instant())
}

fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
    Observation {
        id: ObservationId::compose(CameraId(0), seq),
        camera: CameraId(0),
        time: Timestamp::from_millis(t_ms),
        position: Point::new(x, y),
        class: EntityClass::Car,
        signature: Signature::latent_for_entity(seq),
        truth: Some(EntityId(seq)),
    }
}

fn spread_batch(n: u64) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            obs(
                i,
                (i % 60) * 1000,
                (i as f64 * 41.0) % 1600.0,
                (i as f64 * 59.0) % 1600.0,
            )
        })
        .collect()
}

fn window_all() -> TimeInterval {
    TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10_000))
}

#[test]
fn replication_factor_one_survives_single_failure() {
    let cluster = Cluster::launch(config(6, 1)).unwrap();
    cluster.ingest(spread_batch(600)).unwrap();
    cluster.flush().unwrap();
    cluster.kill_worker(NodeId(4));
    assert_eq!(cluster.check_and_recover(), vec![NodeId(4)]);
    let after = cluster.range_query(extent(), window_all()).unwrap();
    assert_eq!(after.len(), 600, "data lost despite replication factor 1");
    cluster.shutdown();
}

#[test]
fn replication_factor_two_survives_two_failures() {
    let cluster = Cluster::launch(config(6, 2)).unwrap();
    cluster.ingest(spread_batch(600)).unwrap();
    cluster.flush().unwrap();
    // Kill two adjacent ring members (the worst case for r = 2).
    cluster.kill_worker(NodeId(2));
    cluster.kill_worker(NodeId(3));
    let mut failed = cluster.check_and_recover();
    failed.sort();
    assert_eq!(failed, vec![NodeId(2), NodeId(3)]);
    let after = cluster.range_query(extent(), window_all()).unwrap();
    assert_eq!(after.len(), 600, "data lost despite replication factor 2");
    cluster.shutdown();
}

#[test]
fn no_replication_loses_exactly_the_dead_shard() {
    let cluster = Cluster::launch(config(5, 0)).unwrap();
    cluster.ingest(spread_batch(500)).unwrap();
    cluster.flush().unwrap();
    let shard = cluster
        .stats()
        .unwrap()
        .workers
        .iter()
        .find(|(w, _)| *w == NodeId(2))
        .map(|(_, s)| s.primary_observations)
        .unwrap();
    assert!(shard > 0, "victim shard empty, test is vacuous");
    cluster.kill_worker(NodeId(2));
    cluster.check_and_recover();
    let after = cluster.range_query(extent(), window_all()).unwrap().len() as u64;
    assert_eq!(after, 500 - shard);
    cluster.shutdown();
}

#[test]
fn ingest_continues_after_failover() {
    let cluster = Cluster::launch(config(4, 1)).unwrap();
    cluster.ingest(spread_batch(200)).unwrap();
    cluster.flush().unwrap();
    cluster.kill_worker(NodeId(1));
    cluster.check_and_recover();
    // New data lands on the surviving workers, including cells formerly
    // owned by the dead one.
    let fresh: Vec<Observation> = (1000..1200u64)
        .map(|i| {
            obs(
                i,
                90_000,
                (i as f64 * 7.0) % 1600.0,
                (i as f64 * 13.0) % 1600.0,
            )
        })
        .collect();
    cluster.ingest(fresh).unwrap();
    cluster.flush().unwrap();
    let total = cluster.range_query(extent(), window_all()).unwrap().len();
    assert_eq!(total, 400);
    cluster.shutdown();
}

#[test]
fn repeated_failures_degrade_gracefully() {
    let cluster = Cluster::launch(config(6, 2)).unwrap();
    cluster.ingest(spread_batch(600)).unwrap();
    cluster.flush().unwrap();
    let mut alive = 6;
    for victim in [2u32, 5, 1] {
        cluster.kill_worker(NodeId(victim));
        cluster.check_and_recover();
        alive -= 1;
        let count = cluster.range_query(extent(), window_all()).unwrap().len();
        assert!(count > 0, "cluster empty after {} failures", 6 - alive);
        // Queries remain serviceable from the survivors.
        let stats = cluster.stats().unwrap();
        assert_eq!(stats.workers.len(), alive);
    }
    cluster.shutdown();
}

#[test]
fn continuous_queries_survive_failover() {
    let cluster = Cluster::launch(config(4, 1)).unwrap();
    let region = extent(); // matches everywhere, so every worker is involved
    let id = cluster
        .register_continuous(Predicate {
            region,
            class: None,
        })
        .unwrap();
    cluster.ingest(spread_batch(50)).unwrap();
    cluster.flush().unwrap();
    let first = cluster.poll_notifications(std::time::Duration::from_secs(2));
    assert!(first.iter().any(|n| n.query == id));

    cluster.kill_worker(NodeId(3));
    cluster.check_and_recover();
    // Matches must still arrive for data landing in the failed worker's
    // former cells (now owned by its successor).
    let partition = cluster.partition();
    let moved_cell = partition
        .cells_of(partition.workers()[3 % partition.workers().len()])
        .into_iter()
        .next();
    assert!(moved_cell.is_some());
    let fresh: Vec<Observation> = (2000..2100u64)
        .map(|i| {
            obs(
                i,
                95_000,
                (i as f64 * 11.0) % 1600.0,
                (i as f64 * 3.0) % 1600.0,
            )
        })
        .collect();
    cluster.ingest(fresh).unwrap();
    cluster.flush().unwrap();
    let notifications = cluster.poll_notifications(std::time::Duration::from_secs(2));
    let matched: usize = notifications
        .iter()
        .filter(|n| n.query == id)
        .map(|n| n.matches.len())
        .sum();
    assert_eq!(matched, 100, "matches lost after failover");
    cluster.shutdown();
}

#[test]
fn query_against_fully_dead_cluster_errors() {
    let cluster = Cluster::launch(config(2, 0)).unwrap();
    cluster.ingest(spread_batch(10)).unwrap();
    cluster.flush().unwrap();
    cluster.kill_worker(NodeId(1));
    cluster.kill_worker(NodeId(2));
    cluster.check_and_recover();
    // All owners dead: routing has no quorum.
    let err = cluster.ingest(spread_batch(1)).unwrap_err();
    assert!(matches!(err, stcam::StcamError::NoQuorum));
    cluster.shutdown();
}

#[test]
fn message_loss_is_tolerated_by_rpc_retry_semantics() {
    // With 2% message loss, fire-and-forget ingest drops some batches but
    // queries (RPC with timeouts) either succeed or fail cleanly — no
    // hangs, no corruption.
    let cluster = Cluster::launch(
        ClusterConfig::new(extent(), 4)
            .with_replication(0)
            .with_link(LinkModel::instant().with_drop_probability(0.02)),
    )
    .unwrap();
    cluster.ingest(spread_batch(400)).unwrap();
    // flush() may time out if a ping or its reply is dropped; retry a few
    // times — this models an application-level retry loop.
    let mut flushed = false;
    for _ in 0..10 {
        if cluster.flush().is_ok() {
            flushed = true;
            break;
        }
    }
    assert!(flushed, "flush never succeeded under 2% loss");
    for _ in 0..10 {
        if let Ok(hits) = cluster.range_query(extent(), window_all()) {
            // Some ingest batches may have been lost entirely; bounded by
            // the loss rate, most data must be present.
            assert!(hits.len() > 300, "only {} of 400 survived", hits.len());
            cluster.shutdown();
            return;
        }
    }
    panic!("range query never succeeded under 2% loss");
}

#[test]
fn network_partition_isolates_and_heals() {
    let cluster = Cluster::launch(config(4, 1)).unwrap();
    cluster.ingest(spread_batch(200)).unwrap();
    cluster.flush().unwrap();
    // Isolate workers 3 and 4 from everyone else (coordinator stays in
    // the default group with workers 1 and 2).
    cluster.partition_network(&[&[NodeId(3), NodeId(4)]]);
    // Queries needing the isolated side fail cleanly (timeout), not hang.
    let err = cluster.range_query(extent(), window_all());
    assert!(err.is_err(), "query succeeded across a partition");
    // Recovery treats unreachable workers as failed and promotes replicas
    // on the reachable side.
    let mut failed = cluster.check_and_recover();
    failed.sort();
    assert_eq!(failed, vec![NodeId(3), NodeId(4)]);
    let after = cluster.range_query(extent(), window_all()).unwrap();
    // Workers 1+2 hold their own shards plus replicas of 3 (successor
    // chain 3→4→1 means worker 1 holds 3's replica; 4's replica lives on
    // 1 as well via the chain — with r=1 the replica of 4 is on 1).
    assert!(after.len() >= 150, "only {} of 200 reachable", after.len());
    // After healing, the formerly isolated workers are simply ignored
    // (they were failed out); fresh ingest still works.
    cluster.heal_network();
    cluster.ingest(spread_batch(50)).unwrap();
    cluster.flush().unwrap();
    cluster.shutdown();
}

#[test]
fn crash_window_strict_fails_and_best_effort_degrades_truthfully() {
    // Replication 0 and no recovery tick: the dead shard is simply gone,
    // so strict queries must refuse to answer and best-effort queries
    // must return the surviving subset and say exactly what is missing.
    let cluster =
        Cluster::launch(config(6, 0).with_rpc_timeout(std::time::Duration::from_millis(300)))
            .unwrap();
    cluster.ingest(spread_batch(600)).unwrap();
    cluster.flush().unwrap();
    let victim = NodeId(4);
    let dead_share = cluster
        .stats()
        .unwrap()
        .workers
        .iter()
        .find(|(w, _)| *w == victim)
        .map(|(_, s)| s.primary_observations)
        .unwrap();
    assert!(dead_share > 0, "victim shard empty, test is vacuous");
    cluster.kill_worker(victim);

    // Strict: the new error variant names the unanswered shard.
    let err = cluster.range_query(extent(), window_all()).unwrap_err();
    match err {
        StcamError::PartialFailure { ref missing } => {
            assert_eq!(missing, &vec![victim], "wrong missing set in {err}");
        }
        other => panic!("expected PartialFailure, got {other}"),
    }

    // Best effort: the surviving subset, with truthful accounting.
    let d = cluster
        .range_query_with(QueryMode::BestEffort, extent(), window_all())
        .unwrap();
    assert_eq!(d.value.len() as u64, 600 - dead_share);
    assert_eq!(d.completeness.missing, vec![victim]);
    assert!(!d.completeness.is_full());
    assert!(d.completeness.subset);
    assert!((d.completeness.fraction() - 5.0 / 6.0).abs() < 1e-9);
    let partition = cluster.partition();
    for o in &d.value {
        assert_ne!(
            partition.owner_of(o.position),
            victim,
            "an observation from the dead shard appeared in the result"
        );
    }

    // After recovery the victim is failed out of the ring and strict
    // queries answer again (minus the unreplicated shard's data).
    cluster.check_and_recover();
    let after = cluster.range_query(extent(), window_all()).unwrap();
    assert_eq!(after.len() as u64, 600 - dead_share);
    cluster.shutdown();
}

#[test]
fn auto_recovery_monitor_checks_immediately_on_enable() {
    let cluster =
        Cluster::launch(config(4, 1).with_rpc_timeout(std::time::Duration::from_millis(300)))
            .unwrap();
    cluster.ingest(spread_batch(200)).unwrap();
    cluster.flush().unwrap();
    cluster.kill_worker(NodeId(2));
    // An interval of an hour: only the immediate first check can recover
    // the cluster within the deadline below.
    cluster.enable_auto_recovery(std::time::Duration::from_secs(3600));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        if cluster.stats().is_ok_and(|s| s.workers.len() == 3) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "monitor never ran its immediate first check"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert_eq!(
        cluster.range_query(extent(), window_all()).unwrap().len(),
        200
    );
    // Shutdown must interrupt the hour-long wait, not sit it out.
    let start = std::time::Instant::now();
    cluster.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown waited out the monitor interval: {:?}",
        start.elapsed()
    );
}

#[test]
fn retention_sweeper_wait_is_interruptible() {
    let cluster = Cluster::launch(config(2, 0)).unwrap();
    cluster.ingest(spread_batch(50)).unwrap();
    cluster.flush().unwrap();
    cluster.enable_retention(
        stcam_geo::Duration::from_secs(3600),
        std::time::Duration::from_secs(3600),
    );
    // Give the sweeper a moment to enter its wait, then stop it.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let start = std::time::Instant::now();
    cluster.shutdown();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "shutdown waited out the sweeper interval: {:?}",
        start.elapsed()
    );
}

#[test]
fn retention_sweeper_bounds_the_archive() {
    use stcam_geo::Duration as GeoDuration;
    let cluster = Cluster::launch(config(3, 0)).unwrap();
    // Observations spanning 60 s of stream time.
    cluster.ingest(spread_batch(600)).unwrap();
    cluster.flush().unwrap();
    // Keep only the most recent 20 s (slice-granular).
    cluster.enable_retention(
        GeoDuration::from_secs(20),
        std::time::Duration::from_millis(100),
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let held = cluster.range_query(extent(), window_all()).unwrap();
        let oldest = held.iter().map(|o| o.time).min();
        if let Some(oldest) = oldest {
            // Newest is t=59s; horizon 20 s → cutoff 39 s, slice-granular
            // eviction keeps the slice containing it (30–40 s).
            if oldest >= Timestamp::from_secs(30) {
                assert!(held.len() < 600);
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sweeper never evicted"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    cluster.shutdown();
}
