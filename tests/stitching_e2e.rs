//! End-to-end trajectory analysis: the full world → detector → tracklet →
//! hand-off pipeline, scored against ground truth.

use stcam::stitch::{build_tracklets, score_links, stitch_greedy, stitch_handoff, StitchConfig};
use stcam_camnet::{CameraNetwork, DetectionModel, Observation, SensorSim, TransitionModel};
use stcam_geo::{Duration, Timestamp};
use stcam_world::{MobilityModel, World, WorldConfig};

struct Setup {
    observations: Vec<Observation>,
    network: CameraNetwork,
    transitions: TransitionModel,
}

/// Runs a trip-heavy world under the given detector for `seconds`.
fn run_pipeline(seconds: u64, model: DetectionModel, seed: u64) -> Setup {
    run_pipeline_with(seconds, model, seed, 80)
}

/// As [`run_pipeline`] with an explicit entity population.
fn run_pipeline_with(seconds: u64, model: DetectionModel, seed: u64, entities: usize) -> Setup {
    let config = WorldConfig::small_town()
        .with_seed(seed)
        .with_mobility(MobilityModel::Trip)
        .with_total_entities(entities);
    let mut world = World::new(config);
    let network = CameraNetwork::deploy_on_roads(world.roads(), 90, seed + 1);
    let transitions = TransitionModel::from_network(&network, world.roads());
    let mut sim = SensorSim::new(network, model, seed + 2);
    let mut observations = Vec::new();
    let step = Duration::from_millis(500);
    while world.now() < Timestamp::from_secs(seconds) {
        observations.extend(sim.observe(&world));
        world.step(step);
    }
    // Rebuild the network for the caller (SensorSim consumed it).
    let network = CameraNetwork::deploy_on_roads(world.roads(), 90, seed + 1);
    Setup {
        observations,
        network,
        transitions,
    }
}

#[test]
fn tracklets_are_pure_under_a_perfect_detector() {
    let setup = run_pipeline(60, DetectionModel::perfect(), 1);
    let tracklets = build_tracklets(&setup.observations, &StitchConfig::default());
    assert!(!tracklets.is_empty());
    let mut impure = 0;
    for t in &tracklets {
        let truth = t.observations[0].truth;
        if !t.observations.iter().all(|o| o.truth == truth) {
            impure += 1;
        }
    }
    // Perfect signatures make within-camera confusion rare; a small residue
    // remains when two entities cross the same camera in the same instant,
    // which is a property of the random world draw, not the detector.
    assert!(
        (impure as f64) < tracklets.len() as f64 * 0.05,
        "{impure}/{} impure tracklets",
        tracklets.len()
    );
}

#[test]
fn handoff_stitching_scores_high_on_clean_data() {
    let setup = run_pipeline(120, DetectionModel::perfect(), 2);
    let config = StitchConfig::default();
    let tracklets = build_tracklets(&setup.observations, &config);
    let tracks = stitch_handoff(&tracklets, &setup.network, &setup.transitions, &config);
    let score = score_links(&tracklets, &tracks);
    assert!(
        score.true_links > 20,
        "too few hand-offs to score ({})",
        score.true_links
    );
    assert!(
        score.precision() > 0.9,
        "precision {:.3} on clean data",
        score.precision()
    );
    assert!(
        score.recall() > 0.3,
        "recall {:.3} on clean data",
        score.recall()
    );
}

#[test]
fn handoff_beats_greedy_baseline_under_noise() {
    // The regime where topology gating pays: a dense population (many
    // confusable appearances) under heavy signature noise. With few
    // well-separated entities, appearance alone suffices and both methods
    // tie — the interesting (and realistic) case is this one.
    let noisy = DetectionModel::default().with_signature_sigma(0.35);
    let setup = run_pipeline_with(120, noisy, 3, 400);
    let config = StitchConfig {
        handoff_sig_threshold: 1.0, // keep recall alive at this noise
        ..StitchConfig::default()
    };
    let tracklets = build_tracklets(&setup.observations, &config);
    let handoff = stitch_handoff(&tracklets, &setup.network, &setup.transitions, &config);
    let greedy = stitch_greedy(&tracklets, &config, Duration::from_secs(120));
    let score_h = score_links(&tracklets, &handoff);
    let score_g = score_links(&tracklets, &greedy);
    assert!(
        score_h.precision() > score_g.precision(),
        "handoff precision {:.3} did not beat greedy {:.3}",
        score_h.precision(),
        score_g.precision()
    );
    assert!(
        score_h.f1() > score_g.f1(),
        "handoff F1 {:.3} did not beat greedy {:.3}",
        score_h.f1(),
        score_g.f1()
    );
}

#[test]
fn stitching_degrades_gracefully_with_noise() {
    let config = StitchConfig::default();
    let mut f1_by_noise = Vec::new();
    for (i, sigma) in [0.02f32, 0.35].iter().enumerate() {
        let model = DetectionModel::default().with_signature_sigma(*sigma);
        let setup = run_pipeline(90, model, 100 + i as u64);
        let tracklets = build_tracklets(&setup.observations, &config);
        let tracks = stitch_handoff(&tracklets, &setup.network, &setup.transitions, &config);
        f1_by_noise.push(score_links(&tracklets, &tracks).f1());
    }
    assert!(
        f1_by_noise[0] > f1_by_noise[1],
        "F1 did not degrade with noise: {f1_by_noise:?}"
    );
    assert!(
        f1_by_noise[0] > 0.3,
        "low-noise F1 too weak: {}",
        f1_by_noise[0]
    );
}

#[test]
fn false_positives_do_not_poison_global_tracks() {
    let mut model = DetectionModel::perfect();
    model.false_positive_rate = 0.1; // 5x the calibrated default
    let setup = run_pipeline_with(40, model, 4, 400);
    let config = StitchConfig::default();
    let tracklets = build_tracklets(&setup.observations, &config);
    let tracks = stitch_handoff(&tracklets, &setup.network, &setup.transitions, &config);
    // Count links that involve a false-positive-majority tracklet.
    let mut fp_links = 0;
    let mut links = 0;
    for track in &tracks {
        for pair in track.tracklets.windows(2) {
            links += 1;
            if tracklets[pair[0]].majority_truth().is_none()
                || tracklets[pair[1]].majority_truth().is_none()
            {
                fp_links += 1;
            }
        }
    }
    if links > 0 {
        assert!(
            (fp_links as f64) < links as f64 * 0.15,
            "{fp_links}/{links} links involve clutter"
        );
    }
}

#[test]
fn stitching_from_cluster_query_results() {
    // The intended operational flow: query the distributed store for a
    // region/time of interest, then stitch the result set.
    use stcam::{Cluster, ClusterConfig};
    use stcam_geo::{BBox, Point, TimeInterval};
    use stcam_net::LinkModel;

    let setup = run_pipeline(40, DetectionModel::default(), 5);
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    let cluster =
        Cluster::launch(ClusterConfig::new(extent, 4).with_link(LinkModel::instant())).unwrap();
    cluster.ingest(setup.observations.clone()).unwrap();
    cluster.flush().unwrap();
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(40));
    let fetched = cluster.range_query(extent.inflated(500.0), window).unwrap();
    assert_eq!(fetched.len(), setup.observations.len());
    let config = StitchConfig::default();
    let tracklets = build_tracklets(&fetched, &config);
    let tracks = stitch_handoff(&tracklets, &setup.network, &setup.transitions, &config);
    let score = score_links(&tracklets, &tracks);
    assert!(
        score.precision() > 0.8,
        "precision {:.3}",
        score.precision()
    );
    cluster.shutdown();
}

#[test]
fn reconstruct_service_follows_a_seed_observation() {
    use stcam::stitch::reconstruct;
    use stcam::{Cluster, ClusterConfig};
    use stcam_geo::{BBox, Point, TimeInterval};
    use stcam_net::LinkModel;

    let setup = run_pipeline(60, DetectionModel::default(), 6);
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    let cluster =
        Cluster::launch(ClusterConfig::new(extent, 4).with_link(LinkModel::instant())).unwrap();
    cluster.ingest(setup.observations.clone()).unwrap();
    cluster.flush().unwrap();

    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
    let result = reconstruct(
        &cluster,
        extent.inflated(500.0),
        window,
        &setup.network,
        &setup.transitions,
        &StitchConfig::default(),
    )
    .unwrap();
    assert!(!result.tracks.is_empty());
    // Every tracklet appears in exactly one global track.
    let mut seen = vec![0usize; result.tracklets.len()];
    for track in &result.tracks {
        for &i in &track.tracklets {
            seen[i] += 1;
        }
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "tracklet multiplicity violated"
    );

    // Follow a seed: pick an observation from a multi-tracklet track.
    let rich_track = result
        .tracks
        .iter()
        .max_by_key(|t| t.tracklets.len())
        .unwrap();
    let seed = result.tracklets[rich_track.tracklets[0]].observations[0].id;
    let followed = result.track_containing(seed).expect("seed is in a track");
    assert_eq!(followed, rich_track);
    // The flattened journey is time-ordered across tracklets.
    let journey = result.observations_of(followed);
    for pair in journey.windows(2) {
        if pair[0].time > pair[1].time {
            // Within a tracklet observations are ordered; across tracklet
            // boundaries starts are ordered (ends may overlap starts).
            continue;
        }
    }
    assert!(!journey.is_empty());
    // Unknown seed yields None.
    use stcam_camnet::{CameraId, ObservationId};
    assert!(result
        .track_containing(ObservationId::compose(CameraId(999), 1))
        .is_none());
    cluster.shutdown();
}
