//! The framework under realistic population churn: entities park and new
//! ones depart continuously, so identities appear and disappear in the
//! stream. Stitching must not merge a departed entity with its
//! replacement, and continuous queries must track the live population.

use std::time::Duration as StdDuration;

use stcam::stitch::{build_tracklets, score_links, stitch_handoff, StitchConfig};
use stcam::{Cluster, ClusterConfig, Predicate};
use stcam_camnet::{CameraNetwork, DetectionModel, Observation, SensorSim, TransitionModel};
use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
use stcam_net::LinkModel;
use stcam_world::{MobilityModel, World, WorldConfig};

fn churny_pipeline(
    seconds: u64,
    seed: u64,
) -> (World, CameraNetwork, TransitionModel, Vec<Observation>) {
    let config = WorldConfig::small_town()
        .with_seed(seed)
        .with_mobility(MobilityModel::Trip)
        .with_total_entities(150)
        .with_churn_per_minute(1.2); // 2% of the population per second
    let mut world = World::new(config);
    let network = CameraNetwork::deploy_on_roads(world.roads(), 80, seed + 1);
    let transitions = TransitionModel::from_network(&network, world.roads());
    let mut sim = SensorSim::new(network, DetectionModel::default(), seed + 2);
    let mut observations = Vec::new();
    while world.now() < Timestamp::from_secs(seconds) {
        observations.extend(sim.observe(&world));
        world.step(Duration::from_millis(500));
    }
    let network = CameraNetwork::deploy_on_roads(world.roads(), 80, seed + 1);
    (world, network, transitions, observations)
}

#[test]
fn churn_produces_distinct_identities_in_the_stream() {
    let (world, _network, _transitions, observations) = churny_pipeline(60, 1);
    assert!(
        world.departures() > 30,
        "only {} departures",
        world.departures()
    );
    let mut identities = std::collections::HashSet::new();
    for obs in &observations {
        if let Some(e) = obs.truth {
            identities.insert(e);
        }
    }
    // Some observed identities have since departed: the stream contains
    // entities that no longer exist, which is precisely what downstream
    // analysis must cope with.
    let alive: std::collections::HashSet<_> = world.entities().map(|e| e.id).collect();
    let departed_but_observed = identities.difference(&alive).count();
    assert!(
        departed_but_observed > 5,
        "only {departed_but_observed} departed identities were ever observed"
    );
}

#[test]
fn stitching_does_not_chain_across_identity_changes() {
    let (_world, network, transitions, observations) = churny_pipeline(90, 2);
    let config = StitchConfig::default();
    let tracklets = build_tracklets(&observations, &config);
    let tracks = stitch_handoff(&tracklets, &network, &transitions, &config);
    let score = score_links(&tracklets, &tracks);
    // Replacement entities have fresh signatures, so precision must stay
    // high despite identities swapping mid-stream.
    assert!(
        score.precision() > 0.9,
        "precision {:.3} under churn",
        score.precision()
    );
}

#[test]
fn cluster_serves_a_churning_stream_end_to_end() {
    let (world, _network, _transitions, observations) = churny_pipeline(45, 3);
    let extent = world.extent();
    let cluster = Cluster::launch(
        ClusterConfig::new(extent, 4)
            .with_replication(1)
            .with_link(LinkModel::instant()),
    )
    .unwrap();
    let fence = BBox::around(Point::new(1000.0, 1000.0), 500.0);
    let query = cluster
        .register_continuous(Predicate {
            region: fence,
            class: None,
        })
        .unwrap();
    let n = observations.len();
    for chunk in observations.chunks(500) {
        cluster.ingest(chunk.to_vec()).unwrap();
    }
    cluster.flush().unwrap();
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
    assert_eq!(
        cluster
            .range_query(extent.inflated(500.0), window)
            .unwrap()
            .len(),
        n
    );
    // Fence matches reference the same observations the range query sees.
    let expected_in_fence = cluster.range_query(fence, window).unwrap().len();
    let notified: usize = cluster
        .poll_notifications(StdDuration::from_secs(2))
        .iter()
        .filter(|nf| nf.query == query)
        .map(|nf| nf.matches.len())
        .sum();
    assert_eq!(notified, expected_in_fence);
    cluster.shutdown();
}
