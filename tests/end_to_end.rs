//! End-to-end pipeline: synthetic world → camera detections → distributed
//! cluster → queries, validated against a centralized oracle fed the exact
//! same observation stream.

use std::time::Duration as StdDuration;

use stcam::{CentralizedStore, Cluster, ClusterConfig};
use stcam_camnet::{CameraNetwork, DetectionModel, Observation, SensorSim};
use stcam_geo::{BBox, Duration, GridSpec, Point, TimeInterval, Timestamp};
use stcam_index::IndexConfig;
use stcam_net::LinkModel;
use stcam_world::{World, WorldConfig};

/// Streams `seconds` of simulated city life through the detector,
/// returning every produced observation.
fn generate_stream(seconds: u64, seed: u64) -> (World, Vec<Observation>) {
    let mut world = World::new(WorldConfig::small_town().with_seed(seed));
    let cams = CameraNetwork::deploy_on_roads(world.roads(), 60, seed + 1);
    let mut sim = SensorSim::new(cams, DetectionModel::default(), seed + 2);
    let mut all = Vec::new();
    let step = Duration::from_millis(500);
    while world.now() < Timestamp::from_secs(seconds) {
        all.extend(sim.observe(&world));
        world.step(step);
    }
    (world, all)
}

fn launch(workers: usize) -> Cluster {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    Cluster::launch(ClusterConfig::new(extent, workers).with_link(LinkModel::instant()))
        .expect("cluster launch")
}

fn oracle(stream: &[Observation]) -> CentralizedStore {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    let mut store =
        CentralizedStore::indexed(IndexConfig::new(extent, 50.0, Duration::from_secs(10)));
    store.ingest(stream.to_vec());
    store
}

#[test]
fn distributed_range_queries_match_centralized_oracle() {
    let (_world, stream) = generate_stream(20, 10);
    assert!(stream.len() > 500, "workload too small: {}", stream.len());
    let cluster = launch(5);
    cluster.ingest(stream.clone()).unwrap();
    cluster.flush().unwrap();
    let store = oracle(&stream);

    let queries = [
        (BBox::around(Point::new(1000.0, 1000.0), 300.0), (0, 20)),
        (BBox::around(Point::new(200.0, 1800.0), 500.0), (5, 15)),
        (
            BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)),
            (0, 20),
        ),
        (BBox::around(Point::new(1500.0, 300.0), 50.0), (10, 11)),
    ];
    for (region, (t0, t1)) in queries {
        let window = TimeInterval::new(Timestamp::from_secs(t0), Timestamp::from_secs(t1));
        let got: Vec<_> = cluster
            .range_query(region, window)
            .unwrap()
            .iter()
            .map(|o| o.id)
            .collect();
        let want: Vec<_> = store
            .range_query(region, window)
            .iter()
            .map(|o| o.id)
            .collect();
        assert_eq!(got, want, "range mismatch for {region} {window}");
    }
    cluster.shutdown();
}

#[test]
fn distributed_knn_matches_centralized_oracle() {
    let (_world, stream) = generate_stream(15, 20);
    let cluster = launch(4);
    cluster.ingest(stream.clone()).unwrap();
    cluster.flush().unwrap();
    let store = oracle(&stream);
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(15));

    for (x, y, k) in [
        (1000.0, 1000.0, 1),
        (1000.0, 1000.0, 32),
        (50.0, 50.0, 8),
        (1999.0, 1999.0, 100),
        (-20.0, 1000.0, 5), // outside the extent
    ] {
        let at = Point::new(x, y);
        let got: Vec<_> = cluster
            .knn_query(at, window, k)
            .unwrap()
            .iter()
            .map(|o| o.id)
            .collect();
        let want: Vec<_> = store
            .knn_query(at, window, k)
            .iter()
            .map(|o| o.id)
            .collect();
        assert_eq!(got, want, "knn mismatch at {at}, k={k}");
    }
    cluster.shutdown();
}

#[test]
fn distributed_heatmap_matches_centralized_oracle() {
    let (_world, stream) = generate_stream(12, 30);
    let cluster = launch(6);
    cluster.ingest(stream.clone()).unwrap();
    cluster.flush().unwrap();
    let store = oracle(&stream);
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    let window = TimeInterval::new(Timestamp::from_secs(2), Timestamp::from_secs(10));
    for bucket_size in [100.0, 250.0, 500.0] {
        let buckets = GridSpec::covering(extent, bucket_size);
        let got = cluster.heatmap(&buckets, window).unwrap();
        let want = store.heatmap(&buckets, window);
        assert_eq!(got, want, "heatmap mismatch at bucket size {bucket_size}");
    }
    cluster.shutdown();
}

#[test]
fn query_results_are_independent_of_worker_count() {
    let (_world, stream) = generate_stream(10, 40);
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10));
    let region = BBox::around(Point::new(900.0, 1100.0), 400.0);
    let mut reference: Option<Vec<_>> = None;
    for workers in [1, 2, 4, 8] {
        let cluster = launch(workers);
        cluster.ingest(stream.clone()).unwrap();
        cluster.flush().unwrap();
        let ids: Vec<_> = cluster
            .range_query(region, window)
            .unwrap()
            .iter()
            .map(|o| o.id)
            .collect();
        match &reference {
            None => reference = Some(ids),
            Some(want) => assert_eq!(&ids, want, "{workers}-worker cluster differs"),
        }
        cluster.shutdown();
    }
}

#[test]
fn eviction_ages_out_across_the_cluster() {
    let (_world, stream) = generate_stream(20, 50);
    let cluster = launch(4);
    cluster.ingest(stream.clone()).unwrap();
    cluster.flush().unwrap();
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    let full = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
    let before = cluster.range_query(extent, full).unwrap().len();
    cluster.evict_before(Timestamp::from_secs(10)).unwrap();
    let after = cluster.range_query(extent, full).unwrap();
    assert!(after.len() < before);
    // Eviction is slice-granular (10 s slices): nothing older than the
    // slice containing the cutoff survives.
    assert!(after.iter().all(|o| o.time >= Timestamp::from_secs(10)));
    cluster.shutdown();
}

#[test]
fn ingestion_is_complete_under_lan_latency() {
    // Same pipeline but with a non-instant link: ordering and the flush
    // barrier must still deliver every observation exactly once.
    let (_world, stream) = generate_stream(8, 60);
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    let cluster =
        Cluster::launch(ClusterConfig::new(extent, 4).with_link(LinkModel::lan())).unwrap();
    let n = stream.len();
    cluster.ingest(stream).unwrap();
    cluster.flush().unwrap();
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
    // Localisation noise can push border detections slightly outside the
    // nominal extent; inflate the query region to count every stored
    // observation.
    assert_eq!(
        cluster
            .range_query(extent.inflated(500.0), window)
            .unwrap()
            .len(),
        n
    );
    let stats = cluster.stats().unwrap();
    assert_eq!(stats.total_primary(), n as u64);
    cluster.shutdown();
}

#[test]
fn duplicate_coverage_is_preserved_not_deduplicated() {
    // An entity seen by two cameras at once yields two observations; the
    // framework must keep both (deduplication is an analysis choice, not
    // a storage one).
    let (_world, stream) = generate_stream(5, 70);
    let per_id = stream.len();
    let mut ids: Vec<_> = stream.iter().map(|o| o.id).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), per_id, "generator produced duplicate ids");
    let cluster = launch(3);
    cluster.ingest(stream).unwrap();
    cluster.flush().unwrap();
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
    assert_eq!(
        cluster
            .range_query(extent.inflated(500.0), window)
            .unwrap()
            .len(),
        per_id
    );
    cluster.shutdown();
}

#[test]
fn notifications_do_not_interfere_with_queries() {
    use stcam::Predicate;
    let (_world, stream) = generate_stream(10, 80);
    let cluster = launch(4);
    let region = BBox::around(Point::new(1000.0, 1000.0), 600.0);
    cluster
        .register_continuous(Predicate {
            region,
            class: None,
        })
        .unwrap();
    cluster.ingest(stream.clone()).unwrap();
    cluster.flush().unwrap();
    // Queries still exact while notifications pile up in the inbox.
    let store = oracle(&stream);
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10));
    let got = cluster.range_query(region, window).unwrap().len();
    assert_eq!(got, store.range_query(region, window).len());
    // And the notifications are themselves consistent: every match is in
    // the region.
    let notifications = cluster.poll_notifications(StdDuration::from_secs(2));
    assert!(!notifications.is_empty());
    for n in &notifications {
        for m in &n.matches {
            assert!(region.contains(m.position));
        }
    }
    cluster.shutdown();
}
