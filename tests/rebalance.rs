//! Online rebalancing and filtered queries, end to end.

use stcam::{Cluster, ClusterConfig, PartitionPolicy, Predicate};
use stcam_camnet::{CameraId, Observation, ObservationId, Signature};
use stcam_geo::{BBox, Point, TimeInterval, Timestamp};
use stcam_net::LinkModel;
use stcam_world::{EntityClass, EntityId};

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0))
}

fn config(workers: usize) -> ClusterConfig {
    ClusterConfig::new(extent(), workers)
        .with_replication(0)
        .with_link(LinkModel::instant())
}

fn obs(seq: u64, t_ms: u64, x: f64, y: f64, class: EntityClass) -> Observation {
    Observation {
        id: ObservationId::compose(CameraId(0), seq),
        camera: CameraId(0),
        time: Timestamp::from_millis(t_ms),
        position: Point::new(x, y),
        class,
        signature: Signature::latent_for_entity(seq),
        truth: Some(EntityId(seq)),
    }
}

/// A workload with 70% of traffic in a corner hotspot.
fn hotspot_batch(n: u64) -> Vec<Observation> {
    (0..n)
        .map(|i| {
            let (x, y) = if i % 10 < 7 {
                (
                    50.0 + (i as f64 * 7.3) % 300.0,
                    50.0 + (i as f64 * 11.7) % 300.0,
                )
            } else {
                ((i as f64 * 37.0) % 1600.0, (i as f64 * 53.0) % 1600.0)
            };
            obs(i, (i % 50) * 1000, x, y, EntityClass::Car)
        })
        .collect()
}

fn window_all() -> TimeInterval {
    TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10_000))
}

#[test]
fn rebalance_preserves_every_observation_and_improves_balance() {
    let cluster = Cluster::launch(config(6)).unwrap();
    cluster.ingest(hotspot_batch(3_000)).unwrap();
    cluster.flush().unwrap();
    let before_ids: Vec<_> = cluster
        .range_query(extent(), window_all())
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    assert_eq!(before_ids.len(), 3_000);
    let imbalance_before = cluster.stats().unwrap().imbalance();

    let report = cluster.rebalance().unwrap();
    assert!(report.cells_moved > 0, "hotspot workload should move cells");
    assert!(report.imbalance_after < report.imbalance_before);

    // Exactly the same answer set under the new map.
    let after_ids: Vec<_> = cluster
        .range_query(extent(), window_all())
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    assert_eq!(after_ids, before_ids);
    // And physically better balanced.
    let imbalance_after = cluster.stats().unwrap().imbalance();
    assert!(
        imbalance_after < imbalance_before,
        "stored imbalance {imbalance_after:.2} not better than {imbalance_before:.2}"
    );
    cluster.shutdown();
}

#[test]
fn queries_are_exact_for_all_query_types_after_rebalance() {
    let cluster = Cluster::launch(config(4)).unwrap();
    let batch = hotspot_batch(2_000);
    cluster.ingest(batch.clone()).unwrap();
    cluster.flush().unwrap();
    let region = BBox::around(Point::new(200.0, 200.0), 250.0);
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(30));
    let range_before: Vec<_> = cluster
        .range_query(region, window)
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    let knn_before: Vec<_> = cluster
        .knn_query(Point::new(800.0, 800.0), window, 20)
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    let buckets = stcam_geo::GridSpec::covering(extent(), 200.0);
    let heat_before = cluster.heatmap(&buckets, window).unwrap();

    cluster.rebalance().unwrap();

    let range_after: Vec<_> = cluster
        .range_query(region, window)
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    let knn_after: Vec<_> = cluster
        .knn_query(Point::new(800.0, 800.0), window, 20)
        .unwrap()
        .iter()
        .map(|o| o.id)
        .collect();
    let heat_after = cluster.heatmap(&buckets, window).unwrap();
    assert_eq!(range_after, range_before);
    assert_eq!(knn_after, knn_before);
    assert_eq!(heat_after, heat_before);
    cluster.shutdown();
}

#[test]
fn ingest_routes_correctly_after_rebalance() {
    let cluster = Cluster::launch(config(4)).unwrap();
    cluster.ingest(hotspot_batch(1_000)).unwrap();
    cluster.flush().unwrap();
    cluster.rebalance().unwrap();
    // Fresh traffic lands and is queryable under the new map.
    let fresh: Vec<Observation> = (10_000..10_500u64)
        .map(|i| {
            obs(
                i,
                60_000,
                (i as f64 * 13.0) % 1600.0,
                (i as f64 * 29.0) % 1600.0,
                EntityClass::Car,
            )
        })
        .collect();
    cluster.ingest(fresh).unwrap();
    cluster.flush().unwrap();
    assert_eq!(
        cluster.range_query(extent(), window_all()).unwrap().len(),
        1_500
    );
    cluster.shutdown();
}

/// A hotspot in an arbitrary corner of the extent (same shape as
/// `hotspot_batch`, which anchors at the south-west corner).
fn corner_batch(start: u64, n: u64, cx: f64, cy: f64) -> Vec<Observation> {
    (start..start + n)
        .map(|i| {
            let (x, y) = if i % 10 < 7 {
                (
                    cx + (i as f64 * 7.3) % 300.0,
                    cy + (i as f64 * 11.7) % 300.0,
                )
            } else {
                ((i as f64 * 37.0) % 1600.0, (i as f64 * 53.0) % 1600.0)
            };
            obs(i, (i % 50) * 1000, x, y, EntityClass::Car)
        })
        .collect()
}

/// Regression: when the hotspot migrates between epochs, cells move away
/// from a worker and later move back to it. The returning copies must be
/// re-accepted — a stale entry in the ingest dedup set used to swallow
/// them silently.
#[test]
fn repeated_rebalances_with_shifting_hotspots_lose_nothing() {
    let cluster = Cluster::launch(config(6)).unwrap();
    let epochs = [(50.0, 50.0), (1250.0, 1250.0), (50.0, 50.0)];
    let per_epoch = 2_000u64;
    for (round, &(cx, cy)) in epochs.iter().enumerate() {
        let start = round as u64 * per_epoch;
        cluster
            .ingest(corner_batch(start, per_epoch, cx, cy))
            .unwrap();
        cluster.flush().unwrap();
        cluster.rebalance().unwrap();
        let held = cluster.range_query(extent(), window_all()).unwrap().len();
        assert_eq!(
            held,
            (round as u64 + 1) as usize * per_epoch as usize,
            "epoch {round}: rebalance lost observations"
        );
    }
    cluster.shutdown();
}

#[test]
fn rebalance_with_replication_preserves_data_and_coverage() {
    let cluster = Cluster::launch(
        ClusterConfig::new(extent(), 4)
            .with_replication(1)
            .with_link(LinkModel::instant()),
    )
    .unwrap();
    cluster.ingest(hotspot_batch(1_000)).unwrap();
    cluster.flush().unwrap();

    // The old factor-0 guard is gone: the move runs copy-then-cutover
    // through the repair streamer and keeps the replica chains covered.
    let report = cluster.rebalance().unwrap();
    assert!(report.cells_moved > 0, "hotspot workload should move cells");
    assert_eq!(
        cluster.range_query(extent(), window_all()).unwrap().len(),
        1_000,
        "rebalance under replication lost or duplicated data"
    );
    assert_eq!(
        cluster.under_replicated_cells(),
        0,
        "moved cells left without their replica copies"
    );
    cluster.shutdown();
}

#[test]
fn continuous_queries_keep_matching_after_rebalance() {
    let cluster = Cluster::launch(config(4)).unwrap();
    let fence = BBox::around(Point::new(200.0, 200.0), 300.0);
    let id = cluster
        .register_continuous(Predicate {
            region: fence,
            class: None,
        })
        .unwrap();
    cluster.ingest(hotspot_batch(1_000)).unwrap();
    cluster.flush().unwrap();
    let _ = cluster.poll_notifications(std::time::Duration::from_millis(300));

    cluster.rebalance().unwrap();

    // Matches for traffic ingested after the rebalance still arrive.
    let fresh: Vec<Observation> = (20_000..20_100u64)
        .map(|i| obs(i, 70_000, 200.0, 200.0, EntityClass::Car))
        .collect();
    cluster.ingest(fresh).unwrap();
    cluster.flush().unwrap();
    let matched: usize = cluster
        .poll_notifications(std::time::Duration::from_secs(2))
        .iter()
        .filter(|n| n.query == id)
        .map(|n| n.matches.len())
        .sum();
    assert_eq!(matched, 100);
    cluster.shutdown();
}

#[test]
fn load_aware_launch_equals_uniform_launch_plus_rebalance() {
    // Launching with a measured load profile and rebalancing onto the
    // same measurements must produce comparable balance.
    let batch = hotspot_batch(4_000);
    // Path A: uniform launch then rebalance.
    let a = Cluster::launch(config(8)).unwrap();
    a.ingest(batch.clone()).unwrap();
    a.flush().unwrap();
    a.rebalance().unwrap();
    let balance_a = a.stats().unwrap().imbalance();
    a.shutdown();
    // Path B: load-aware launch with a profile measured from the batch.
    let mut config_b = config(8).with_partition_policy(PartitionPolicy::LoadAware);
    let grid = config_b.macro_grid();
    let mut loads = vec![0u64; grid.cell_count() as usize];
    for o in &batch {
        let c = grid.cell_of_clamped(o.position);
        loads[c.row as usize * grid.cols() as usize + c.col as usize] += 1;
    }
    config_b = config_b.with_load_profile(loads);
    let b = Cluster::launch(config_b).unwrap();
    b.ingest(batch).unwrap();
    b.flush().unwrap();
    let balance_b = b.stats().unwrap().imbalance();
    b.shutdown();
    assert!(
        (balance_a - balance_b).abs() < 0.6,
        "paths diverge: rebalanced {balance_a:.2} vs load-aware launch {balance_b:.2}"
    );
}

#[test]
fn filtered_range_query_matches_postfiltering() {
    let cluster = Cluster::launch(config(4)).unwrap();
    let batch: Vec<Observation> = (0..1_000u64)
        .map(|i| {
            let class = EntityClass::from_u8((i % 4) as u8).unwrap();
            obs(
                i,
                (i % 50) * 1000,
                (i as f64 * 37.0) % 1600.0,
                (i as f64 * 53.0) % 1600.0,
                class,
            )
        })
        .collect();
    cluster.ingest(batch).unwrap();
    cluster.flush().unwrap();
    let region = BBox::around(Point::new(800.0, 800.0), 600.0);
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(40));
    for class in EntityClass::ALL {
        let filtered: Vec<_> = cluster
            .range_query_filtered(region, window, class)
            .unwrap()
            .iter()
            .map(|o| o.id)
            .collect();
        let expected: Vec<_> = cluster
            .range_query(region, window)
            .unwrap()
            .iter()
            .filter(|o| o.class == class)
            .map(|o| o.id)
            .collect();
        assert_eq!(filtered, expected, "class {class}");
        assert!(!filtered.is_empty(), "vacuous for class {class}");
    }
    cluster.shutdown();
}

#[test]
fn auto_recovery_heals_without_manual_intervention() {
    use stcam_net::NodeId;
    let cluster = Cluster::launch(
        ClusterConfig::new(extent(), 4)
            .with_replication(1)
            .with_link(LinkModel::instant()),
    )
    .unwrap();
    cluster.ingest(hotspot_batch(800)).unwrap();
    cluster.flush().unwrap();
    cluster.enable_auto_recovery(std::time::Duration::from_millis(100));
    cluster.kill_worker(NodeId(2));
    // Wait for the monitor to notice and fail over.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let healed = cluster
            .range_query(extent(), window_all())
            .map(|hits| hits.len() == 800)
            .unwrap_or(false);
        if healed {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "auto recovery never healed"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    cluster.shutdown();
}
