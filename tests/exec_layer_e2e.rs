//! End-to-end tests of the `stcam::exec` scatter/gather layer through the
//! cluster facade: the top-cells aggregate, executor telemetry, and
//! timeout retry under injected link loss.

use std::time::Duration as StdDuration;

use stcam::{Cluster, ClusterConfig, OpPolicy};
use stcam_camnet::{CameraId, Observation, ObservationId, Signature};
use stcam_geo::{BBox, GridSpec, Point, TimeInterval, Timestamp};
use stcam_net::LinkModel;
use stcam_world::{EntityClass, EntityId};

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0))
}

fn obs(seq: u64, x: f64, y: f64) -> Observation {
    Observation {
        id: ObservationId::compose(CameraId(0), seq),
        camera: CameraId(0),
        time: Timestamp::from_millis(seq * 10),
        position: Point::new(x, y),
        class: EntityClass::Car,
        signature: Signature::latent_for_entity(seq),
        truth: Some(EntityId(seq)),
    }
}

fn window_all() -> TimeInterval {
    TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10_000))
}

#[test]
fn top_cells_matches_dense_heatmap_ranking() {
    let cluster =
        Cluster::launch(ClusterConfig::new(extent(), 4).with_link(LinkModel::instant())).unwrap();
    // Three hot spots of different intensity plus background scatter,
    // crossing shard boundaries so the merge actually sums partials.
    let mut batch = Vec::new();
    let mut seq = 0u64;
    for (n, cx, cy) in [(40, 100.0, 100.0), (30, 800.0, 800.0), (20, 1500.0, 200.0)] {
        for i in 0..n {
            batch.push(obs(seq, cx + (i % 7) as f64, cy + (i % 5) as f64));
            seq += 1;
        }
    }
    for i in 0..50u64 {
        batch.push(obs(
            seq,
            (i as f64 * 131.0) % 1600.0,
            (i as f64 * 173.0) % 1600.0,
        ));
        seq += 1;
    }
    cluster.ingest(batch).unwrap();
    cluster.flush().unwrap();

    let buckets = GridSpec::covering(extent(), 200.0);
    let k = 5;
    let top = cluster.top_cells(&buckets, window_all(), k).unwrap();
    assert_eq!(top.len(), k);

    // The dense heatmap, ranked the same way, must agree exactly.
    let dense = cluster.heatmap(&buckets, window_all()).unwrap();
    let mut expected: Vec<(u32, u64)> = dense
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (i as u32, c))
        .collect();
    expected.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    expected.truncate(k);
    let got: Vec<(u32, u64)> = top
        .iter()
        .map(|(cell, c)| (cell.row * buckets.cols() + cell.col, *c))
        .collect();
    assert_eq!(got, expected);

    // The planted hot spots dominate the ranking (background scatter may
    // add a few hits to the same cells).
    assert!(top[0].1 >= 40);
    assert!(top[1].1 >= 30);

    // The sparse aggregate is strictly cheaper on the wire than the dense
    // heatmap for this grid (64 cells, ~10 occupied).
    let ops = cluster.op_stats();
    let top_stats = ops.iter().find(|(n, _)| *n == "top_cells").unwrap().1;
    let heat_stats = ops.iter().find(|(n, _)| *n == "heatmap").unwrap().1;
    assert!(top_stats.invocations == 1 && heat_stats.invocations == 1);
    assert!(
        top_stats.bytes_received < heat_stats.bytes_received,
        "sparse top-cells moved {} B down vs dense heatmap {} B",
        top_stats.bytes_received,
        heat_stats.bytes_received
    );
    cluster.shutdown();
}

#[test]
fn executor_telemetry_counts_queries_and_latency_split() {
    let cluster =
        Cluster::launch(ClusterConfig::new(extent(), 4).with_link(LinkModel::instant())).unwrap();
    let batch: Vec<Observation> = (0..200)
        .map(|i| obs(i, (i as f64 * 37.0) % 1600.0, (i as f64 * 53.0) % 1600.0))
        .collect();
    cluster.ingest(batch).unwrap();
    cluster.flush().unwrap();
    for _ in 0..3 {
        cluster.range_query(extent(), window_all()).unwrap();
    }
    let stats = cluster.stats().unwrap();
    let range = stats.op("range");
    assert_eq!(range.invocations, 3);
    assert_eq!(range.sub_queries, 12); // 3 invocations × 4 workers
    assert_eq!(range.retries, 0);
    assert_eq!(range.failures, 0);
    assert!(range.bytes_sent > 0 && range.bytes_received > 0);
    assert!(range.scatter_micros > 0, "scatter latency not recorded");
    // Worker-side serve counters agree with the executor's fan-out.
    let served: u64 = stats
        .workers
        .iter()
        .map(|(_, s)| s.served_count("range"))
        .sum();
    assert_eq!(served, 12);
    cluster.shutdown();
}

#[test]
fn lossy_link_read_succeeds_via_retry_where_single_shot_fails() {
    // 20% loss per message: a round trip succeeds with P ≈ 0.8² = 0.64,
    // so with single-attempt RPCs a scatter of 4 sub-queries fails more
    // often than not (P[all ok] ≈ 0.17) — the seed surfaced that as a
    // query error. With the retry budget raised to 10 attempts, a
    // sub-query exhausts the budget with P ≈ 0.36¹⁰ ≈ 4e-5, so a short
    // query loop both exercises and survives retries.
    let lossy = LinkModel::instant().with_drop_probability(0.2);
    let cluster = Cluster::launch(
        ClusterConfig::new(extent(), 4)
            .with_replication(0)
            .with_link(lossy),
    )
    .unwrap();
    // Ingest over a lossy fabric is fire-and-forget; tolerate partial
    // delivery — this test is about query-path retry, not ingest.
    let batch: Vec<Observation> = (0..100)
        .map(|i| obs(i, (i as f64 * 37.0) % 1600.0, (i as f64 * 53.0) % 1600.0))
        .collect();
    let _ = cluster.ingest(batch);

    // Short per-attempt timeout so lost messages are detected fast; more
    // attempts than the default to make exhaustion astronomically rare.
    cluster.set_op_policy(
        "range",
        OpPolicy {
            timeout: StdDuration::from_millis(200),
            max_attempts: 10,
            backoff: StdDuration::from_millis(2),
        },
    );

    let mut completed = 0u32;
    for _ in 0..25 {
        let result = cluster.range_query(extent(), window_all());
        assert!(
            result.is_ok(),
            "query failed despite retry budget: {result:?}"
        );
        completed += 1;
        let range = cluster
            .op_stats()
            .into_iter()
            .find(|(n, _)| *n == "range")
            .map(|(_, s)| s)
            .unwrap();
        if range.retries > 0 {
            break; // loss was observed and recovered from
        }
    }
    let range = cluster
        .op_stats()
        .into_iter()
        .find(|(n, _)| *n == "range")
        .map(|(_, s)| s)
        .unwrap();
    assert!(
        range.retries > 0,
        "no retries recorded after {completed} queries at 20% loss — \
         P < 1e-12, the retry path cannot be wired up"
    );
    assert_eq!(range.failures, 0, "a read failed despite the retry budget");
    cluster.shutdown();
}

#[test]
fn per_op_policy_is_isolated_from_other_ops() {
    // Replication 0: with replicas available, a read whose primary
    // sub-query times out would fail over and succeed anyway, hiding the
    // strangled policy this test is about. The LAN link (not instant)
    // matters too: a 1 ns deadline can only lose deterministically if no
    // reply can already be in the mailbox at the first poll.
    let cluster = Cluster::launch(
        ClusterConfig::new(extent(), 2)
            .with_replication(0)
            .with_link(LinkModel::lan()),
    )
    .unwrap();
    // A tiny timeout on an op we never call must not affect others.
    cluster.set_op_policy(
        "knn_broadcast",
        OpPolicy::no_retry(StdDuration::from_nanos(1)),
    );
    cluster.ingest(vec![obs(0, 800.0, 800.0)]).unwrap();
    cluster.flush().unwrap();
    assert_eq!(
        cluster.range_query(extent(), window_all()).unwrap().len(),
        1
    );
    // The strangled op itself does time out.
    assert!(cluster
        .knn_broadcast(Point::new(800.0, 800.0), window_all(), 1)
        .is_err());
    cluster.shutdown();
}
