//! The time-sliced grid index.

use std::collections::BTreeMap;

use stcam_camnet::Observation;
use stcam_geo::{BBox, Duration, GridSpec, Point, TimeInterval, Timestamp};

use crate::slice::{slice_number, Slice};

/// Configuration of a [`StIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Region this index is responsible for. Observations slightly outside
    /// (localisation noise at shard borders) are clamped into the border
    /// cells.
    pub extent: BBox,
    /// Spatial cell size, metres.
    pub cell_size: f64,
    /// Temporal slice length.
    pub slice_len: Duration,
    /// Retention budget in observations; `0` means unbounded. When
    /// exceeded, whole oldest slices are evicted (the open slice is never
    /// evicted).
    pub max_observations: usize,
}

impl IndexConfig {
    /// Creates an unbounded config.
    ///
    /// # Panics
    ///
    /// Panics when `extent` is empty, `cell_size <= 0`, or `slice_len` is
    /// zero.
    pub fn new(extent: BBox, cell_size: f64, slice_len: Duration) -> Self {
        assert!(!extent.is_empty(), "extent must be non-empty");
        assert!(cell_size > 0.0, "cell_size must be positive");
        assert!(slice_len > Duration::ZERO, "slice_len must be positive");
        IndexConfig {
            extent,
            cell_size,
            slice_len,
            max_observations: 0,
        }
    }

    /// Replaces the retention budget.
    pub fn with_max_observations(mut self, max: usize) -> Self {
        self.max_observations = max;
        self
    }
}

/// Point-in-time statistics of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Stored observations.
    pub observations: usize,
    /// Live time slices.
    pub slices: usize,
    /// Start of the oldest retained slice, if any.
    pub oldest: Option<Timestamp>,
    /// End of the newest retained slice, if any.
    pub newest: Option<Timestamp>,
}

/// The time-sliced grid index over observations (see the
/// [crate docs](crate) for the design rationale).
#[derive(Debug)]
pub struct StIndex {
    config: IndexConfig,
    grid: GridSpec,
    slices: BTreeMap<u64, Slice>,
    len: usize,
}

impl StIndex {
    /// Creates an empty index.
    pub fn new(config: IndexConfig) -> Self {
        let grid = GridSpec::covering(config.extent, config.cell_size);
        StIndex {
            config,
            grid,
            slices: BTreeMap::new(),
            len: 0,
        }
    }

    /// Rebuilds an index from a previously exported snapshot (see
    /// [`iter`](Self::iter)); used when a replica takes over a failed
    /// worker's shard.
    pub fn from_observations<I>(config: IndexConfig, observations: I) -> Self
    where
        I: IntoIterator<Item = Observation>,
    {
        let mut index = StIndex::new(config);
        for obs in observations {
            index.insert(obs);
        }
        index
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The spatial grid used for bucketing.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current statistics.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            observations: self.len,
            slices: self.slices.len(),
            oldest: self.slices.values().next().map(|s| s.window().start()),
            newest: self.slices.values().next_back().map(|s| s.window().end()),
        }
    }

    /// Inserts one observation. Out-of-order arrival within the retained
    /// horizon is supported (the slice is located by timestamp, not by
    /// arrival order).
    pub fn insert(&mut self, obs: Observation) {
        let number = slice_number(obs.time, self.config.slice_len);
        let cell = self.grid.cell_of_clamped(obs.position);
        let slice = self
            .slices
            .entry(number)
            .or_insert_with(|| Slice::new(number, self.config.slice_len, &self.grid));
        slice.insert(&self.grid, cell, obs);
        self.len += 1;
        self.enforce_budget();
    }

    /// Bulk insertion.
    pub fn insert_batch<I: IntoIterator<Item = Observation>>(&mut self, batch: I) {
        for obs in batch {
            self.insert(obs);
        }
    }

    fn enforce_budget(&mut self) {
        if self.config.max_observations == 0 {
            return;
        }
        while self.len > self.config.max_observations && self.slices.len() > 1 {
            let oldest = *self.slices.keys().next().expect("non-empty");
            let removed = self.slices.remove(&oldest).expect("present");
            self.len -= removed.len();
        }
    }

    /// All observations with `region.contains(position)` and
    /// `window.contains(time)`, sorted by id.
    pub fn range(&self, region: BBox, window: TimeInterval) -> Vec<&Observation> {
        let mut out = Vec::new();
        for slice in self.slices_overlapping(window) {
            slice.scan_cells(
                &self.grid,
                self.grid.cells_overlapping(region),
                &region,
                &window,
                &mut out,
            );
        }
        out.sort_by_key(|o| o.id);
        out
    }

    /// Count of matches without materialising them.
    pub fn range_count(&self, region: BBox, window: TimeInterval) -> usize {
        // Reuses the scan; the allocation of references is cheap relative
        // to the scan itself.
        let mut out = Vec::new();
        for slice in self.slices_overlapping(window) {
            slice.scan_cells(
                &self.grid,
                self.grid.cells_overlapping(region),
                &region,
                &window,
                &mut out,
            );
        }
        out.len()
    }

    /// The `k` observations within `window` nearest to `at`, ordered by
    /// (distance, id).
    ///
    /// Expands square cell rings outward from the query point; a ring at
    /// Chebyshev cell distance `r` can hold nothing closer than
    /// `(r−1) × cell_size`, so expansion stops as soon as that lower bound
    /// exceeds the current k-th best distance.
    pub fn knn(&self, at: Point, window: TimeInterval, k: usize) -> Vec<&Observation> {
        if k == 0 {
            return Vec::new();
        }
        let slices: Vec<&Slice> = self.slices_overlapping(window).collect();
        if slices.is_empty() {
            return Vec::new();
        }
        let center = self.grid.cell_of_clamped(at);
        let max_radius = self.grid.cols().max(self.grid.rows());
        // (distance_sq, id) max-heap of current best k.
        let mut best: Vec<(f64, &Observation)> = Vec::with_capacity(k + 8);
        for radius in 0..=max_radius {
            if best.len() >= k {
                let bound = self.grid.ring_min_distance(radius);
                let kth = best.last().expect("k >= 1").0.sqrt();
                if bound > kth {
                    break;
                }
            }
            let ring = self.grid.ring(center, radius);
            if ring.is_empty() && radius > 0 {
                // The clamped center can make early rings partially empty
                // at borders, but a fully empty ring means we've left the
                // grid entirely.
                break;
            }
            for cell in ring {
                for slice in &slices {
                    for obs in slice.cell_contents(&self.grid, cell) {
                        if !window.contains(obs.time) {
                            continue;
                        }
                        let d = at.distance_sq(obs.position);
                        best.push((d, obs));
                    }
                }
            }
            // Keep only the best k, ordered.
            best.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.id.cmp(&b.1.id))
            });
            best.truncate(k);
        }
        best.into_iter().map(|(_, o)| o).collect()
    }

    /// Observation counts per cell of `buckets` for matches in `window`,
    /// as a dense row-major vector. `buckets` need not match the index's
    /// own grid.
    pub fn heatmap(&self, buckets: &GridSpec, window: TimeInterval) -> Vec<u64> {
        let mut counts = vec![0u64; buckets.cell_count() as usize];
        for slice in self.slices_overlapping(window) {
            for obs in slice.iter() {
                if !window.contains(obs.time) {
                    continue;
                }
                if let Some(cell) = buckets.cell_of(obs.position) {
                    counts[cell.row as usize * buckets.cols() as usize + cell.col as usize] += 1;
                }
            }
        }
        counts
    }

    /// Drops every slice that ends at or before `cutoff`. Retention is
    /// slice-granular: observations newer than `cutoff` in a retained
    /// slice are kept, and a slice containing both sides of the cutoff is
    /// kept whole.
    pub fn evict_before(&mut self, cutoff: Timestamp) {
        let keep_from = self
            .slices
            .iter()
            .find(|(_, s)| s.window().end() > cutoff)
            .map(|(&n, _)| n);
        let removed: Vec<u64> = match keep_from {
            Some(n) => self.slices.range(..n).map(|(&k, _)| k).collect(),
            None => self.slices.keys().copied().collect(),
        };
        for n in removed {
            let slice = self.slices.remove(&n).expect("present");
            self.len -= slice.len();
        }
    }

    /// Removes and returns every observation whose position lies inside
    /// `region` (all retained time). Used for shard migration during
    /// online rebalancing: the old owner extracts the moving cells'
    /// contents and ships them to the new owner.
    ///
    /// An observation clamped into a border cell from outside the extent
    /// is extracted when its *true position* is inside `region`, matching
    /// [`range`](Self::range) semantics.
    pub fn extract_range(&mut self, region: BBox) -> Vec<Observation> {
        let mut out = Vec::new();
        for slice in self.slices.values_mut() {
            slice.extract_cells(
                &self.grid,
                self.grid.cells_overlapping(region),
                &region,
                &mut out,
            );
        }
        // Border cells may hold clamped observations whose true position
        // is outside the grid extent yet inside `region`; sweep them when
        // the region pokes outside the extent.
        if !self.grid.extent().contains_bbox(&region) {
            let border: Vec<_> = self
                .grid
                .all_cells()
                .filter(|c| {
                    c.col == 0
                        || c.row == 0
                        || c.col == self.grid.cols() - 1
                        || c.row == self.grid.rows() - 1
                })
                .collect();
            for slice in self.slices.values_mut() {
                slice.extract_cells(&self.grid, border.iter().copied(), &region, &mut out);
            }
        }
        self.len -= out.len();
        out.sort_by_key(|o| o.id);
        out
    }

    /// Iterates over all stored observations (slice order, then cell
    /// order). Used to export a shard snapshot for replication.
    pub fn iter(&self) -> impl Iterator<Item = &Observation> {
        self.slices.values().flat_map(Slice::iter)
    }

    fn slices_overlapping(&self, window: TimeInterval) -> impl Iterator<Item = &Slice> {
        let lo = slice_number(window.start(), self.config.slice_len);
        // End is exclusive; a window ending exactly on a slice boundary
        // does not touch that slice.
        let hi_ts = if window.is_empty() {
            window.end()
        } else {
            Timestamp::from_millis(window.end().as_millis().saturating_sub(1))
        };
        let hi = slice_number(hi_ts, self.config.slice_len);
        let empty = window.is_empty();
        self.slices
            .range(lo..=hi)
            .map(|(_, s)| s)
            .filter(move |_| !empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn config() -> IndexConfig {
        IndexConfig::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            50.0,
            Duration::from_secs(10),
        )
    }

    fn window(a_ms: u64, b_ms: u64) -> TimeInterval {
        TimeInterval::new(Timestamp::from_millis(a_ms), Timestamp::from_millis(b_ms))
    }

    fn random_workload(n: usize, seed: u64) -> Vec<Observation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|i| {
                obs(
                    i,
                    rng.gen_range(0..120_000),
                    rng.gen_range(0.0..1000.0),
                    rng.gen_range(0.0..1000.0),
                )
            })
            .collect()
    }

    fn ids(v: &[&Observation]) -> Vec<ObservationId> {
        v.iter().map(|o| o.id).collect()
    }

    #[test]
    fn range_matches_oracle_on_random_workload() {
        let workload = random_workload(2000, 1);
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        for o in &workload {
            index.insert(o.clone());
            oracle.insert(o.clone());
        }
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x = rng.gen_range(-100.0..1100.0);
            let y = rng.gen_range(-100.0..1100.0);
            let w = rng.gen_range(0.0..500.0);
            let t0 = rng.gen_range(0..100_000u64);
            let dt = rng.gen_range(0..60_000u64);
            let region = BBox::new(Point::new(x, y), Point::new(x + w, y + w));
            let tw = window(t0, t0 + dt);
            assert_eq!(
                ids(&index.range(region, tw)),
                ids(&oracle.range(region, tw)),
                "range mismatch for {region} {tw}"
            );
        }
    }

    #[test]
    fn knn_matches_oracle_on_random_workload() {
        let workload = random_workload(1500, 3);
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        for o in &workload {
            index.insert(o.clone());
            oracle.insert(o.clone());
        }
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let at = Point::new(rng.gen_range(-50.0..1050.0), rng.gen_range(-50.0..1050.0));
            let k = rng.gen_range(1..40usize);
            let t0 = rng.gen_range(0..100_000u64);
            let tw = window(t0, t0 + rng.gen_range(1_000..60_000u64));
            assert_eq!(
                ids(&index.knn(at, tw, k)),
                ids(&oracle.knn(at, tw, k)),
                "knn mismatch at {at} k={k} {tw}"
            );
        }
    }

    #[test]
    fn heatmap_matches_oracle() {
        let workload = random_workload(1000, 5);
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        for o in &workload {
            index.insert(o.clone());
            oracle.insert(o.clone());
        }
        let buckets = GridSpec::new(Point::new(0.0, 0.0), 125.0, 8, 8);
        let tw = window(10_000, 70_000);
        assert_eq!(index.heatmap(&buckets, tw), oracle.heatmap(&buckets, tw));
    }

    #[test]
    fn knn_exact_corner_cases() {
        let mut index = StIndex::new(config());
        assert!(index
            .knn(Point::new(500.0, 500.0), window(0, 1000), 5)
            .is_empty());
        index.insert(obs(0, 500, 100.0, 100.0));
        index.insert(obs(1, 500, 110.0, 100.0));
        // k = 0 yields nothing.
        assert!(index
            .knn(Point::new(100.0, 100.0), window(0, 1000), 0)
            .is_empty());
        // k exceeding population returns all, nearest first.
        let got = index.knn(Point::new(100.0, 100.0), window(0, 1000), 10);
        assert_eq!(ids(&got).len(), 2);
        assert_eq!(got[0].id.seq(), 0);
        // Query point far outside the extent still works.
        let got = index.knn(Point::new(-5000.0, -5000.0), window(0, 1000), 1);
        assert_eq!(got[0].id.seq(), 0);
    }

    #[test]
    fn knn_ring_bound_does_not_miss_diagonal_neighbors() {
        // An observation diagonally adjacent but in a farther ring must
        // not be missed when a same-ring candidate exists.
        let mut index = StIndex::new(config());
        index.insert(obs(0, 0, 74.9, 25.0)); // next cell east, near edge
        index.insert(obs(1, 0, 26.0, 26.0)); // same cell as query
        let got = index.knn(Point::new(74.0, 25.0), window(0, 1000), 1);
        assert_eq!(got[0].id.seq(), 0);
    }

    #[test]
    fn out_of_order_insertion() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 50_000, 10.0, 10.0));
        index.insert(obs(1, 1_000, 10.0, 10.0)); // older than previous
        index.insert(obs(2, 25_000, 10.0, 10.0));
        let all = index.range(
            BBox::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0)),
            window(0, 60_000),
        );
        assert_eq!(all.len(), 3);
        assert_eq!(index.stats().slices, 3);
    }

    #[test]
    fn eviction_is_slice_granular() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 5_000, 10.0, 10.0)); // slice 0
        index.insert(obs(1, 15_000, 10.0, 10.0)); // slice 1
        index.insert(obs(2, 25_000, 10.0, 10.0)); // slice 2
        index.evict_before(Timestamp::from_secs(10));
        assert_eq!(index.len(), 2);
        // Cutoff inside slice 1 keeps the whole slice.
        index.evict_before(Timestamp::from_millis(16_000));
        assert_eq!(index.len(), 2);
        index.evict_before(Timestamp::from_secs(20));
        assert_eq!(index.len(), 1);
        index.evict_before(Timestamp::from_secs(1_000));
        assert!(index.is_empty());
        assert_eq!(index.stats().slices, 0);
    }

    #[test]
    fn memory_budget_evicts_oldest_slices() {
        let cfg = config().with_max_observations(100);
        let mut index = StIndex::new(cfg);
        for i in 0..300u64 {
            index.insert(obs(i, i * 200, 500.0, 500.0)); // 50 obs per 10 s slice
        }
        assert!(index.len() <= 100, "len {}", index.len());
        // Newest observations retained.
        let newest = index
            .range(
                BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
                window(0, 10_000_000),
            )
            .last()
            .unwrap()
            .id
            .seq();
        assert_eq!(newest, 299);
    }

    #[test]
    fn budget_never_evicts_the_only_slice() {
        let cfg = config().with_max_observations(10);
        let mut index = StIndex::new(cfg);
        for i in 0..50u64 {
            index.insert(obs(i, 1_000, 500.0, 500.0)); // all in one slice
        }
        assert_eq!(index.len(), 50);
    }

    #[test]
    fn positions_outside_extent_are_clamped_and_findable() {
        let mut index = StIndex::new(config());
        // Noise pushed this observation slightly out of the shard extent.
        index.insert(obs(0, 500, -3.0, 500.0));
        let hits = index.range(
            BBox::new(Point::new(-10.0, 450.0), Point::new(50.0, 550.0)),
            window(0, 1_000),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn window_on_slice_boundary_excludes_next_slice() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 10_000, 10.0, 10.0)); // first instant of slice 1
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        assert!(index.range(region, window(0, 10_000)).is_empty());
        assert_eq!(index.range(region, window(0, 10_001)).len(), 1);
        // Empty window matches nothing.
        assert!(index.range(region, window(10_000, 10_000)).is_empty());
    }

    #[test]
    fn snapshot_round_trip() {
        let workload = random_workload(500, 8);
        let mut index = StIndex::new(config());
        for o in &workload {
            index.insert(o.clone());
        }
        let snapshot: Vec<Observation> = index.iter().cloned().collect();
        let rebuilt = StIndex::from_observations(config(), snapshot);
        assert_eq!(rebuilt.len(), index.len());
        let region = BBox::new(Point::new(200.0, 200.0), Point::new(800.0, 800.0));
        let tw = window(0, 120_000);
        assert_eq!(
            ids(&rebuilt.range(region, tw)),
            ids(&index.range(region, tw))
        );
    }

    #[test]
    fn stats_report_span() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 5_000, 1.0, 1.0));
        index.insert(obs(1, 35_000, 1.0, 1.0));
        let s = index.stats();
        assert_eq!(s.observations, 2);
        assert_eq!(s.slices, 2);
        assert_eq!(s.oldest, Some(Timestamp::ZERO));
        assert_eq!(s.newest, Some(Timestamp::from_secs(40)));
    }
}

#[cfg(test)]
mod extract_tests {
    use super::*;
    use crate::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn config() -> IndexConfig {
        IndexConfig::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            50.0,
            Duration::from_secs(10),
        )
    }

    #[test]
    fn extract_removes_exactly_the_region() {
        let mut index = StIndex::new(config());
        let mut rng = StdRng::seed_from_u64(1);
        let mut inside = 0;
        for i in 0..500u64 {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let region = BBox::new(Point::new(200.0, 200.0), Point::new(600.0, 600.0));
            if region.contains(Point::new(x, y)) {
                inside += 1;
            }
            index.insert(obs(i, rng.gen_range(0..60_000), x, y));
        }
        let region = BBox::new(Point::new(200.0, 200.0), Point::new(600.0, 600.0));
        let extracted = index.extract_range(region);
        assert_eq!(extracted.len(), inside);
        assert_eq!(index.len(), 500 - inside);
        // Nothing in the region remains; everything else untouched.
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
        assert!(index.range(region, window).is_empty());
        assert_eq!(index.range(config().extent, window).len(), 500 - inside);
        // Extracted observations are exactly the in-region ones.
        assert!(extracted.iter().all(|o| region.contains(o.position)));
    }

    #[test]
    fn extract_matches_oracle_and_is_sorted() {
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..300u64 {
            let o = obs(
                i,
                rng.gen_range(0..60_000),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
            );
            index.insert(o.clone());
            oracle.insert(o);
        }
        let region = BBox::new(Point::new(0.0, 500.0), Point::new(1000.0, 1000.0));
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
        let expected: Vec<_> = oracle
            .range(region, window)
            .into_iter()
            .map(|o| o.id)
            .collect();
        let extracted: Vec<_> = index
            .extract_range(region)
            .into_iter()
            .map(|o| o.id)
            .collect();
        assert_eq!(extracted, expected);
    }

    #[test]
    fn extract_reaches_clamped_border_observations() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 100, -20.0, 500.0)); // clamped into col 0
        index.insert(obs(1, 100, 500.0, 500.0));
        let region = BBox::new(Point::new(-100.0, 0.0), Point::new(10.0, 1000.0));
        let extracted = index.extract_range(region);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].id.seq(), 0);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn extract_then_reinsert_round_trips() {
        let mut index = StIndex::new(config());
        for i in 0..100u64 {
            index.insert(obs(
                i,
                i * 500,
                (i as f64 * 37.0) % 1000.0,
                (i as f64 * 53.0) % 1000.0,
            ));
        }
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(500.0, 1000.0));
        let moved = index.extract_range(region);
        let moved_count = moved.len();
        assert!(moved_count > 10);
        index.insert_batch(moved);
        assert_eq!(index.len(), 100);
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
        assert_eq!(index.range(config().extent, window).len(), 100);
    }

    #[test]
    fn extract_empty_region_is_noop() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 100, 500.0, 500.0));
        let off_grid = BBox::new(Point::new(5000.0, 5000.0), Point::new(6000.0, 6000.0));
        assert!(index.extract_range(off_grid).is_empty());
        assert_eq!(index.len(), 1);
    }
}
