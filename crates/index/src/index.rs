//! The tiered time-sliced grid index: mutable head + sealed archive.

use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;

use stcam_camnet::Observation;
use stcam_codec::SegmentFrame;
use stcam_geo::{BBox, CellId, Duration, GridSpec, Point, TimeInterval, Timestamp};

use crate::segment::{ScanScratch, SealedSegment, SegmentDigest};
use crate::slice::{slice_number, Slice};
use crate::store::SegmentStore;

/// Configuration of a [`StIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexConfig {
    /// Region this index is responsible for. Observations slightly outside
    /// (localisation noise at shard borders) are clamped into the border
    /// cells.
    pub extent: BBox,
    /// Spatial cell size, metres.
    pub cell_size: f64,
    /// Temporal slice length.
    pub slice_len: Duration,
    /// Retention budget in observations; `0` means unbounded. When
    /// exceeded, whole oldest slices are evicted (the open slice is never
    /// evicted).
    pub max_observations: usize,
    /// Number of most-recent slice numbers kept in the mutable head;
    /// older slices are sealed into immutable columnar segments when the
    /// maximum slice number advances. `usize::MAX` disables sealing
    /// entirely (the pre-tiered all-mutable behaviour); values below 1
    /// behave as 1 — the open slice is always mutable.
    pub head_slices: usize,
    /// When set, sealed segment payloads are spilled to one file each
    /// under this directory, leaving only the footer directory resident.
    pub spill_dir: Option<PathBuf>,
}

/// Default number of recent slices kept mutable.
pub const DEFAULT_HEAD_SLICES: usize = 2;

impl IndexConfig {
    /// Creates an unbounded config with the default head depth.
    ///
    /// # Panics
    ///
    /// Panics when `extent` is empty, `cell_size <= 0`, or `slice_len` is
    /// zero.
    pub fn new(extent: BBox, cell_size: f64, slice_len: Duration) -> Self {
        assert!(!extent.is_empty(), "extent must be non-empty");
        assert!(cell_size > 0.0, "cell_size must be positive");
        assert!(slice_len > Duration::ZERO, "slice_len must be positive");
        IndexConfig {
            extent,
            cell_size,
            slice_len,
            max_observations: 0,
            head_slices: DEFAULT_HEAD_SLICES,
            spill_dir: None,
        }
    }

    /// Replaces the retention budget.
    pub fn with_max_observations(mut self, max: usize) -> Self {
        self.max_observations = max;
        self
    }

    /// Replaces the head depth (`usize::MAX` disables sealing).
    pub fn with_head_slices(mut self, head_slices: usize) -> Self {
        self.head_slices = head_slices;
        self
    }

    /// Disables sealing: every slice stays mutable (the pre-tiered
    /// behaviour, kept for ablation benchmarks and oracle tests).
    pub fn without_sealing(mut self) -> Self {
        self.head_slices = usize::MAX;
        self
    }

    /// Spills sealed segment payloads to files under `dir`.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }
}

/// Point-in-time statistics of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Stored observations.
    pub observations: usize,
    /// Live time slices (distinct slice numbers across both tiers).
    pub slices: usize,
    /// Start of the oldest retained slice, if any.
    pub oldest: Option<Timestamp>,
    /// End of the newest retained slice, if any.
    pub newest: Option<Timestamp>,
    /// Approximate heap bytes held in RAM: mutable-head rows and bucket
    /// tables plus resident sealed payloads and footers.
    pub resident_bytes: usize,
    /// Sealed immutable segments in the archive tier.
    pub sealed_segments: usize,
    /// Sealed payload bytes spilled to disk (excluded from
    /// `resident_bytes`).
    pub spilled_bytes: usize,
}

/// The tiered time-sliced grid index over observations (see the
/// [crate docs](crate) for the design rationale).
///
/// Two tiers, one facade: recent slices live in the **mutable head**
/// (dense per-cell buckets, cheap inserts), older slices are **sealed**
/// into immutable columnar segments (compressed, cell-addressable,
/// optionally spilled to disk). Every query merges both tiers and
/// answers exactly as the all-mutable index would — property-tested
/// against the flat-scan oracle with sealing forced on and off.
#[derive(Debug)]
pub struct StIndex {
    config: IndexConfig,
    grid: GridSpec,
    head: BTreeMap<u64, Slice>,
    sealed: SegmentStore,
    /// Largest slice number ever inserted; sealing advances with it.
    max_number: Option<u64>,
    len: usize,
}

impl StIndex {
    /// Creates an empty index.
    pub fn new(config: IndexConfig) -> Self {
        let grid = GridSpec::covering(config.extent, config.cell_size);
        let sealed = SegmentStore::new(config.spill_dir.clone());
        StIndex {
            config,
            grid,
            head: BTreeMap::new(),
            sealed,
            max_number: None,
            len: 0,
        }
    }

    /// Rebuilds an index from a previously exported snapshot (see
    /// [`snapshot`](Self::snapshot)); used when a replica takes over a
    /// failed worker's shard.
    pub fn from_observations<I>(config: IndexConfig, observations: I) -> Self
    where
        I: IntoIterator<Item = Observation>,
    {
        let mut index = StIndex::new(config);
        for obs in observations {
            index.insert(obs);
        }
        index
    }

    /// The configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The spatial grid used for bucketing.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distinct slice numbers across both tiers.
    fn slice_count(&self) -> usize {
        let mut n = self.head.len();
        for num in self.sealed.numbers() {
            if !self.head.contains_key(&num) {
                n += 1;
            }
        }
        n
    }

    /// Current statistics.
    pub fn stats(&self) -> IndexStats {
        let head_rows = self.len - self.sealed.len();
        let head_bytes = head_rows * std::mem::size_of::<Observation>()
            + self.head.len()
                * self.grid.cell_count() as usize
                * std::mem::size_of::<Vec<Observation>>();
        let slice_ms = self.config.slice_len.as_millis();
        let first = [
            self.head.keys().next().copied(),
            self.sealed.first_number(),
        ]
        .into_iter()
        .flatten()
        .min();
        let last = [
            self.head.keys().next_back().copied(),
            self.sealed.last_number(),
        ]
        .into_iter()
        .flatten()
        .max();
        IndexStats {
            observations: self.len,
            slices: self.slice_count(),
            oldest: first.map(|n| Timestamp::from_millis(n * slice_ms)),
            newest: last.map(|n| Timestamp::from_millis((n + 1) * slice_ms)),
            resident_bytes: head_bytes + self.sealed.resident_bytes(),
            sealed_segments: self.sealed.segment_count(),
            spilled_bytes: self.sealed.spilled_bytes(),
        }
    }

    /// Inserts one observation. Out-of-order arrival within the retained
    /// horizon is supported (the slice is located by timestamp, not by
    /// arrival order); a late insert into an already-sealed slice number
    /// lands in a mutable head overlay that is merged back into the
    /// archive at the next sealing event.
    pub fn insert(&mut self, obs: Observation) {
        let number = slice_number(obs.time, self.config.slice_len);
        let cell = self.grid.cell_of_clamped(obs.position);
        let slice = self
            .head
            .entry(number)
            .or_insert_with(|| Slice::new(number, self.config.slice_len, &self.grid));
        slice.insert(&self.grid, cell, obs);
        self.len += 1;
        if self.max_number.is_none_or(|m| number > m) {
            self.max_number = Some(number);
            self.seal_closed();
        }
        self.enforce_budget();
    }

    /// Bulk insertion.
    pub fn insert_batch<I: IntoIterator<Item = Observation>>(&mut self, batch: I) {
        for obs in batch {
            self.insert(obs);
        }
    }

    /// Seals every head slice older than the configured head depth.
    /// Called when the maximum slice number advances (a slice-close
    /// event), so sealing cost amortises to once per slice.
    fn seal_closed(&mut self) {
        let depth = self.config.head_slices;
        if depth == usize::MAX {
            return;
        }
        let Some(max) = self.max_number else { return };
        let Some(boundary) = max.checked_sub(depth.max(1) as u64) else {
            return;
        };
        let stale: Vec<u64> = self.head.range(..=boundary).map(|(&n, _)| n).collect();
        for number in stale {
            self.seal_number(number);
        }
    }

    /// Freezes one head slice into the archive, merging with any
    /// already-sealed segments of the same number (late-arrival overlays
    /// re-seal into a single segment).
    fn seal_number(&mut self, number: u64) {
        let Some(slice) = self.head.remove(&number) else {
            return;
        };
        let window = slice.window();
        let mut buckets = slice.into_buckets();
        let existing = self.sealed.take_number(number);
        if existing.is_empty() && buckets.iter().all(Vec::is_empty) {
            return;
        }
        for segment in existing {
            for obs in segment.unseal() {
                let cell = self.grid.cell_of_clamped(obs.position);
                buckets[(cell.row * self.grid.cols() + cell.col) as usize].push(obs);
            }
        }
        self.sealed.add(SealedSegment::seal(number, window, &buckets));
    }

    /// Forces every head slice — the open one included — into the
    /// archive. Benchmarks and tests use this to pin the index into its
    /// fully-sealed state; production sealing is driven by
    /// [`insert`](Self::insert).
    pub fn seal_all(&mut self) {
        let numbers: Vec<u64> = self.head.keys().copied().collect();
        for number in numbers {
            self.seal_number(number);
        }
    }

    fn enforce_budget(&mut self) {
        if self.config.max_observations == 0 {
            return;
        }
        while self.len > self.config.max_observations && self.slice_count() > 1 {
            let oldest = [self.head.keys().next().copied(), self.sealed.first_number()]
                .into_iter()
                .flatten()
                .min()
                .expect("non-empty");
            if let Some(slice) = self.head.remove(&oldest) {
                self.len -= slice.len();
            }
            for segment in self.sealed.take_number(oldest) {
                self.len -= segment.len();
            }
        }
    }

    /// Packed candidate cells for `region`, ascending (row-major).
    fn packed_cells(&self, region: &BBox) -> Vec<u32> {
        self.grid
            .cells_overlapping(*region)
            .map(|c| c.row * self.grid.cols() + c.col)
            .collect()
    }

    /// The inclusive slice-number range `window` can touch, or `None`
    /// for an empty window.
    fn number_range(&self, window: TimeInterval) -> Option<(u64, u64)> {
        if window.is_empty() {
            return None;
        }
        let lo = slice_number(window.start(), self.config.slice_len);
        // End is exclusive; a window ending exactly on a slice boundary
        // does not touch that slice.
        let hi_ts = Timestamp::from_millis(window.end().as_millis().saturating_sub(1));
        Some((lo, slice_number(hi_ts, self.config.slice_len)))
    }

    /// All observations with `region.contains(position)` and
    /// `window.contains(time)`, sorted by id.
    pub fn range(&self, region: BBox, window: TimeInterval) -> Vec<Observation> {
        let mut out = Vec::new();
        let Some((lo, hi)) = self.number_range(window) else {
            return out;
        };
        for (_, slice) in self.head.range(lo..=hi) {
            slice.scan_cells(
                &self.grid,
                self.grid.cells_overlapping(region),
                &region,
                &window,
                &mut out,
            );
        }
        let cells = self.packed_cells(&region);
        let mut scratch = ScanScratch::default();
        for segment in self.sealed.overlapping(lo, hi) {
            segment.scan_cells(&self.grid, &cells, Some(&region), &window, &mut out, &mut scratch);
        }
        out.sort_by_key(|o| o.id);
        out
    }

    /// Count of matches without materialising them: head slices count in
    /// place, sealed segments answer wholly-covered cells straight from
    /// their footer directory and decode only partially-covered blocks.
    pub fn range_count(&self, region: BBox, window: TimeInterval) -> usize {
        let Some((lo, hi)) = self.number_range(window) else {
            return 0;
        };
        let mut total = 0;
        for (_, slice) in self.head.range(lo..=hi) {
            total += slice.count_cells(
                &self.grid,
                self.grid.cells_overlapping(region),
                &region,
                &window,
            );
        }
        let cells = self.packed_cells(&region);
        let mut scratch = ScanScratch::default();
        for segment in self.sealed.overlapping(lo, hi) {
            total += segment.count_cells(&self.grid, &cells, Some(&region), &window, &mut scratch);
        }
        total
    }

    /// The `k` observations within `window` nearest to `at`, ordered by
    /// (distance, id).
    ///
    /// Expands square cell rings outward from the query point; a ring at
    /// Chebyshev cell distance `r` can hold nothing closer than
    /// `(r−1) × cell_size`, so expansion stops as soon as that lower bound
    /// exceeds the current k-th best distance. Both tiers contribute
    /// candidates per ring cell.
    pub fn knn(&self, at: Point, window: TimeInterval, k: usize) -> Vec<Observation> {
        if k == 0 {
            return Vec::new();
        }
        let Some((lo, hi)) = self.number_range(window) else {
            return Vec::new();
        };
        let slices: Vec<&Slice> = self.head.range(lo..=hi).map(|(_, s)| s).collect();
        let segments: Vec<&SealedSegment> = self.sealed.overlapping(lo, hi).collect();
        if slices.is_empty() && segments.is_empty() {
            return Vec::new();
        }
        let center = self.grid.cell_of_clamped(at);
        let max_radius = self.grid.cols().max(self.grid.rows());
        // (distance_sq, observation) current best k, ordered.
        let mut best: Vec<(f64, Observation)> = Vec::with_capacity(k + 8);
        let mut scratch = ScanScratch::default();
        let mut cell_rows: Vec<Observation> = Vec::new();
        for radius in 0..=max_radius {
            // Distance of the current k-th best, valid for this whole ring
            // (`best` is sorted and truncated at the end of the previous
            // one). Sealed rows farther than this can never enter the
            // answer, so the segment scan drops them before full decode.
            let kth_sq = if best.len() >= k {
                best.last().expect("k >= 1").0
            } else {
                f64::INFINITY
            };
            if best.len() >= k {
                let bound = self.grid.ring_min_distance(radius);
                if bound > kth_sq.sqrt() {
                    break;
                }
            }
            let ring = self.grid.ring(center, radius);
            if ring.is_empty() && radius > 0 {
                // The clamped center can make early rings partially empty
                // at borders, but a fully empty ring means we've left the
                // grid entirely.
                break;
            }
            for cell in ring {
                for slice in &slices {
                    for obs in slice.cell_contents(&self.grid, cell) {
                        if !window.contains(obs.time) {
                            continue;
                        }
                        best.push((at.distance_sq(obs.position), obs.clone()));
                    }
                }
                let packed = cell.row * self.grid.cols() + cell.col;
                for segment in &segments {
                    cell_rows.clear();
                    segment.cell_filtered(
                        packed,
                        |t, p| window.contains(t) && at.distance_sq(p) <= kth_sq,
                        &mut cell_rows,
                        &mut scratch,
                    );
                    for obs in cell_rows.drain(..) {
                        best.push((at.distance_sq(obs.position), obs));
                    }
                }
            }
            // Keep only the best k, ordered.
            best.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.id.cmp(&b.1.id))
            });
            best.truncate(k);
        }
        best.into_iter().map(|(_, o)| o).collect()
    }

    /// Observation counts per cell of `buckets` for matches in `window`,
    /// as a dense row-major vector. `buckets` need not match the index's
    /// own grid. Slices and segments wholly inside the window skip the
    /// per-row time check.
    pub fn heatmap(&self, buckets: &GridSpec, window: TimeInterval) -> Vec<u64> {
        let mut counts = vec![0u64; buckets.cell_count() as usize];
        let Some((lo, hi)) = self.number_range(window) else {
            return counts;
        };
        for (_, slice) in self.head.range(lo..=hi) {
            slice.heatmap_into(buckets, &window, &mut counts);
        }
        let mut scratch = ScanScratch::default();
        for segment in self.sealed.overlapping(lo, hi) {
            segment.heatmap_into(&self.grid, buckets, &window, &mut counts, &mut scratch);
        }
        counts
    }

    /// Drops every slice that ends at or before `cutoff`, in both tiers.
    /// Retention is slice-granular: observations newer than `cutoff` in a
    /// retained slice are kept, and a slice containing both sides of the
    /// cutoff is kept whole.
    pub fn evict_before(&mut self, cutoff: Timestamp) {
        let stale: Vec<u64> = self
            .head
            .iter()
            .filter(|(_, s)| s.window().end() <= cutoff)
            .map(|(&n, _)| n)
            .collect();
        for number in stale {
            let slice = self.head.remove(&number).expect("present");
            self.len -= slice.len();
        }
        self.len -= self.sealed.evict_before(cutoff);
    }

    /// Candidate cells for a removal/extraction region: every cell the
    /// clipped region overlaps, plus — when the region pokes outside the
    /// extent — the border cells, which hold clamped observations whose
    /// true position may lie inside `region`.
    fn extraction_cells(&self, region: &BBox) -> Vec<CellId> {
        let mut cells: Vec<CellId> = self.grid.cells_overlapping(*region).collect();
        if !self.grid.extent().contains_bbox(region) {
            let have: HashSet<(u32, u32)> = cells.iter().map(|c| (c.col, c.row)).collect();
            for c in self.grid.all_cells() {
                let border = c.col == 0
                    || c.row == 0
                    || c.col == self.grid.cols() - 1
                    || c.row == self.grid.rows() - 1;
                if border && !have.contains(&(c.col, c.row)) {
                    cells.push(c);
                }
            }
        }
        cells
    }

    /// Removes and returns every observation whose position lies inside
    /// `region` (all retained time). Used for shard migration during
    /// online rebalancing: the old owner extracts the moving cells'
    /// contents and ships them to the new owner. Sealed segments the
    /// region touches are rewritten at cell granularity — blocks wholly
    /// inside or outside the region are byte-copied, only straddling
    /// blocks are re-encoded.
    ///
    /// An observation clamped into a border cell from outside the extent
    /// is extracted when its *true position* is inside `region`, matching
    /// [`range`](Self::range) semantics.
    pub fn extract_range(&mut self, region: BBox) -> Vec<Observation> {
        let mut out = Vec::new();
        let cells = self.extraction_cells(&region);
        for slice in self.head.values_mut() {
            slice.extract_cells(&self.grid, cells.iter().copied(), &region, &mut out);
        }
        self.sealed.extract_region(&self.grid, &region, &mut out);
        self.len -= out.len();
        out.sort_by_key(|o| o.id);
        out
    }

    /// Visits every stored observation (head first, then archive;
    /// unspecified order within). The streaming counterpart of
    /// [`snapshot`](Self::snapshot) — digest sweeps use this to avoid
    /// materialising the shard.
    pub fn for_each(&self, mut f: impl FnMut(&Observation)) {
        for slice in self.head.values() {
            for obs in slice.iter() {
                f(obs);
            }
        }
        let mut scratch = ScanScratch::default();
        for segment in self.sealed.iter() {
            segment.for_each_with(&mut scratch, &mut f);
        }
    }

    /// Clones out every stored observation. Used to export a shard
    /// snapshot for replication.
    pub fn snapshot(&self) -> Vec<Observation> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|o| out.push(o.clone()));
        out
    }

    /// Digests of every sealed segment, ascending — the archive half of
    /// the shard's identity that repair/rejoin compares before shipping
    /// anything.
    pub fn segment_digests(&self) -> Vec<SegmentDigest> {
        self.sealed.digests()
    }

    /// Exports the shard content inside `region` in segment-granular
    /// form: one frame per sealed segment intersecting the region
    /// (byte-copied whole when the region covers it, split at cell
    /// boundaries otherwise), plus the mutable-head rows as plain
    /// observations. Segments whose digest appears in `skip` are omitted
    /// — the receiver already holds them.
    pub fn export_segments(
        &self,
        region: BBox,
        skip: &[SegmentDigest],
    ) -> (Vec<SegmentFrame>, Vec<Observation>) {
        let mut frames = Vec::new();
        for segment in self.sealed.iter() {
            let Some(sub) = segment.split_region(&self.grid, &region) else {
                continue;
            };
            if skip.contains(&sub.digest()) {
                continue;
            }
            frames.push(sub.to_frame());
        }
        let mut head_rows = Vec::new();
        let cells = self.extraction_cells(&region);
        for slice in self.head.values() {
            slice.scan_cells(
                &self.grid,
                cells.iter().copied(),
                &region,
                &TimeInterval::ALL,
                &mut head_rows,
            );
        }
        head_rows.sort_by_key(|o| o.id);
        (frames, head_rows)
    }

    /// Installs a sealed segment received from a peer. Returns `false`
    /// (and stores nothing) when a segment with the same digest is
    /// already archived, making retried transfers idempotent.
    ///
    /// The caller is responsible for row-level dedup against its mutable
    /// head (the worker's ingest `seen` filter); segment installs are
    /// only deduplicated against other segments, by digest.
    pub fn install_segment(&mut self, segment: SealedSegment) -> bool {
        if segment.is_empty() || self.sealed.contains(segment.digest()) {
            return false;
        }
        self.len += segment.len();
        self.sealed.add(segment);
        self.enforce_budget();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn config() -> IndexConfig {
        IndexConfig::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            50.0,
            Duration::from_secs(10),
        )
    }

    fn window(a_ms: u64, b_ms: u64) -> TimeInterval {
        TimeInterval::new(Timestamp::from_millis(a_ms), Timestamp::from_millis(b_ms))
    }

    fn random_workload(n: usize, seed: u64) -> Vec<Observation> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|i| {
                obs(
                    i,
                    rng.gen_range(0..120_000),
                    rng.gen_range(0.0..1000.0),
                    rng.gen_range(0.0..1000.0),
                )
            })
            .collect()
    }

    fn ids(v: &[Observation]) -> Vec<ObservationId> {
        v.iter().map(|o| o.id).collect()
    }

    fn ref_ids(v: &[&Observation]) -> Vec<ObservationId> {
        v.iter().map(|o| o.id).collect()
    }

    #[test]
    fn range_matches_oracle_on_random_workload() {
        let workload = random_workload(2000, 1);
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        for o in &workload {
            index.insert(o.clone());
            oracle.insert(o.clone());
        }
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x = rng.gen_range(-100.0..1100.0);
            let y = rng.gen_range(-100.0..1100.0);
            let w = rng.gen_range(0.0..500.0);
            let t0 = rng.gen_range(0..100_000u64);
            let dt = rng.gen_range(0..60_000u64);
            let region = BBox::new(Point::new(x, y), Point::new(x + w, y + w));
            let tw = window(t0, t0 + dt);
            assert_eq!(
                ids(&index.range(region, tw)),
                ref_ids(&oracle.range(region, tw)),
                "range mismatch for {region} {tw}"
            );
        }
    }

    #[test]
    fn knn_matches_oracle_on_random_workload() {
        let workload = random_workload(1500, 3);
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        for o in &workload {
            index.insert(o.clone());
            oracle.insert(o.clone());
        }
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let at = Point::new(rng.gen_range(-50.0..1050.0), rng.gen_range(-50.0..1050.0));
            let k = rng.gen_range(1..40usize);
            let t0 = rng.gen_range(0..100_000u64);
            let tw = window(t0, t0 + rng.gen_range(1_000..60_000u64));
            assert_eq!(
                ids(&index.knn(at, tw, k)),
                ref_ids(&oracle.knn(at, tw, k)),
                "knn mismatch at {at} k={k} {tw}"
            );
        }
    }

    #[test]
    fn heatmap_matches_oracle() {
        let workload = random_workload(1000, 5);
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        for o in &workload {
            index.insert(o.clone());
            oracle.insert(o.clone());
        }
        let buckets = GridSpec::new(Point::new(0.0, 0.0), 125.0, 8, 8);
        let tw = window(10_000, 70_000);
        assert_eq!(index.heatmap(&buckets, tw), oracle.heatmap(&buckets, tw));
    }

    #[test]
    fn sealed_and_unsealed_answers_are_identical() {
        let workload = random_workload(1500, 7);
        let mut sealed = StIndex::new(config().with_head_slices(1));
        let mut unsealed = StIndex::new(config().without_sealing());
        for o in &workload {
            sealed.insert(o.clone());
            unsealed.insert(o.clone());
        }
        sealed.seal_all();
        assert!(sealed.stats().sealed_segments > 0, "sealing must engage");
        assert_eq!(unsealed.stats().sealed_segments, 0);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            let x = rng.gen_range(-100.0..1100.0);
            let y = rng.gen_range(-100.0..1100.0);
            let w = rng.gen_range(0.0..600.0);
            let t0 = rng.gen_range(0..100_000u64);
            let tw = window(t0, t0 + rng.gen_range(0..60_000u64));
            let region = BBox::new(Point::new(x, y), Point::new(x + w, y + w));
            assert_eq!(
                sealed.range(region, tw),
                unsealed.range(region, tw),
                "range diverged for {region} {tw}"
            );
            assert_eq!(
                sealed.range_count(region, tw),
                unsealed.range_count(region, tw)
            );
            let at = Point::new(x, y);
            assert_eq!(
                ids(&sealed.knn(at, tw, 12)),
                ids(&unsealed.knn(at, tw, 12))
            );
        }
        let buckets = GridSpec::new(Point::new(0.0, 0.0), 125.0, 8, 8);
        assert_eq!(
            sealed.heatmap(&buckets, window(5_000, 90_000)),
            unsealed.heatmap(&buckets, window(5_000, 90_000))
        );
    }

    #[test]
    fn sealing_spills_to_disk_when_configured() {
        let dir = std::env::temp_dir().join(format!("stseg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let workload = random_workload(800, 11);
        let mut index = StIndex::new(config().with_head_slices(1).with_spill_dir(&dir));
        let mut oracle = FlatIndex::new();
        for o in &workload {
            index.insert(o.clone());
            oracle.insert(o.clone());
        }
        index.seal_all();
        let stats = index.stats();
        assert!(stats.spilled_bytes > 0, "payloads must be on disk");
        assert!(std::fs::read_dir(&dir).unwrap().count() > 0);
        // Queries still answer exactly from spilled segments.
        let region = BBox::new(Point::new(100.0, 100.0), Point::new(700.0, 700.0));
        let tw = window(5_000, 90_000);
        assert_eq!(ids(&index.range(region, tw)), ref_ids(&oracle.range(region, tw)));
        assert_eq!(index.range_count(region, tw), oracle.range(region, tw).len());
        // Dropping the index removes its spill files.
        drop(index);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn resident_bytes_flatten_once_sealed() {
        let workload = random_workload(4000, 13);
        let mut mutable = StIndex::new(config().without_sealing());
        let mut tiered = StIndex::new(config().with_head_slices(1));
        for o in &workload {
            mutable.insert(o.clone());
            tiered.insert(o.clone());
        }
        tiered.seal_all();
        let m = mutable.stats();
        let t = tiered.stats();
        assert!(t.resident_bytes > 0);
        assert!(
            t.resident_bytes < m.resident_bytes,
            "sealed columnar form must be smaller: sealed {} vs mutable {}",
            t.resident_bytes,
            m.resident_bytes
        );
    }

    #[test]
    fn late_insert_into_sealed_number_is_merged_on_next_seal() {
        let mut index = StIndex::new(config().with_head_slices(1));
        index.insert(obs(0, 5_000, 100.0, 100.0)); // slice 0
        index.insert(obs(1, 15_000, 100.0, 100.0)); // slice 1 → seals 0
        assert!(index.stats().sealed_segments >= 1);
        // Late arrival for the sealed slice 0 lands in a head overlay.
        index.insert(obs(2, 6_000, 200.0, 200.0));
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        assert_eq!(index.range(region, window(0, 10_000)).len(), 2);
        // The next slice-close event merges the overlay back.
        index.insert(obs(3, 25_000, 100.0, 100.0));
        assert_eq!(index.range(region, window(0, 10_000)).len(), 2);
        assert_eq!(index.len(), 4);
        let digests = index.segment_digests();
        assert_eq!(
            digests.iter().filter(|d| d.number == 0).count(),
            1,
            "overlay must re-seal into a single segment"
        );
        assert_eq!(digests.iter().find(|d| d.number == 0).unwrap().count, 2);
    }

    #[test]
    fn export_install_round_trips_whole_segments() {
        let workload = random_workload(600, 17);
        let mut source = StIndex::new(config().with_head_slices(1));
        for o in &workload {
            source.insert(o.clone());
        }
        source.seal_all();
        let everything = BBox::new(Point::new(-1e12, -1e12), Point::new(1e12, 1e12));
        let (frames, head) = source.export_segments(everything, &[]);
        assert!(head.is_empty(), "everything is sealed");
        assert_eq!(frames.len(), source.stats().sealed_segments);
        // A region covering every cell exports byte-identical segments.
        let mut digests: Vec<SegmentDigest> = frames
            .iter()
            .map(|f| SegmentDigest {
                number: f.number,
                count: f.count,
                checksum: f.checksum,
            })
            .collect();
        digests.sort();
        assert_eq!(digests, source.segment_digests());
        // Install into a fresh index and compare answers.
        let mut target = StIndex::new(config());
        for frame in frames {
            let segment = SealedSegment::from_frame(frame).expect("frame verifies");
            assert!(target.install_segment(segment));
        }
        assert_eq!(target.len(), source.len());
        let region = BBox::new(Point::new(100.0, 0.0), Point::new(900.0, 800.0));
        let tw = window(3_000, 80_000);
        assert_eq!(source.range(region, tw), target.range(region, tw));
        // Re-installing the same digests is a no-op.
        let (frames, _) = source.export_segments(everything, &target.segment_digests());
        assert!(frames.is_empty(), "skip list suppresses known segments");
    }

    #[test]
    fn export_splits_segments_at_cell_boundaries() {
        let mut source = StIndex::new(config().with_head_slices(1));
        for i in 0..200u64 {
            source.insert(obs(i, 1_000 + i, (i as f64 * 7.3) % 1000.0, 500.0));
        }
        source.seal_all();
        let left = BBox::new(Point::new(-1e12, -1e12), Point::new(500.0, 1e12));
        let (frames, _) = source.export_segments(left, &[]);
        let exported: usize = frames.iter().map(|f| f.count as usize).sum();
        let expected = source.range_count(left, TimeInterval::ALL);
        assert_eq!(exported, expected);
        // Deterministic: a second export yields identical digests.
        let (again, _) = source.export_segments(left, &[]);
        let d1: Vec<_> = frames.iter().map(|f| f.checksum).collect();
        let d2: Vec<_> = again.iter().map(|f| f.checksum).collect();
        assert_eq!(d1, d2);
    }

    #[test]
    fn knn_exact_corner_cases() {
        let mut index = StIndex::new(config());
        assert!(index
            .knn(Point::new(500.0, 500.0), window(0, 1000), 5)
            .is_empty());
        index.insert(obs(0, 500, 100.0, 100.0));
        index.insert(obs(1, 500, 110.0, 100.0));
        // k = 0 yields nothing.
        assert!(index
            .knn(Point::new(100.0, 100.0), window(0, 1000), 0)
            .is_empty());
        // k exceeding population returns all, nearest first.
        let got = index.knn(Point::new(100.0, 100.0), window(0, 1000), 10);
        assert_eq!(ids(&got).len(), 2);
        assert_eq!(got[0].id.seq(), 0);
        // Query point far outside the extent still works.
        let got = index.knn(Point::new(-5000.0, -5000.0), window(0, 1000), 1);
        assert_eq!(got[0].id.seq(), 0);
    }

    #[test]
    fn knn_ring_bound_does_not_miss_diagonal_neighbors() {
        // An observation diagonally adjacent but in a farther ring must
        // not be missed when a same-ring candidate exists.
        let mut index = StIndex::new(config());
        index.insert(obs(0, 0, 74.9, 25.0)); // next cell east, near edge
        index.insert(obs(1, 0, 26.0, 26.0)); // same cell as query
        let got = index.knn(Point::new(74.0, 25.0), window(0, 1000), 1);
        assert_eq!(got[0].id.seq(), 0);
    }

    #[test]
    fn out_of_order_insertion() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 50_000, 10.0, 10.0));
        index.insert(obs(1, 1_000, 10.0, 10.0)); // older than previous
        index.insert(obs(2, 25_000, 10.0, 10.0));
        let all = index.range(
            BBox::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0)),
            window(0, 60_000),
        );
        assert_eq!(all.len(), 3);
        assert_eq!(index.stats().slices, 3);
    }

    #[test]
    fn eviction_is_slice_granular() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 5_000, 10.0, 10.0)); // slice 0
        index.insert(obs(1, 15_000, 10.0, 10.0)); // slice 1
        index.insert(obs(2, 25_000, 10.0, 10.0)); // slice 2
        index.evict_before(Timestamp::from_secs(10));
        assert_eq!(index.len(), 2);
        // Cutoff inside slice 1 keeps the whole slice.
        index.evict_before(Timestamp::from_millis(16_000));
        assert_eq!(index.len(), 2);
        index.evict_before(Timestamp::from_secs(20));
        assert_eq!(index.len(), 1);
        index.evict_before(Timestamp::from_secs(1_000));
        assert!(index.is_empty());
        assert_eq!(index.stats().slices, 0);
    }

    #[test]
    fn eviction_crosses_both_tiers() {
        let mut index = StIndex::new(config().with_head_slices(1));
        for i in 0..6u64 {
            index.insert(obs(i, i * 10_000 + 500, 10.0, 10.0));
        }
        assert!(index.stats().sealed_segments >= 4);
        index.evict_before(Timestamp::from_secs(40));
        assert_eq!(index.len(), 2);
        index.evict_before(Timestamp::from_secs(1_000));
        assert!(index.is_empty());
        assert_eq!(index.stats().sealed_segments, 0);
    }

    #[test]
    fn memory_budget_evicts_oldest_slices() {
        let cfg = config().with_max_observations(100);
        let mut index = StIndex::new(cfg);
        for i in 0..300u64 {
            index.insert(obs(i, i * 200, 500.0, 500.0)); // 50 obs per 10 s slice
        }
        assert!(index.len() <= 100, "len {}", index.len());
        // Newest observations retained.
        let newest = index
            .range(
                BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
                window(0, 10_000_000),
            )
            .last()
            .unwrap()
            .id
            .seq();
        assert_eq!(newest, 299);
    }

    #[test]
    fn budget_never_evicts_the_only_slice() {
        let cfg = config().with_max_observations(10);
        let mut index = StIndex::new(cfg);
        for i in 0..50u64 {
            index.insert(obs(i, 1_000, 500.0, 500.0)); // all in one slice
        }
        assert_eq!(index.len(), 50);
    }

    #[test]
    fn positions_outside_extent_are_clamped_and_findable() {
        let mut index = StIndex::new(config());
        // Noise pushed this observation slightly out of the shard extent.
        index.insert(obs(0, 500, -3.0, 500.0));
        let hits = index.range(
            BBox::new(Point::new(-10.0, 450.0), Point::new(50.0, 550.0)),
            window(0, 1_000),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn window_on_slice_boundary_excludes_next_slice() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 10_000, 10.0, 10.0)); // first instant of slice 1
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        assert!(index.range(region, window(0, 10_000)).is_empty());
        assert_eq!(index.range(region, window(0, 10_001)).len(), 1);
        // Empty window matches nothing.
        assert!(index.range(region, window(10_000, 10_000)).is_empty());
    }

    #[test]
    fn snapshot_round_trip() {
        let workload = random_workload(500, 8);
        let mut index = StIndex::new(config());
        for o in &workload {
            index.insert(o.clone());
        }
        let snapshot: Vec<Observation> = index.snapshot();
        let rebuilt = StIndex::from_observations(config(), snapshot);
        assert_eq!(rebuilt.len(), index.len());
        let region = BBox::new(Point::new(200.0, 200.0), Point::new(800.0, 800.0));
        let tw = window(0, 120_000);
        assert_eq!(
            ids(&rebuilt.range(region, tw)),
            ids(&index.range(region, tw))
        );
    }

    #[test]
    fn stats_report_span() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 5_000, 1.0, 1.0));
        index.insert(obs(1, 35_000, 1.0, 1.0));
        let s = index.stats();
        assert_eq!(s.observations, 2);
        assert_eq!(s.slices, 2);
        assert_eq!(s.oldest, Some(Timestamp::ZERO));
        assert_eq!(s.newest, Some(Timestamp::from_secs(40)));
    }
}

#[cfg(test)]
mod extract_tests {
    use super::*;
    use crate::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn config() -> IndexConfig {
        IndexConfig::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            50.0,
            Duration::from_secs(10),
        )
    }

    #[test]
    fn extract_removes_exactly_the_region() {
        let mut index = StIndex::new(config());
        let mut rng = StdRng::seed_from_u64(1);
        let mut inside = 0;
        for i in 0..500u64 {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let region = BBox::new(Point::new(200.0, 200.0), Point::new(600.0, 600.0));
            if region.contains(Point::new(x, y)) {
                inside += 1;
            }
            index.insert(obs(i, rng.gen_range(0..60_000), x, y));
        }
        let region = BBox::new(Point::new(200.0, 200.0), Point::new(600.0, 600.0));
        let extracted = index.extract_range(region);
        assert_eq!(extracted.len(), inside);
        assert_eq!(index.len(), 500 - inside);
        // Nothing in the region remains; everything else untouched.
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
        assert!(index.range(region, window).is_empty());
        assert_eq!(index.range(config().extent, window).len(), 500 - inside);
        // Extracted observations are exactly the in-region ones.
        assert!(extracted.iter().all(|o| region.contains(o.position)));
    }

    #[test]
    fn extract_matches_oracle_and_is_sorted() {
        let mut index = StIndex::new(config());
        let mut oracle = FlatIndex::new();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..300u64 {
            let o = obs(
                i,
                rng.gen_range(0..60_000),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
            );
            index.insert(o.clone());
            oracle.insert(o);
        }
        let region = BBox::new(Point::new(0.0, 500.0), Point::new(1000.0, 1000.0));
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
        let expected: Vec<_> = oracle
            .range(region, window)
            .into_iter()
            .map(|o| o.id)
            .collect();
        let extracted: Vec<_> = index
            .extract_range(region)
            .into_iter()
            .map(|o| o.id)
            .collect();
        assert_eq!(extracted, expected);
    }

    #[test]
    fn extract_reaches_sealed_segments() {
        let mut index = StIndex::new(config().with_head_slices(1));
        let mut oracle = FlatIndex::new();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..400u64 {
            let o = obs(
                i,
                rng.gen_range(0..60_000),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
            );
            index.insert(o.clone());
            oracle.insert(o);
        }
        index.seal_all();
        assert!(index.stats().sealed_segments > 0);
        let region = BBox::new(Point::new(130.0, 130.0), Point::new(640.0, 870.0));
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
        let expected: Vec<_> = oracle
            .range(region, window)
            .into_iter()
            .map(|o| o.id)
            .collect();
        let extracted: Vec<_> = index
            .extract_range(region)
            .into_iter()
            .map(|o| o.id)
            .collect();
        assert_eq!(extracted, expected);
        assert!(index.range(region, window).is_empty());
        assert_eq!(index.len(), 400 - extracted.len());
        // Remaining content is still fully queryable.
        assert_eq!(
            index.range(config().extent, window).len(),
            400 - extracted.len()
        );
    }

    #[test]
    fn extract_reaches_clamped_border_observations() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 100, -20.0, 500.0)); // clamped into col 0
        index.insert(obs(1, 100, 500.0, 500.0));
        let region = BBox::new(Point::new(-100.0, 0.0), Point::new(10.0, 1000.0));
        let extracted = index.extract_range(region);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].id.seq(), 0);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn extract_reaches_clamped_border_observations_in_sealed_segments() {
        let mut index = StIndex::new(config().with_head_slices(1));
        index.insert(obs(0, 100, -20.0, 500.0)); // clamped into col 0
        index.insert(obs(1, 100, 500.0, 500.0));
        index.seal_all();
        let region = BBox::new(Point::new(-100.0, 0.0), Point::new(10.0, 1000.0));
        let extracted = index.extract_range(region);
        assert_eq!(extracted.len(), 1);
        assert_eq!(extracted[0].id.seq(), 0);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn extract_then_reinsert_round_trips() {
        let mut index = StIndex::new(config());
        for i in 0..100u64 {
            index.insert(obs(
                i,
                i * 500,
                (i as f64 * 37.0) % 1000.0,
                (i as f64 * 53.0) % 1000.0,
            ));
        }
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(500.0, 1000.0));
        let moved = index.extract_range(region);
        let moved_count = moved.len();
        assert!(moved_count > 10);
        index.insert_batch(moved);
        assert_eq!(index.len(), 100);
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
        assert_eq!(index.range(config().extent, window).len(), 100);
    }

    #[test]
    fn extract_empty_region_is_noop() {
        let mut index = StIndex::new(config());
        index.insert(obs(0, 100, 500.0, 500.0));
        let off_grid = BBox::new(Point::new(5000.0, 5000.0), Point::new(6000.0, 6000.0));
        assert!(index.extract_range(off_grid).is_empty());
        assert_eq!(index.len(), 1);
    }
}
