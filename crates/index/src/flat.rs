//! The flat-scan index: correctness oracle and naive baseline.

use stcam_camnet::Observation;
use stcam_geo::{BBox, GridSpec, Point, TimeInterval, Timestamp};

/// An index with the same query interface as
/// [`StIndex`](crate::StIndex), implemented by linear scan over an
/// unordered vector.
///
/// Used (a) as the oracle that every `StIndex` query is tested against,
/// and (b) as the naive centralized baseline in the evaluation's latency
/// experiments.
#[derive(Debug, Default)]
pub struct FlatIndex {
    observations: Vec<Observation>,
}

impl FlatIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        FlatIndex::default()
    }

    /// Appends one observation.
    pub fn insert(&mut self, obs: Observation) {
        self.observations.push(obs);
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// All observations with `region.contains(position)` and
    /// `window.contains(time)`, sorted by id for determinism.
    pub fn range(&self, region: BBox, window: TimeInterval) -> Vec<&Observation> {
        let mut out: Vec<&Observation> = self
            .observations
            .iter()
            .filter(|o| window.contains(o.time) && region.contains(o.position))
            .collect();
        out.sort_by_key(|o| o.id);
        out
    }

    /// The `k` observations within `window` nearest to `at`, ordered by
    /// (distance, id).
    pub fn knn(&self, at: Point, window: TimeInterval, k: usize) -> Vec<&Observation> {
        let mut candidates: Vec<&Observation> = self
            .observations
            .iter()
            .filter(|o| window.contains(o.time))
            .collect();
        candidates.sort_by(|a, b| {
            let da = at.distance_sq(a.position);
            let db = at.distance_sq(b.position);
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        candidates.truncate(k);
        candidates
    }

    /// Observation counts per cell of `buckets` for matches in `window`,
    /// returned as a dense row-major vector.
    pub fn heatmap(&self, buckets: &GridSpec, window: TimeInterval) -> Vec<u64> {
        let mut counts = vec![0u64; buckets.cell_count() as usize];
        for o in &self.observations {
            if !window.contains(o.time) {
                continue;
            }
            if let Some(cell) = buckets.cell_of(o.position) {
                counts[cell.row as usize * buckets.cols() as usize + cell.col as usize] += 1;
            }
        }
        counts
    }

    /// Drops observations strictly older than `cutoff`.
    pub fn evict_before(&mut self, cutoff: Timestamp) {
        self.observations.retain(|o| o.time >= cutoff);
    }

    /// Iterates over all stored observations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Observation> {
        self.observations.iter()
    }
}

impl FromIterator<Observation> for FlatIndex {
    fn from_iter<I: IntoIterator<Item = Observation>>(iter: I) -> Self {
        FlatIndex {
            observations: iter.into_iter().collect(),
        }
    }
}

impl Extend<Observation> for FlatIndex {
    fn extend<I: IntoIterator<Item = Observation>>(&mut self, iter: I) {
        self.observations.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn window(a: u64, b: u64) -> TimeInterval {
        TimeInterval::new(Timestamp::from_secs(a), Timestamp::from_secs(b))
    }

    #[test]
    fn range_filters_space_and_time() {
        let idx: FlatIndex = [
            obs(0, 1_000, 10.0, 10.0),
            obs(1, 1_000, 90.0, 90.0),
            obs(2, 50_000, 10.0, 10.0),
        ]
        .into_iter()
        .collect();
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        let hits = idx.range(region, window(0, 10));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id.seq(), 0);
    }

    #[test]
    fn knn_orders_by_distance_then_id() {
        let idx: FlatIndex = [
            obs(0, 0, 10.0, 0.0),
            obs(1, 0, 5.0, 0.0),
            obs(2, 0, 5.0, 0.0), // tie with 1
            obs(3, 0, 20.0, 0.0),
        ]
        .into_iter()
        .collect();
        let got = idx.knn(Point::new(0.0, 0.0), window(0, 10), 3);
        let seqs: Vec<u64> = got.iter().map(|o| o.id.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 0]);
    }

    #[test]
    fn knn_with_k_larger_than_population() {
        let idx: FlatIndex = [obs(0, 0, 1.0, 1.0)].into_iter().collect();
        assert_eq!(idx.knn(Point::new(0.0, 0.0), window(0, 10), 5).len(), 1);
        assert_eq!(idx.knn(Point::new(0.0, 0.0), window(5, 10), 5).len(), 0);
    }

    #[test]
    fn heatmap_counts_cells() {
        let idx: FlatIndex = [
            obs(0, 0, 5.0, 5.0),
            obs(1, 0, 7.0, 7.0),
            obs(2, 0, 15.0, 5.0),
        ]
        .into_iter()
        .collect();
        let buckets = GridSpec::new(Point::new(0.0, 0.0), 10.0, 2, 1);
        let counts = idx.heatmap(&buckets, window(0, 10));
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn evict_before_drops_old() {
        let mut idx: FlatIndex = [obs(0, 1_000, 0.0, 0.0), obs(1, 5_000, 0.0, 0.0)]
            .into_iter()
            .collect();
        idx.evict_before(Timestamp::from_secs(2));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.iter().next().unwrap().id.seq(), 1);
    }
}
