//! Time slices: the unit of temporal organisation and eviction.

use stcam_camnet::Observation;
use stcam_geo::{BBox, CellId, Duration, GridSpec, TimeInterval, Timestamp};

/// The slice number containing `t` for slices of length `slice_len`.
///
/// # Panics
///
/// Panics in debug builds when `slice_len` is zero.
pub fn slice_number(t: Timestamp, slice_len: Duration) -> u64 {
    debug_assert!(slice_len > Duration::ZERO);
    t.as_millis() / slice_len.as_millis()
}

/// One time slice: observations bucketed by spatial grid cell.
#[derive(Debug)]
pub(crate) struct Slice {
    window: TimeInterval,
    /// Dense cell buckets, indexed `row * cols + col`.
    buckets: Vec<Vec<Observation>>,
    len: usize,
}

impl Slice {
    pub(crate) fn new(number: u64, slice_len: Duration, grid: &GridSpec) -> Self {
        let start = Timestamp::from_millis(number * slice_len.as_millis());
        Slice {
            window: TimeInterval::new(start, start + slice_len),
            buckets: vec![Vec::new(); grid.cell_count() as usize],
            len: 0,
        }
    }

    pub(crate) fn window(&self) -> TimeInterval {
        self.window
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    fn slot(grid: &GridSpec, cell: CellId) -> usize {
        cell.row as usize * grid.cols() as usize + cell.col as usize
    }

    /// Appends an observation (position already clamped to the grid by the
    /// caller via `cell`).
    pub(crate) fn insert(&mut self, grid: &GridSpec, cell: CellId, obs: Observation) {
        debug_assert!(
            self.window.contains(obs.time),
            "observation outside slice window"
        );
        self.buckets[Self::slot(grid, cell)].push(obs);
        self.len += 1;
    }

    /// Appends a clone of every observation matching `region` and
    /// `window` in the given cells. The per-row time check is skipped
    /// when `window` covers the whole slice.
    pub(crate) fn scan_cells(
        &self,
        grid: &GridSpec,
        cells: impl Iterator<Item = CellId>,
        region: &BBox,
        window: &TimeInterval,
        out: &mut Vec<Observation>,
    ) {
        let check_time = !self.covered_by(window);
        for cell in cells {
            for obs in &self.buckets[Self::slot(grid, cell)] {
                if (!check_time || window.contains(obs.time)) && region.contains(obs.position) {
                    out.push(obs.clone());
                }
            }
        }
    }

    /// Counts matches like [`scan_cells`](Self::scan_cells) without
    /// materialising anything.
    pub(crate) fn count_cells(
        &self,
        grid: &GridSpec,
        cells: impl Iterator<Item = CellId>,
        region: &BBox,
        window: &TimeInterval,
    ) -> usize {
        let check_time = !self.covered_by(window);
        let mut total = 0;
        for cell in cells {
            total += self.buckets[Self::slot(grid, cell)]
                .iter()
                .filter(|obs| {
                    (!check_time || window.contains(obs.time)) && region.contains(obs.position)
                })
                .count();
        }
        total
    }

    /// Accumulates per-bucket observation counts for `window` into
    /// `counts` (dense row-major over `buckets`), skipping the per-row
    /// time check when the window covers the whole slice.
    pub(crate) fn heatmap_into(
        &self,
        buckets: &GridSpec,
        window: &TimeInterval,
        counts: &mut [u64],
    ) {
        let check_time = !self.covered_by(window);
        for obs in self.iter() {
            if check_time && !window.contains(obs.time) {
                continue;
            }
            if let Some(cell) = buckets.cell_of(obs.position) {
                counts[cell.row as usize * buckets.cols() as usize + cell.col as usize] += 1;
            }
        }
    }

    /// Whether `window` contains the entire slice window, making per-row
    /// time checks redundant.
    fn covered_by(&self, window: &TimeInterval) -> bool {
        window.contains(self.window.start()) && window.end() >= self.window.end()
    }

    /// Consumes the slice into its dense cell buckets (for sealing).
    pub(crate) fn into_buckets(self) -> Vec<Vec<Observation>> {
        self.buckets
    }

    /// The observations of a single cell (time-unfiltered).
    pub(crate) fn cell_contents(&self, grid: &GridSpec, cell: CellId) -> &[Observation] {
        &self.buckets[Self::slot(grid, cell)]
    }

    /// Removes and returns every observation in the given cells whose
    /// position lies inside `region` (any time).
    pub(crate) fn extract_cells(
        &mut self,
        grid: &GridSpec,
        cells: impl Iterator<Item = CellId>,
        region: &BBox,
        out: &mut Vec<Observation>,
    ) {
        for cell in cells {
            let bucket = &mut self.buckets[Self::slot(grid, cell)];
            let before = bucket.len();
            let mut kept = Vec::with_capacity(before);
            for obs in bucket.drain(..) {
                if region.contains(obs.position) {
                    out.push(obs);
                } else {
                    kept.push(obs);
                }
            }
            *bucket = kept;
            self.len -= before - bucket.len();
        }
    }

    /// Iterates over all observations in the slice.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Observation> {
        self.buckets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_geo::Point;
    use stcam_world::{EntityClass, EntityId};

    fn obs(t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), t_ms),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(1),
            truth: Some(EntityId(1)),
        }
    }

    fn grid() -> GridSpec {
        GridSpec::new(Point::new(0.0, 0.0), 10.0, 10, 10)
    }

    #[test]
    fn slice_number_boundaries() {
        let len = Duration::from_secs(10);
        assert_eq!(slice_number(Timestamp::ZERO, len), 0);
        assert_eq!(slice_number(Timestamp::from_millis(9_999), len), 0);
        assert_eq!(slice_number(Timestamp::from_secs(10), len), 1);
        assert_eq!(slice_number(Timestamp::from_secs(25), len), 2);
    }

    #[test]
    fn window_matches_number() {
        let g = grid();
        let s = Slice::new(3, Duration::from_secs(10), &g);
        assert_eq!(s.window().start(), Timestamp::from_secs(30));
        assert_eq!(s.window().end(), Timestamp::from_secs(40));
    }

    #[test]
    fn insert_and_scan() {
        let g = grid();
        let mut s = Slice::new(0, Duration::from_secs(10), &g);
        let o1 = obs(1_000, 15.0, 15.0);
        let o2 = obs(2_000, 85.0, 85.0);
        s.insert(&g, g.cell_of(o1.position).unwrap(), o1.clone());
        s.insert(&g, g.cell_of(o2.position).unwrap(), o2.clone());
        assert_eq!(s.len(), 2);

        let region = BBox::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0));
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10));
        let mut hits = Vec::new();
        s.scan_cells(&g, g.cells_overlapping(region), &region, &window, &mut hits);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, o1.id);
    }

    #[test]
    fn scan_filters_by_time_within_slice() {
        let g = grid();
        let mut s = Slice::new(0, Duration::from_secs(10), &g);
        let o = obs(8_000, 5.0, 5.0);
        s.insert(&g, g.cell_of(o.position).unwrap(), o);
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let early = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(5));
        let mut hits = Vec::new();
        s.scan_cells(&g, g.cells_overlapping(region), &region, &early, &mut hits);
        assert!(hits.is_empty());
    }

    #[test]
    fn iter_visits_everything() {
        let g = grid();
        let mut s = Slice::new(0, Duration::from_secs(10), &g);
        for i in 0..20 {
            let o = obs(i * 100, (i % 10) as f64 * 9.0, (i / 10) as f64 * 9.0);
            s.insert(&g, g.cell_of(o.position).unwrap(), o);
        }
        assert_eq!(s.iter().count(), 20);
    }
}
