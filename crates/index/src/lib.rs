//! Single-node spatio-temporal observation index.
//!
//! Each `stcam` worker stores its shard of the observation stream in a
//! [`StIndex`]: a **tiered time-sliced spatial grid**. Time is divided
//! into fixed-length slices (a ring ordered by slice number); within a
//! slice, observations are bucketed by grid cell. The tiers:
//!
//! * **Mutable head** — the most recent slices (configurable depth,
//!   [`IndexConfig::head_slices`]) stay as dense per-cell buckets.
//!   Inserts are appends into the open slice — O(1), no rebalancing,
//!   which is what sustains camera-network ingest rates.
//! * **Sealed archive** — when the open slice advances, closed slices are
//!   frozen into immutable [`SealedSegment`]s: per-cell columnar blocks
//!   (the `stcam-camnet` batch encoding) plus a footer directory mapping
//!   cell → byte range, per-block counts, and order-independent
//!   checksums. Queries decode only the cells they touch; whole-cell
//!   counts come straight from the footer; payloads can spill to disk
//!   ([`IndexConfig::spill_dir`]) so archive size is bounded by storage,
//!   not RAM.
//!
//! Query semantics are tier-transparent:
//!
//! * Range queries touch exactly the overlapping slices/segments ×
//!   overlapping cells, merging both tiers.
//! * k-nearest-neighbour queries expand cell rings outward from the query
//!   point until the ring lower bound exceeds the current k-th distance.
//! * Aggregate (heat-map) queries reduce per cell without materialising
//!   matches, skipping per-row time checks for fully-covered slices.
//! * Retention is slice-granular eviction across both tiers, so memory
//!   stays bounded under unbounded streams.
//!
//! Segments are also the **repair/rejoin transfer unit**: each carries a
//! [`SegmentDigest`] (`number`, `count`, XOR-folded checksum), so peers
//! compare digests and ship whole immutable frames
//! ([`StIndex::export_segments`] / [`StIndex::install_segment`]) instead
//! of restreaming per-cell rows. Rebalancing splits segments at cell
//! boundaries, byte-copying untouched blocks.
//!
//! [`FlatIndex`] provides the same query semantics by linear scan. It is
//! both the correctness oracle for tests and the naive baseline in the
//! evaluation.
//!
//! # Example
//!
//! ```
//! use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
//! use stcam_index::{IndexConfig, StIndex};
//!
//! let config = IndexConfig::new(
//!     BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
//!     50.0,                      // spatial cell size, metres
//!     Duration::from_secs(10),   // slice length
//! );
//! let index = StIndex::new(config);
//! assert_eq!(index.len(), 0);
//! let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
//! assert!(index.range(BBox::around(Point::new(500.0, 500.0), 100.0), window).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod flat;
mod index;
mod segment;
mod slice;
mod store;

pub use flat::FlatIndex;
pub use index::{IndexConfig, IndexStats, StIndex, DEFAULT_HEAD_SLICES};
pub use segment::{cell_scope, observation_checksum, SealedSegment, SegmentDigest};
pub use slice::slice_number;
