//! Single-node spatio-temporal observation index.
//!
//! Each `stcam` worker stores its shard of the observation stream in a
//! [`StIndex`]: a **time-sliced spatial grid**. Time is divided into
//! fixed-length slices (a ring ordered by slice number); within a slice,
//! observations are bucketed by grid cell. This layout matches the
//! workload:
//!
//! * Inserts are appends into the open slice — O(1), no rebalancing, which
//!   is what sustains camera-network ingest rates.
//! * Range queries touch exactly the overlapping slices × overlapping
//!   cells.
//! * k-nearest-neighbour queries expand cell rings outward from the query
//!   point until the ring lower bound exceeds the current k-th distance.
//! * Aggregate (heat-map) queries reduce per cell without materialising
//!   matches.
//! * Retention is slice-granular eviction, so memory stays bounded under
//!   unbounded streams.
//!
//! [`FlatIndex`] provides the same query semantics by linear scan. It is
//! both the correctness oracle for tests and the naive baseline in the
//! evaluation.
//!
//! # Example
//!
//! ```
//! use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
//! use stcam_index::{IndexConfig, StIndex};
//!
//! let config = IndexConfig::new(
//!     BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
//!     50.0,                      // spatial cell size, metres
//!     Duration::from_secs(10),   // slice length
//! );
//! let index = StIndex::new(config);
//! assert_eq!(index.len(), 0);
//! let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
//! assert!(index.range(BBox::around(Point::new(500.0, 500.0), 100.0), window).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod flat;
mod index;
mod slice;

pub use flat::FlatIndex;
pub use index::{IndexConfig, IndexStats, StIndex};
pub use slice::slice_number;
