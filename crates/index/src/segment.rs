//! Sealed immutable segments: closed time slices frozen into columnar
//! blocks.
//!
//! A [`SealedSegment`] is the archive form of one time slice. Each
//! non-empty grid cell becomes one columnar block (the `stcam-camnet`
//! batch encoding: delta-varint ids/times, run-length cameras, packed
//! classes), and a footer directory maps packed cell → byte range so
//! queries decode only the cells their region touches. The directory also
//! carries per-block observation counts and order-independent checksums,
//! XOR-folded into a segment-level digest — the unit the repair plane
//! compares and ships (`(number, count, checksum)` identifies a segment's
//! exact contents up to the collision probability of the mix).
//!
//! Segments are immutable: rebalancing that must remove rows rewrites the
//! segment ([`SealedSegment::extract_region`]), byte-copying blocks the
//! region does not touch and re-encoding only partial blocks. The payload
//! can be spilled to disk ([`SealedSegment::spill`]), leaving only the
//! footer resident; reads then fetch just the touched byte ranges,
//! coalescing adjacent blocks into single reads.

use std::fs::File;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use stcam_camnet::batch::{
    decode_batch, decode_batch_filtered, decode_batch_into, encode_batch, scan_batch_keys,
};
use stcam_camnet::Observation;
use stcam_codec::{DecodeError, SegmentBlock, SegmentFrame};
use stcam_geo::{BBox, CellId, GridSpec, Point, TimeInterval, Timestamp};

/// The order-independent per-observation mix folded (by XOR) into cell
/// and segment checksums. Covers the identity and the timestamp, so a
/// copy holding the right ids but corrupted times still diverges. Shared
/// by the index's segment digests and the repair plane's cell digests —
/// a sealed whole-cell block and a live cell fold to the same value.
pub fn observation_checksum(o: &Observation) -> u64 {
    splitmix64(o.id.0 ^ splitmix64(o.time.as_millis()))
}

/// SplitMix64 finalizer: a cheap, well-dispersed 64-bit mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The region of positions that bucket into packed cell `cell` under the
/// clamped assignment of `grid`: border cells extend to ±∞ on their
/// outside edges (outside positions clamp inward), interior edges are
/// half-open so every position belongs to exactly one cell's scope.
///
/// `region.contains_bbox(cell_scope(...))` therefore proves that *every*
/// observation bucketed in the cell — clamped ones included — matches
/// `region`, which is what lets segment scans copy whole blocks without
/// decoding them.
pub fn cell_scope(grid: &GridSpec, cell: u32) -> BBox {
    const FAR: f64 = 1e12;
    let cell = CellId::new(cell % grid.cols(), cell / grid.cols());
    let bb = grid.cell_bbox(cell);
    let min = Point::new(
        if cell.col == 0 { -FAR } else { bb.min.x },
        if cell.row == 0 { -FAR } else { bb.min.y },
    );
    let max = Point::new(
        if cell.col == grid.cols() - 1 {
            FAR
        } else {
            bb.max.x.next_down()
        },
        if cell.row == grid.rows() - 1 {
            FAR
        } else {
            bb.max.y.next_down()
        },
    );
    BBox::new(min, max)
}

/// Identity and content digest of one sealed segment: the unit the
/// repair/rejoin plane compares. Equal digests certify equal contents up
/// to the collision probability of [`observation_checksum`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SegmentDigest {
    /// Time-slice number the segment covers.
    pub number: u64,
    /// Observations stored.
    pub count: u64,
    /// XOR fold of [`observation_checksum`] over every stored row.
    pub checksum: u64,
}

/// Where a segment's payload bytes live.
#[derive(Debug)]
enum SegmentData {
    /// Payload held in memory.
    Resident(Vec<u8>),
    /// Payload written to one file; only the footer stays resident. The
    /// read-only handle is kept open so block reads are positioned reads
    /// (`pread`) with no per-query open/seek.
    Spilled { path: PathBuf, len: usize, file: File },
}

/// One sealed, immutable time slice: per-cell columnar blocks plus a
/// footer directory (see the [module docs](self)).
#[derive(Debug)]
pub struct SealedSegment {
    number: u64,
    window: TimeInterval,
    count: u64,
    checksum: u64,
    directory: Vec<SegmentBlock>,
    data: SegmentData,
}

impl Drop for SealedSegment {
    fn drop(&mut self) {
        if let SegmentData::Spilled { path, .. } = &self.data {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl SealedSegment {
    /// Seals cell buckets (dense, indexed by packed cell) into a segment.
    /// Rows inside each bucket keep their stored order; empty buckets
    /// produce no block.
    pub(crate) fn seal(
        number: u64,
        window: TimeInterval,
        buckets: &[Vec<Observation>],
    ) -> SealedSegment {
        let mut payload = Vec::new();
        let mut directory = Vec::new();
        let mut count = 0u64;
        let mut checksum = 0u64;
        for (cell, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let offset = payload.len() as u32;
            encode_batch(bucket, &mut payload);
            let block_checksum = bucket
                .iter()
                .fold(0u64, |acc, o| acc ^ observation_checksum(o));
            directory.push(SegmentBlock {
                cell: cell as u32,
                offset,
                len: payload.len() as u32 - offset,
                count: bucket.len() as u32,
                checksum: block_checksum,
            });
            count += bucket.len() as u64;
            checksum ^= block_checksum;
        }
        SealedSegment {
            number,
            window,
            count,
            checksum,
            directory,
            data: SegmentData::Resident(payload),
        }
    }

    /// Time-slice number this segment covers.
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The slice window.
    pub fn window(&self) -> TimeInterval {
        self.window
    }

    /// Stored observations.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// `true` when the segment stores nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The segment's identity/content digest.
    pub fn digest(&self) -> SegmentDigest {
        SegmentDigest {
            number: self.number,
            count: self.count,
            checksum: self.checksum,
        }
    }

    /// Approximate heap bytes held in RAM: payload (when resident) plus
    /// the footer directory.
    pub fn resident_bytes(&self) -> usize {
        let payload = match &self.data {
            SegmentData::Resident(p) => p.len(),
            SegmentData::Spilled { .. } => 0,
        };
        payload + self.directory.len() * std::mem::size_of::<SegmentBlock>()
    }

    /// Payload bytes spilled to disk (0 when resident).
    pub fn spilled_bytes(&self) -> usize {
        match &self.data {
            SegmentData::Resident(_) => 0,
            SegmentData::Spilled { len, .. } => *len,
        }
    }

    /// Moves the payload to one file under `dir`, keeping only the footer
    /// resident. `tag` disambiguates multiple segments of one slice.
    /// No-op if already spilled; IO failure leaves the segment resident.
    pub(crate) fn spill(&mut self, dir: &Path, tag: u64) {
        let SegmentData::Resident(payload) = &self.data else {
            return;
        };
        let path = dir.join(format!("seg-{:08}-{:04}.stseg", self.number, tag));
        let write = || -> std::io::Result<File> {
            let mut f = File::create(&path)?;
            f.write_all(payload)?;
            f.sync_data()?;
            File::open(&path)
        };
        if let Ok(file) = write() {
            self.data = SegmentData::Spilled {
                path,
                len: payload.len(),
                file,
            };
        }
    }

    /// The payload bytes of directory entries `first..=last` (which are
    /// contiguous in the payload by construction). Spilled segments read
    /// exactly that byte range — one read per run of adjacent blocks.
    fn run_bytes<'a>(&'a self, first: usize, last: usize, scratch: &'a mut Vec<u8>) -> &'a [u8] {
        let start = self.directory[first].offset as usize;
        let end = self.directory[last].offset as usize + self.directory[last].len as usize;
        match &self.data {
            SegmentData::Resident(payload) => &payload[start..end],
            SegmentData::Spilled { file, .. } => {
                // Grow-only: `read_exact_at` overwrites the prefix, so the
                // buffer is never re-zeroed on reuse.
                if scratch.len() < end - start {
                    scratch.resize(end - start, 0);
                }
                file.read_exact_at(&mut scratch[..end - start], start as u64)
                    .expect("segment spill file read");
                &scratch[..end - start]
            }
        }
    }

    /// Directory indices of the blocks for `cells` (sorted packed cells),
    /// grouped into runs of adjacent directory entries so spilled reads
    /// coalesce.
    fn block_runs(&self, cells: &[u32]) -> Vec<(usize, usize)> {
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for &cell in cells {
            if let Ok(i) = self.directory.binary_search_by_key(&cell, |b| b.cell) {
                match runs.last_mut() {
                    Some((_, last)) if *last + 1 == i => *last = i,
                    Some((_, last)) if *last == i => {}
                    _ => runs.push((i, i)),
                }
            }
        }
        runs
    }

    /// Whether every row of block `i` matches `region`/`window` without
    /// decoding: the window covers the whole slice and the region covers
    /// the cell's entire clamped scope.
    fn block_fully_matches(
        &self,
        grid: &GridSpec,
        i: usize,
        region: Option<&BBox>,
        window: &TimeInterval,
    ) -> bool {
        let covers_time =
            window.contains(self.window.start()) && window.end() >= self.window.end();
        covers_time
            && match region {
                None => true,
                Some(r) => r.contains_bbox(&cell_scope(grid, self.directory[i].cell)),
            }
    }

    /// Appends every stored observation matching `region` (when given)
    /// and `window` within `cells` (sorted packed cells) to `out`.
    /// Blocks that provably match whole are decoded straight into `out`;
    /// partial blocks decode into `scratch` and filter per row.
    pub(crate) fn scan_cells(
        &self,
        grid: &GridSpec,
        cells: &[u32],
        region: Option<&BBox>,
        window: &TimeInterval,
        out: &mut Vec<Observation>,
        scratch: &mut ScanScratch,
    ) {
        for (first, last) in self.block_runs(cells) {
            let base = self.directory[first].offset as usize;
            let bytes = self.run_bytes(first, last, &mut scratch.bytes);
            for i in first..=last {
                let block = self.directory[i];
                let mut slice =
                    &bytes[block.offset as usize - base..(block.offset + block.len) as usize - base];
                if self.block_fully_matches(grid, i, region, window) {
                    decode_batch_into(&mut slice, out).expect("sealed block decodes");
                } else {
                    decode_batch_filtered(
                        &mut slice,
                        |t, p| window.contains(t) && region.is_none_or(|r| r.contains(p)),
                        out,
                    )
                    .expect("sealed block decodes");
                }
            }
        }
    }

    /// Counts matches like [`scan_cells`](Self::scan_cells) without
    /// materialising them: fully-covered blocks contribute their footer
    /// count with no decode; only partial blocks decode (into `scratch`).
    pub(crate) fn count_cells(
        &self,
        grid: &GridSpec,
        cells: &[u32],
        region: Option<&BBox>,
        window: &TimeInterval,
        scratch: &mut ScanScratch,
    ) -> usize {
        let mut total = 0usize;
        for (first, last) in self.block_runs(cells) {
            // Footer pass: covered blocks contribute their count with no
            // read; the rest group into sub-runs so reads touch only them.
            let mut subruns: Vec<(usize, usize)> = Vec::new();
            for i in first..=last {
                if self.block_fully_matches(grid, i, region, window) {
                    total += self.directory[i].count as usize;
                } else {
                    match subruns.last_mut() {
                        Some((_, l)) if *l + 1 == i => *l = i,
                        _ => subruns.push((i, i)),
                    }
                }
            }
            for (f, l) in subruns {
                let base = self.directory[f].offset as usize;
                let bytes = self.run_bytes(f, l, &mut scratch.bytes);
                for i in f..=l {
                    let block = self.directory[i];
                    let mut slice = &bytes
                        [block.offset as usize - base..(block.offset + block.len) as usize - base];
                    let mut matched = 0;
                    scan_batch_keys(&mut slice, |t, p| {
                        if window.contains(t) && region.is_none_or(|r| r.contains(p)) {
                            matched += 1;
                        }
                    })
                    .expect("sealed block decodes");
                    total += matched;
                }
            }
        }
        total
    }

    /// Accumulates observation counts into `counts` (dense row-major over
    /// `buckets`) for rows within `window`.
    ///
    /// Two tiers of short-cut keep archive-wide heat-maps off the decode
    /// path: when the window covers the whole slice **and** a block's cell
    /// scope lies inside a single bucket (always true for interior cells
    /// when `buckets` is a coarser grid aligned with the index grid), the
    /// block contributes its footer count without touching the payload.
    /// Remaining blocks are visited key-only ([`scan_batch_keys`]) — a
    /// heat-map never needs ids or signatures, so the wide columns stay
    /// encoded either way.
    pub(crate) fn heatmap_into(
        &self,
        grid: &GridSpec,
        buckets: &GridSpec,
        window: &TimeInterval,
        counts: &mut [u64],
        scratch: &mut ScanScratch,
    ) {
        if self.directory.is_empty() {
            return;
        }
        let covers_time =
            window.contains(self.window.start()) && window.end() >= self.window.end();
        // Footer pass: resolve what we can without any payload read, and
        // remember whether anything is left for the decode pass.
        let mut decode_any = false;
        let mut footer_only = vec![false; self.directory.len()];
        if covers_time {
            for (i, block) in self.directory.iter().enumerate() {
                let scope = cell_scope(grid, block.cell);
                let bucket = buckets
                    .cell_of(Point::new(
                        (scope.min.x + scope.max.x) / 2.0,
                        (scope.min.y + scope.max.y) / 2.0,
                    ))
                    .filter(|&b| buckets.cell_bbox(b).contains_bbox(&scope));
                if let Some(b) = bucket {
                    counts[b.row as usize * buckets.cols() as usize + b.col as usize] +=
                        block.count as u64;
                    footer_only[i] = true;
                } else {
                    decode_any = true;
                }
            }
        } else {
            decode_any = true;
        }
        if !decode_any {
            return;
        }
        // Read only the blocks the footer could not resolve, grouped into
        // runs of adjacent directory entries so spilled reads coalesce.
        let mut runs: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.directory.len() {
            if footer_only[i] {
                continue;
            }
            match runs.last_mut() {
                Some((_, last)) if *last + 1 == i => *last = i,
                _ => runs.push((i, i)),
            }
        }
        for (first, last) in runs {
            let base = self.directory[first].offset as usize;
            let bytes = self.run_bytes(first, last, &mut scratch.bytes);
            for block in &self.directory[first..=last] {
                let mut slice = &bytes
                    [block.offset as usize - base..(block.offset + block.len) as usize - base];
                scan_batch_keys(&mut slice, |t, p| {
                    if !covers_time && !window.contains(t) {
                        return;
                    }
                    if let Some(cell) = buckets.cell_of(p) {
                        counts[cell.row as usize * buckets.cols() as usize + cell.col as usize] +=
                            1;
                    }
                })
                .expect("sealed block decodes");
            }
        }
    }

    /// Visits every stored observation, decoding block by block.
    pub(crate) fn for_each_with(
        &self,
        scratch: &mut ScanScratch,
        f: &mut dyn FnMut(&Observation),
    ) {
        if self.directory.is_empty() {
            return;
        }
        let last = self.directory.len() - 1;
        let base = self.directory[0].offset as usize;
        // Blocks tile the payload, so one run covers the whole segment.
        let bytes = self.run_bytes(0, last, &mut scratch.bytes);
        for block in &self.directory {
            let mut slice =
                &bytes[block.offset as usize - base..(block.offset + block.len) as usize - base];
            scratch.rows.clear();
            decode_batch_into(&mut slice, &mut scratch.rows).expect("sealed block decodes");
            for o in &scratch.rows {
                f(o);
            }
        }
    }

    /// Decodes every stored observation (cell order, stored row order).
    pub fn unseal(&self) -> Vec<Observation> {
        let mut out = Vec::with_capacity(self.count as usize);
        let mut scratch = ScanScratch::default();
        self.for_each_with(&mut scratch, &mut |o| out.push(o.clone()));
        out
    }

    /// Splits off the rows whose position lies inside `region` as a new
    /// resident segment, without modifying `self`. Blocks whose whole
    /// cell scope is inside `region` are byte-copied; partial blocks are
    /// decoded, filtered, and re-encoded. Returns `None` when nothing
    /// matches. Deterministic: the same source segment and region always
    /// produce an identical sub-segment (same digest), so retried
    /// exports/installs deduplicate cleanly.
    pub(crate) fn split_region(&self, grid: &GridSpec, region: &BBox) -> Option<SealedSegment> {
        let (sub, _) = self.partition_region(grid, region);
        sub
    }

    /// Rewrites the segment without the rows inside `region`, returning
    /// the extracted rows and the remainder segment (`None` when empty).
    /// Consumes `self`.
    pub(crate) fn extract_region(
        self,
        grid: &GridSpec,
        region: &BBox,
    ) -> (Option<SealedSegment>, Vec<Observation>) {
        let (sub, remainder) = self.partition_region(grid, region);
        let extracted = sub.map(|s| s.unseal()).unwrap_or_default();
        (remainder, extracted)
    }

    /// Builds (matching, remainder) segments for `region` in one pass.
    /// Either side is `None` when empty; untouched blocks are byte-copied
    /// into whichever side they belong to.
    fn partition_region(
        &self,
        grid: &GridSpec,
        region: &BBox,
    ) -> (Option<SealedSegment>, Option<SealedSegment>) {
        let mut inside = SegmentBuilder::new(self.number, self.window);
        let mut outside = SegmentBuilder::new(self.number, self.window);
        let mut scratch = ScanScratch::default();
        let mut whole = Vec::new();
        if let Some(last) = self.directory.len().checked_sub(1) {
            let base = self.directory[0].offset as usize;
            let bytes = self.run_bytes(0, last, &mut whole);
            for block in &self.directory {
                let raw = &bytes
                    [block.offset as usize - base..(block.offset + block.len) as usize - base];
                let scope = cell_scope(grid, block.cell);
                if region.contains_bbox(&scope) {
                    inside.push_raw(*block, raw);
                } else if region.intersection(&scope).is_none() {
                    outside.push_raw(*block, raw);
                } else {
                    scratch.rows.clear();
                    let mut slice = raw;
                    decode_batch_into(&mut slice, &mut scratch.rows)
                        .expect("sealed block decodes");
                    let (hit, miss): (Vec<Observation>, Vec<Observation>) = scratch
                        .rows
                        .drain(..)
                        .partition(|o| region.contains(o.position));
                    inside.push_rows(block.cell, &hit);
                    outside.push_rows(block.cell, &miss);
                }
            }
        }
        (inside.finish(), outside.finish())
    }

    /// Whether any stored cell's scope intersects `region` — a cheap
    /// footer-only pre-check before paying for a rewrite.
    pub(crate) fn touches(&self, grid: &GridSpec, region: &BBox) -> bool {
        self.directory
            .iter()
            .any(|b| region.intersection(&cell_scope(grid, b.cell)).is_some())
    }

    /// The stored rows of one packed cell passing `keep(time, position)`,
    /// appended to `out`. kNN ring expansion uses the predicate to fold
    /// its window check and current k-th-distance bound into the scan, so
    /// rows that cannot make the answer are never fully decoded.
    pub(crate) fn cell_filtered(
        &self,
        cell: u32,
        keep: impl FnMut(Timestamp, Point) -> bool,
        out: &mut Vec<Observation>,
        scratch: &mut ScanScratch,
    ) {
        let Ok(i) = self.directory.binary_search_by_key(&cell, |b| b.cell) else {
            return;
        };
        let mut slice = self.run_bytes(i, i, &mut scratch.bytes);
        decode_batch_filtered(&mut slice, keep, out).expect("sealed block decodes");
    }

    /// The wire/at-rest frame of this segment (clones the payload;
    /// spilled segments read it back from disk).
    pub fn to_frame(&self) -> SegmentFrame {
        let payload = match &self.data {
            SegmentData::Resident(p) => p.clone(),
            SegmentData::Spilled { len, file, .. } => {
                let mut buf = vec![0u8; *len];
                file.read_exact_at(&mut buf, 0)
                    .expect("segment spill file read");
                buf
            }
        };
        SegmentFrame {
            number: self.number,
            window: self.window,
            count: self.count,
            checksum: self.checksum,
            directory: self.directory.clone(),
            payload,
        }
    }

    /// Adopts a decoded frame (structure already validated by the codec
    /// layer). Verifies the content checksums — every block's rows must
    /// fold to the advertised block checksum — so a peer cannot install a
    /// frame whose digest misrepresents its contents.
    pub fn from_frame(frame: SegmentFrame) -> Result<SealedSegment, DecodeError> {
        for (i, block) in frame.directory.iter().enumerate() {
            let mut bytes = frame.block_payload(i);
            let rows = decode_batch(&mut bytes).map_err(|_| DecodeError::InvalidValue {
                reason: "segment block payload does not decode",
            })?;
            if rows.len() != block.count as usize {
                return Err(DecodeError::InvalidValue {
                    reason: "segment block count does not match payload",
                });
            }
            let fold = rows
                .iter()
                .fold(0u64, |acc, o| acc ^ observation_checksum(o));
            if fold != block.checksum {
                return Err(DecodeError::InvalidValue {
                    reason: "segment block checksum does not match payload",
                });
            }
            if !rows.iter().all(|o| frame.window.contains(o.time)) {
                return Err(DecodeError::InvalidValue {
                    reason: "segment row outside slice window",
                });
            }
        }
        Ok(SealedSegment {
            number: frame.number,
            window: frame.window,
            count: frame.count,
            checksum: frame.checksum,
            directory: frame.directory,
            data: SegmentData::Resident(frame.payload),
        })
    }
}

/// Reusable decode buffers threaded through segment scans so repeated
/// block decodes reuse allocations.
#[derive(Debug, Default)]
pub(crate) struct ScanScratch {
    /// Spilled-read byte buffer.
    bytes: Vec<u8>,
    /// Per-block decoded rows.
    rows: Vec<Observation>,
}

/// Accumulates blocks (raw or re-encoded) into a new resident segment.
struct SegmentBuilder {
    number: u64,
    window: TimeInterval,
    payload: Vec<u8>,
    directory: Vec<SegmentBlock>,
    count: u64,
    checksum: u64,
}

impl SegmentBuilder {
    fn new(number: u64, window: TimeInterval) -> Self {
        SegmentBuilder {
            number,
            window,
            payload: Vec::new(),
            directory: Vec::new(),
            count: 0,
            checksum: 0,
        }
    }

    /// Byte-copies an existing block (directory entry recomputed for the
    /// new offset).
    fn push_raw(&mut self, block: SegmentBlock, raw: &[u8]) {
        let offset = self.payload.len() as u32;
        self.payload.extend_from_slice(raw);
        self.directory.push(SegmentBlock { offset, ..block });
        self.count += block.count as u64;
        self.checksum ^= block.checksum;
    }

    /// Encodes `rows` as a fresh block for `cell` (no-op when empty).
    fn push_rows(&mut self, cell: u32, rows: &[Observation]) {
        if rows.is_empty() {
            return;
        }
        let offset = self.payload.len() as u32;
        encode_batch(rows, &mut self.payload);
        let checksum = rows
            .iter()
            .fold(0u64, |acc, o| acc ^ observation_checksum(o));
        self.directory.push(SegmentBlock {
            cell,
            offset,
            len: self.payload.len() as u32 - offset,
            count: rows.len() as u32,
            checksum,
        });
        self.count += rows.len() as u64;
        self.checksum ^= checksum;
    }

    fn finish(self) -> Option<SealedSegment> {
        if self.count == 0 {
            return None;
        }
        Some(SealedSegment {
            number: self.number,
            window: self.window,
            count: self.count,
            checksum: self.checksum,
            directory: self.directory,
            data: SegmentData::Resident(self.payload),
        })
    }
}
