//! The archive tier: sealed segments keyed by slice number.

use std::collections::BTreeMap;
use std::path::PathBuf;

use stcam_geo::{BBox, GridSpec, Timestamp};

use crate::segment::{SealedSegment, SegmentDigest};

/// Holds every sealed segment of an index, ordered by slice number. A
/// slice number can map to several segments: an overlay reseal or an
/// installed remote segment coexists with what is already archived
/// (their row sets are disjoint by the ingest dedup upstream).
#[derive(Debug, Default)]
pub(crate) struct SegmentStore {
    segments: BTreeMap<u64, Vec<SealedSegment>>,
    len: usize,
    /// Spill target; when set, added segments move their payload to disk.
    spill_dir: Option<PathBuf>,
    /// Monotonic tag making spill file names unique within this store.
    next_tag: u64,
}

impl SegmentStore {
    pub(crate) fn new(spill_dir: Option<PathBuf>) -> Self {
        SegmentStore {
            spill_dir,
            ..SegmentStore::default()
        }
    }

    /// Total observations across all segments.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of sealed segments.
    pub(crate) fn segment_count(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    /// Approximate heap bytes (resident payloads + footers).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.iter().map(SealedSegment::resident_bytes).sum()
    }

    /// Payload bytes spilled to disk.
    pub(crate) fn spilled_bytes(&self) -> usize {
        self.iter().map(SealedSegment::spilled_bytes).sum()
    }

    /// Smallest slice number present.
    pub(crate) fn first_number(&self) -> Option<u64> {
        self.segments.keys().next().copied()
    }

    /// Largest slice number present.
    pub(crate) fn last_number(&self) -> Option<u64> {
        self.segments.keys().next_back().copied()
    }

    /// All slice numbers present, ascending.
    pub(crate) fn numbers(&self) -> impl Iterator<Item = u64> + '_ {
        self.segments.keys().copied()
    }

    /// Adds a segment, spilling its payload when a spill dir is set.
    pub(crate) fn add(&mut self, mut segment: SealedSegment) {
        if segment.is_empty() {
            return;
        }
        if let Some(dir) = &self.spill_dir {
            segment.spill(dir, self.next_tag);
            self.next_tag += 1;
        }
        self.len += segment.len();
        self.segments.entry(segment.number()).or_default().push(segment);
    }

    /// Whether a segment with exactly this digest is already stored.
    pub(crate) fn contains(&self, digest: SegmentDigest) -> bool {
        self.segments
            .get(&digest.number)
            .is_some_and(|v| v.iter().any(|s| s.digest() == digest))
    }

    /// Every stored segment, slice order then install order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &SealedSegment> {
        self.segments.values().flatten()
    }

    /// Segments whose slice number lies in `[lo, hi]`.
    pub(crate) fn overlapping(&self, lo: u64, hi: u64) -> impl Iterator<Item = &SealedSegment> {
        self.segments.range(lo..=hi).flat_map(|(_, v)| v.iter())
    }

    /// Digests of every stored segment, ascending by (number, digest).
    pub(crate) fn digests(&self) -> Vec<SegmentDigest> {
        let mut out: Vec<SegmentDigest> = self.iter().map(SealedSegment::digest).collect();
        out.sort();
        out
    }

    /// Removes and returns every segment of one slice number (payloads
    /// loaded back into memory; spill files are deleted on drop when the
    /// caller discards them, so unsealing must happen via the returned
    /// values before then).
    pub(crate) fn take_number(&mut self, number: u64) -> Vec<SealedSegment> {
        let taken = self.segments.remove(&number).unwrap_or_default();
        self.len -= taken.iter().map(SealedSegment::len).sum::<usize>();
        taken
    }

    /// Drops every segment whose window ends at or before `cutoff`.
    /// Returns the number of observations removed.
    pub(crate) fn evict_before(&mut self, cutoff: Timestamp) -> usize {
        let stale: Vec<u64> = self
            .segments
            .iter()
            .take_while(|(_, v)| v.iter().all(|s| s.window().end() <= cutoff))
            .map(|(&n, _)| n)
            .collect();
        let mut removed = 0;
        for n in stale {
            removed += self
                .segments
                .remove(&n)
                .map(|v| v.iter().map(SealedSegment::len).sum::<usize>())
                .unwrap_or(0);
        }
        self.len -= removed;
        removed
    }

    /// Extracts every row inside `region` from all segments, rewriting
    /// touched segments in place. Returns the extracted rows (segment
    /// order; caller sorts).
    pub(crate) fn extract_region(
        &mut self,
        grid: &GridSpec,
        region: &BBox,
        out: &mut Vec<stcam_camnet::Observation>,
    ) {
        let numbers: Vec<u64> = self.segments.keys().copied().collect();
        for number in numbers {
            let group = self.segments.remove(&number).unwrap_or_default();
            let mut kept = Vec::with_capacity(group.len());
            for segment in group {
                if !segment.touches(grid, region) {
                    kept.push(segment);
                    continue;
                }
                self.len -= segment.len();
                let (remainder, extracted) = segment.extract_region(grid, region);
                out.extend(extracted);
                if let Some(mut rest) = remainder {
                    if let Some(dir) = &self.spill_dir {
                        rest.spill(dir, self.next_tag);
                        self.next_tag += 1;
                    }
                    self.len += rest.len();
                    kept.push(rest);
                }
            }
            if !kept.is_empty() {
                self.segments.insert(number, kept);
            }
        }
    }
}
