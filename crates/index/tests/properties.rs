//! Property-based equivalence: `StIndex` answers every query exactly like
//! the flat-scan oracle, across arbitrary workloads, eviction points and
//! query shapes.

use proptest::prelude::*;
use stcam_camnet::{CameraId, Observation, ObservationId, Signature};
use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
use stcam_index::{FlatIndex, IndexConfig, StIndex};
use stcam_world::{EntityClass, EntityId};

const EXTENT: f64 = 500.0;
const SLICE_MS: u64 = 5_000;

fn config() -> IndexConfig {
    IndexConfig::new(
        BBox::new(Point::new(0.0, 0.0), Point::new(EXTENT, EXTENT)),
        37.0, // deliberately not a divisor of the extent
        Duration::from_millis(SLICE_MS),
    )
}

#[derive(Debug, Clone)]
struct RawObs {
    t_ms: u64,
    x: f64,
    y: f64,
}

fn raw_obs() -> impl Strategy<Value = RawObs> {
    (0u64..60_000, 0.0..EXTENT, 0.0..EXTENT).prop_map(|(t_ms, x, y)| RawObs { t_ms, x, y })
}

fn materialize(raw: &[RawObs]) -> Vec<Observation> {
    raw.iter()
        .enumerate()
        .map(|(i, r)| Observation {
            id: ObservationId::compose(CameraId(0), i as u64),
            camera: CameraId(0),
            time: Timestamp::from_millis(r.t_ms),
            position: Point::new(r.x, r.y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(i as u64),
            truth: Some(EntityId(i as u64)),
        })
        .collect()
}

fn build_both(raw: &[RawObs]) -> (StIndex, FlatIndex) {
    let obs = materialize(raw);
    let mut index = StIndex::new(config());
    let mut oracle = FlatIndex::new();
    for o in obs {
        index.insert(o.clone());
        oracle.insert(o);
    }
    (index, oracle)
}

fn ids<T: std::borrow::Borrow<Observation>>(v: &[T]) -> Vec<ObservationId> {
    v.iter().map(|o| o.borrow().id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_equivalence(
        raw in prop::collection::vec(raw_obs(), 0..300),
        qx in -100.0..600.0f64, qy in -100.0..600.0f64,
        qw in 0.0..400.0f64, qh in 0.0..400.0f64,
        t0 in 0u64..70_000, dt in 0u64..40_000,
    ) {
        let (index, oracle) = build_both(&raw);
        let region = BBox::new(Point::new(qx, qy), Point::new(qx + qw, qy + qh));
        let window = TimeInterval::new(Timestamp::from_millis(t0), Timestamp::from_millis(t0 + dt));
        prop_assert_eq!(ids(&index.range(region, window)), ids(&oracle.range(region, window)));
        prop_assert_eq!(index.range_count(region, window), oracle.range(region, window).len());
    }

    #[test]
    fn knn_equivalence(
        raw in prop::collection::vec(raw_obs(), 0..300),
        qx in -100.0..600.0f64, qy in -100.0..600.0f64,
        k in 0usize..30,
        t0 in 0u64..70_000, dt in 1u64..40_000,
    ) {
        let (index, oracle) = build_both(&raw);
        let at = Point::new(qx, qy);
        let window = TimeInterval::new(Timestamp::from_millis(t0), Timestamp::from_millis(t0 + dt));
        prop_assert_eq!(ids(&index.knn(at, window, k)), ids(&oracle.knn(at, window, k)));
    }

    #[test]
    fn heatmap_equivalence(
        raw in prop::collection::vec(raw_obs(), 0..300),
        t0 in 0u64..70_000, dt in 0u64..40_000,
        bucket_size in 40.0..200.0f64,
    ) {
        let (index, oracle) = build_both(&raw);
        let buckets = stcam_geo::GridSpec::covering(
            BBox::new(Point::new(0.0, 0.0), Point::new(EXTENT, EXTENT)),
            bucket_size,
        );
        let window = TimeInterval::new(Timestamp::from_millis(t0), Timestamp::from_millis(t0 + dt));
        prop_assert_eq!(index.heatmap(&buckets, window), oracle.heatmap(&buckets, window));
    }

    #[test]
    fn eviction_equivalence_on_slice_boundaries(
        raw in prop::collection::vec(raw_obs(), 0..300),
        cut_slices in 0u64..14,
    ) {
        // FlatIndex eviction is exact; StIndex is slice-granular, so they
        // agree exactly when the cutoff lies on a slice boundary.
        let (mut index, mut oracle) = build_both(&raw);
        let cutoff = Timestamp::from_millis(cut_slices * SLICE_MS);
        index.evict_before(cutoff);
        oracle.evict_before(cutoff);
        prop_assert_eq!(index.len(), oracle.len());
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(EXTENT, EXTENT));
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_millis(100_000));
        prop_assert_eq!(ids(&index.range(region, window)), ids(&oracle.range(region, window)));
    }

    #[test]
    fn insertion_order_does_not_matter(
        raw in prop::collection::vec(raw_obs(), 1..150),
        qx in 0.0..EXTENT, qy in 0.0..EXTENT, qr in 10.0..250.0f64,
    ) {
        let obs = materialize(&raw);
        let mut forward = StIndex::new(config());
        let mut backward = StIndex::new(config());
        for o in &obs {
            forward.insert(o.clone());
        }
        for o in obs.iter().rev() {
            backward.insert(o.clone());
        }
        let region = BBox::around(Point::new(qx, qy), qr);
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_millis(100_000));
        prop_assert_eq!(ids(&forward.range(region, window)), ids(&backward.range(region, window)));
    }

    #[test]
    fn sealing_on_or_off_answers_identically(
        raw in prop::collection::vec(raw_obs(), 0..300),
        qx in -100.0..600.0f64, qy in -100.0..600.0f64,
        qw in 0.0..400.0f64, qh in 0.0..400.0f64,
        t0 in 0u64..70_000, dt in 0u64..40_000,
        k in 0usize..20,
        ex in 0.0..EXTENT, ey in 0.0..EXTENT, er in 10.0..300.0f64,
    ) {
        let obs = materialize(&raw);
        let mut sealed = StIndex::new(config().with_head_slices(1));
        let mut unsealed = StIndex::new(config().without_sealing());
        for o in &obs {
            sealed.insert(o.clone());
            unsealed.insert(o.clone());
        }
        sealed.seal_all();
        prop_assert_eq!(unsealed.stats().sealed_segments, 0);
        let region = BBox::new(Point::new(qx, qy), Point::new(qx + qw, qy + qh));
        let window = TimeInterval::new(Timestamp::from_millis(t0), Timestamp::from_millis(t0 + dt));
        prop_assert_eq!(sealed.range(region, window), unsealed.range(region, window));
        prop_assert_eq!(sealed.range_count(region, window), unsealed.range_count(region, window));
        prop_assert_eq!(
            ids(&sealed.knn(Point::new(qx, qy), window, k)),
            ids(&unsealed.knn(Point::new(qx, qy), window, k))
        );
        let buckets = stcam_geo::GridSpec::covering(
            BBox::new(Point::new(0.0, 0.0), Point::new(EXTENT, EXTENT)),
            90.0,
        );
        prop_assert_eq!(sealed.heatmap(&buckets, window), unsealed.heatmap(&buckets, window));
        // extract_range removes identical sets from both.
        let cut = BBox::around(Point::new(ex, ey), er);
        let a = sealed.extract_range(cut);
        let b = unsealed.extract_range(cut);
        prop_assert_eq!(ids(&a), ids(&b));
        prop_assert_eq!(sealed.len(), unsealed.len());
    }

    #[test]
    fn segment_frame_round_trips_through_the_wire(
        raw in prop::collection::vec(raw_obs(), 1..200),
    ) {
        // seal → encode → decode → unseal equals the input rows.
        let obs = materialize(&raw);
        let mut index = StIndex::new(config().with_head_slices(1));
        for o in &obs {
            index.insert(o.clone());
        }
        index.seal_all();
        let everything = BBox::new(Point::new(-1e12, -1e12), Point::new(1e12, 1e12));
        let (frames, head) = index.export_segments(everything, &[]);
        prop_assert!(head.is_empty());
        let mut recovered: Vec<Observation> = Vec::new();
        for frame in frames {
            let bytes = stcam_codec::encode_to_vec(&frame);
            let back: stcam_codec::SegmentFrame =
                stcam_codec::decode_from_slice(&bytes).expect("frame decodes");
            prop_assert_eq!(&back, &frame);
            let segment = stcam_index::SealedSegment::from_frame(back).expect("frame verifies");
            recovered.extend(segment.unseal());
        }
        recovered.sort_by_key(|o| o.id);
        let mut expected = obs;
        expected.sort_by_key(|o| o.id);
        prop_assert_eq!(recovered, expected);
    }

    #[test]
    fn len_tracks_inserts_and_evictions(
        raw in prop::collection::vec(raw_obs(), 0..200),
        cut_ms in 0u64..80_000,
    ) {
        let (mut index, _) = build_both(&raw);
        prop_assert_eq!(index.len(), raw.len());
        index.evict_before(Timestamp::from_millis(cut_ms));
        let stats = index.stats();
        prop_assert_eq!(stats.observations, index.len());
        // Everything still present is in a slice ending after the cutoff.
        if let Some(oldest) = stats.oldest {
            prop_assert!(oldest.as_millis() + SLICE_MS > cut_ms || index.is_empty());
        }
    }
}
