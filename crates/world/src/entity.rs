//! Moving entities.

use std::fmt;

use stcam_geo::Point;

/// Identifier of a ground-truth entity (a real vehicle or person in the
/// simulated city). Camera detections never carry this id — recovering it
/// is the job of the track-stitching layer — but the evaluation uses it to
/// score accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u64);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Coarse class of a moving entity; affects speed range and how cameras
/// see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityClass {
    /// A person on foot (≈ 0.8–2 m/s).
    Pedestrian,
    /// A bicycle (≈ 3–7 m/s).
    Bicycle,
    /// A passenger car (≈ 6–15 m/s).
    Car,
    /// A truck or bus (≈ 5–12 m/s).
    Truck,
}

impl EntityClass {
    /// All classes, in discriminant order.
    pub const ALL: [EntityClass; 4] = [
        EntityClass::Pedestrian,
        EntityClass::Bicycle,
        EntityClass::Car,
        EntityClass::Truck,
    ];

    /// Inclusive speed range in metres per second typical for the class.
    pub fn speed_range(self) -> (f64, f64) {
        match self {
            EntityClass::Pedestrian => (0.8, 2.0),
            EntityClass::Bicycle => (3.0, 7.0),
            EntityClass::Car => (6.0, 15.0),
            EntityClass::Truck => (5.0, 12.0),
        }
    }

    /// Stable small integer for wire encoding and array indexing.
    pub fn as_u8(self) -> u8 {
        match self {
            EntityClass::Pedestrian => 0,
            EntityClass::Bicycle => 1,
            EntityClass::Car => 2,
            EntityClass::Truck => 3,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8).
    pub fn from_u8(v: u8) -> Option<Self> {
        EntityClass::ALL.get(v as usize).copied()
    }
}

impl fmt::Display for EntityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntityClass::Pedestrian => "pedestrian",
            EntityClass::Bicycle => "bicycle",
            EntityClass::Car => "car",
            EntityClass::Truck => "truck",
        };
        f.write_str(s)
    }
}

/// The live state of one simulated entity.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Stable ground-truth identity.
    pub id: EntityId,
    /// Class (fixed for the entity's lifetime).
    pub class: EntityClass,
    /// Current position in the local planar frame.
    pub position: Point,
    /// Current cruise speed, metres per second.
    pub speed: f64,
    /// Current movement target; `None` while a new one is being chosen.
    pub(crate) waypoint: Option<Point>,
    /// Remaining route for path-following models (stack: next hop last).
    pub(crate) route: Vec<Point>,
}

impl Entity {
    /// Unit direction of travel toward the current waypoint, if moving.
    pub fn direction(&self) -> Option<Point> {
        let wp = self.waypoint?;
        (wp - self.position).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_round_trip_u8() {
        for c in EntityClass::ALL {
            assert_eq!(EntityClass::from_u8(c.as_u8()), Some(c));
        }
        assert_eq!(EntityClass::from_u8(200), None);
    }

    #[test]
    fn speed_ranges_sane() {
        for c in EntityClass::ALL {
            let (lo, hi) = c.speed_range();
            assert!(lo > 0.0 && hi > lo && hi < 50.0);
        }
    }

    #[test]
    fn direction_points_at_waypoint() {
        let e = Entity {
            id: EntityId(1),
            class: EntityClass::Car,
            position: Point::new(0.0, 0.0),
            speed: 10.0,
            waypoint: Some(Point::new(10.0, 0.0)),
            route: vec![],
        };
        let d = e.direction().unwrap();
        assert!((d.x - 1.0).abs() < 1e-12 && d.y.abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(EntityId(7).to_string(), "e7");
        assert_eq!(EntityClass::Car.to_string(), "car");
    }
}
