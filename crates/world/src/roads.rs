//! A Manhattan-style road grid.

use stcam_geo::{BBox, Point};

/// A rectangular grid of roads: streets run east–west and north–south at
/// a fixed spacing, meeting at intersections. Entities using the
/// grid-walk mobility model travel only along roads, which concentrates
/// traffic the way real camera deployments see it (cameras watch roads,
/// not building interiors).
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    extent: BBox,
    spacing: f64,
    cols: u32,
    rows: u32,
}

impl RoadNetwork {
    /// Lays a road grid with intersections every `spacing` metres over
    /// `extent` (anchored at `extent.min`; the last road may fall inside
    /// the extent boundary).
    ///
    /// # Panics
    ///
    /// Panics if `extent` is empty or `spacing` is not positive and smaller
    /// than both extent dimensions.
    pub fn grid(extent: BBox, spacing: f64) -> Self {
        assert!(!extent.is_empty(), "extent must be non-empty");
        assert!(spacing > 0.0, "spacing must be positive");
        let cols = (extent.width() / spacing).floor() as u32 + 1;
        let rows = (extent.height() / spacing).floor() as u32 + 1;
        assert!(cols >= 2 && rows >= 2, "extent too small for road spacing");
        RoadNetwork {
            extent,
            spacing,
            cols,
            rows,
        }
    }

    /// The covered region.
    pub fn extent(&self) -> BBox {
        self.extent
    }

    /// Distance between adjacent parallel roads.
    pub fn spacing(&self) -> f64 {
        self.spacing
    }

    /// Number of north–south roads.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of east–west roads.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of intersections.
    pub fn intersection_count(&self) -> u64 {
        self.cols as u64 * self.rows as u64
    }

    /// The position of intersection `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of range.
    pub fn intersection(&self, col: u32, row: u32) -> Point {
        debug_assert!(col < self.cols && row < self.rows);
        Point::new(
            self.extent.min.x + col as f64 * self.spacing,
            self.extent.min.y + row as f64 * self.spacing,
        )
    }

    /// The `(col, row)` of the intersection nearest to `p` (clamped to the
    /// grid).
    pub fn nearest_intersection(&self, p: Point) -> (u32, u32) {
        let col = ((p.x - self.extent.min.x) / self.spacing).round().max(0.0) as u32;
        let row = ((p.y - self.extent.min.y) / self.spacing).round().max(0.0) as u32;
        (col.min(self.cols - 1), row.min(self.rows - 1))
    }

    /// The intersections adjacent to `(col, row)` along roads (up to four).
    pub fn neighbors(&self, col: u32, row: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(4);
        if col > 0 {
            out.push((col - 1, row));
        }
        if col + 1 < self.cols {
            out.push((col + 1, row));
        }
        if row > 0 {
            out.push((col, row - 1));
        }
        if row + 1 < self.rows {
            out.push((col, row + 1));
        }
        out
    }

    /// An L-shaped route along roads from the intersection nearest `from`
    /// to the intersection nearest `to`: first east–west, then
    /// north–south. Returns the sequence of intersection positions
    /// including both endpoints.
    pub fn route(&self, from: Point, to: Point) -> Vec<Point> {
        let (c0, r0) = self.nearest_intersection(from);
        let (c1, r1) = self.nearest_intersection(to);
        let mut path = Vec::new();
        let mut c = c0;
        path.push(self.intersection(c, r0));
        while c != c1 {
            c = if c1 > c { c + 1 } else { c - 1 };
            path.push(self.intersection(c, r0));
        }
        let mut r = r0;
        while r != r1 {
            r = if r1 > r { r + 1 } else { r - 1 };
            path.push(self.intersection(c, r));
        }
        path
    }

    /// Total length of `route` produced by [`route`](Self::route).
    pub fn route_length(route: &[Point]) -> f64 {
        route.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// `true` when `p` lies within `tolerance` metres of some road.
    pub fn on_road(&self, p: Point, tolerance: f64) -> bool {
        if !self.extent.inflated(tolerance).contains(p) {
            return false;
        }
        let fx = (p.x - self.extent.min.x) / self.spacing;
        let fy = (p.y - self.extent.min.y) / self.spacing;
        let off_x = (fx - fx.round()).abs() * self.spacing;
        let off_y = (fy - fy.round()).abs() * self.spacing;
        // Near a north-south road (x close to a road line, any y) or an
        // east-west road, provided the nearest road line actually exists.
        let near_ns = off_x <= tolerance && fx.round() >= 0.0 && (fx.round() as u32) < self.cols;
        let near_ew = off_y <= tolerance && fy.round() >= 0.0 && (fy.round() as u32) < self.rows;
        near_ns || near_ew
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> RoadNetwork {
        RoadNetwork::grid(
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 800.0)),
            100.0,
        )
    }

    #[test]
    fn grid_dimensions() {
        let n = net();
        assert_eq!(n.cols(), 11);
        assert_eq!(n.rows(), 9);
        assert_eq!(n.intersection_count(), 99);
        assert_eq!(n.intersection(0, 0), Point::new(0.0, 0.0));
        assert_eq!(n.intersection(10, 8), Point::new(1000.0, 800.0));
    }

    #[test]
    fn nearest_intersection_rounds_and_clamps() {
        let n = net();
        assert_eq!(n.nearest_intersection(Point::new(149.0, 251.0)), (1, 3));
        assert_eq!(n.nearest_intersection(Point::new(151.0, 249.0)), (2, 2));
        assert_eq!(n.nearest_intersection(Point::new(-500.0, 9999.0)), (0, 8));
    }

    #[test]
    fn neighbors_at_corner_and_center() {
        let n = net();
        assert_eq!(n.neighbors(0, 0).len(), 2);
        assert_eq!(n.neighbors(5, 4).len(), 4);
        assert_eq!(n.neighbors(10, 4).len(), 3);
    }

    #[test]
    fn route_is_connected_and_rectilinear() {
        let n = net();
        let route = n.route(Point::new(20.0, 30.0), Point::new(940.0, 720.0));
        assert!(route.len() >= 2);
        for w in route.windows(2) {
            let d = w[0].distance(w[1]);
            assert!((d - 100.0).abs() < 1e-9, "hop length {d}");
            // Rectilinear: exactly one coordinate changes.
            assert!((w[0].x == w[1].x) ^ (w[0].y == w[1].y));
        }
        // Manhattan length matches |Δc| + |Δr| hops.
        assert_eq!(route.len(), 1 + 9 + 7);
        assert!((RoadNetwork::route_length(&route) - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn route_same_point_single_node() {
        let n = net();
        let route = n.route(Point::new(10.0, 10.0), Point::new(10.0, 10.0));
        assert_eq!(route.len(), 1);
    }

    #[test]
    fn on_road_detects_roads() {
        let n = net();
        assert!(n.on_road(Point::new(100.0, 57.0), 1.0)); // on a NS road
        assert!(n.on_road(Point::new(57.0, 300.0), 1.0)); // on an EW road
        assert!(!n.on_road(Point::new(50.0, 50.0), 1.0)); // mid-block
        assert!(!n.on_road(Point::new(5000.0, 100.0), 1.0)); // off-extent
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_extent_panics() {
        let _ = RoadNetwork::grid(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            100.0,
        );
    }
}
