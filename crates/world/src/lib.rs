//! Synthetic city and mobility simulator.
//!
//! The original evaluation observed real traffic through a deployed camera
//! network. This crate substitutes a **synthetic ground truth**: a
//! Manhattan-style road grid ([`RoadNetwork`]) populated with moving
//! entities ([`Entity`]) following configurable mobility models
//! ([`MobilityModel`]). The simulator advances in fixed time steps and
//! records every entity's true trajectory ([`TrajectoryStore`]), which the
//! evaluation uses both to generate camera detections (via `stcam-camnet`)
//! and to score trajectory-analysis accuracy against ground truth.
//!
//! Everything is seeded and deterministic: the same [`WorldConfig`] always
//! produces the same world history.
//!
//! # Example
//!
//! ```
//! use stcam_world::{World, WorldConfig};
//! use stcam_geo::Duration;
//!
//! let mut world = World::new(WorldConfig::small_town().with_seed(7));
//! for _ in 0..10 {
//!     world.step(Duration::from_millis(500));
//! }
//! assert!(world.now() == stcam_geo::Timestamp::from_secs(5));
//! let e = world.entities().next().unwrap();
//! assert!(world.extent().contains(e.position));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod entity;
mod mobility;
mod roads;
mod trajectory;
mod world;

pub use entity::{Entity, EntityClass, EntityId};
pub use mobility::MobilityModel;
pub use roads::RoadNetwork;
pub use trajectory::{TrackPoint, TrajectoryStore};
pub use world::{Placement, World, WorldConfig};
