//! Mobility models.

use rand::Rng;
use stcam_geo::Point;

use crate::entity::Entity;
use crate::roads::RoadNetwork;

/// How an entity chooses where to go next.
///
/// All models move the entity toward its current waypoint at its cruise
/// speed each step; they differ in how the next waypoint is selected when
/// the current one is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityModel {
    /// Classic random waypoint over the full extent: pick a uniform random
    /// point, travel straight to it, repeat. Produces spatially smooth,
    /// unstructured traffic — the pedestrian-in-a-plaza case.
    RandomWaypoint,
    /// Travel only along the road grid, choosing a random neighbouring
    /// intersection at each intersection (no immediate U-turns when other
    /// options exist). Produces the road-concentrated traffic cameras
    /// actually watch.
    GridWalk,
    /// Travel along roads between random origin–destination pairs using
    /// L-shaped routes; on arrival pick a fresh destination. Produces
    /// longer-range correlated motion, the hardest case for cross-camera
    /// hand-off because entities traverse many cameras per trip.
    Trip,
}

impl MobilityModel {
    /// Advances `entity` by `dt_secs` seconds, consulting `roads` and
    /// drawing any randomness from `rng`.
    pub fn step<R: Rng>(self, entity: &mut Entity, roads: &RoadNetwork, dt_secs: f64, rng: &mut R) {
        let mut budget = entity.speed * dt_secs;
        // Consume travel budget, possibly crossing several waypoints in
        // one step at high speed / long dt.
        while budget > 1e-9 {
            let Some(wp) = entity.waypoint else {
                self.choose_next(entity, roads, rng);
                if entity.waypoint.is_none() {
                    return; // nowhere to go (degenerate world)
                }
                continue;
            };
            let to_wp = wp - entity.position;
            let dist = to_wp.norm();
            if dist <= budget {
                entity.position = wp;
                budget -= dist;
                entity.waypoint = None;
            } else {
                entity.position = entity.position + to_wp * (budget / dist);
                budget = 0.0;
            }
        }
    }

    fn choose_next<R: Rng>(self, entity: &mut Entity, roads: &RoadNetwork, rng: &mut R) {
        match self {
            MobilityModel::RandomWaypoint => {
                let ext = roads.extent();
                entity.waypoint = Some(Point::new(
                    rng.gen_range(ext.min.x..=ext.max.x),
                    rng.gen_range(ext.min.y..=ext.max.y),
                ));
            }
            MobilityModel::GridWalk => {
                let (col, row) = roads.nearest_intersection(entity.position);
                let here = roads.intersection(col, row);
                // If we are off the grid (initial placement), first walk to
                // the nearest intersection.
                if entity.position.distance(here) > 1e-6 {
                    entity.waypoint = Some(here);
                    return;
                }
                let mut options = roads.neighbors(col, row);
                // Avoid immediate backtracking when alternatives exist:
                // drop the neighbour we would reach by reversing the last
                // stored route hop (route keeps our previous intersection).
                if let Some(prev) = entity.route.last().copied() {
                    if options.len() > 1 {
                        options.retain(|&(c, r)| roads.intersection(c, r).distance(prev) > 1e-6);
                    }
                }
                let (c, r) = options[rng.gen_range(0..options.len())];
                entity.route = vec![here];
                entity.waypoint = Some(roads.intersection(c, r));
            }
            MobilityModel::Trip => {
                // Continue the current route, or plan a new trip.
                if let Some(next) = entity.route.pop() {
                    entity.waypoint = Some(next);
                    return;
                }
                let ext = roads.extent();
                let dest = Point::new(
                    rng.gen_range(ext.min.x..=ext.max.x),
                    rng.gen_range(ext.min.y..=ext.max.y),
                );
                let mut route = roads.route(entity.position, dest);
                route.reverse(); // pop() yields hops in travel order
                if let Some(first) = route.pop() {
                    entity.waypoint = Some(first);
                    entity.route = route;
                }
            }
        }
    }
}

impl std::fmt::Display for MobilityModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MobilityModel::RandomWaypoint => "random-waypoint",
            MobilityModel::GridWalk => "grid-walk",
            MobilityModel::Trip => "trip",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityClass, EntityId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stcam_geo::BBox;

    fn roads() -> RoadNetwork {
        RoadNetwork::grid(
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            100.0,
        )
    }

    fn entity(at: Point) -> Entity {
        Entity {
            id: EntityId(0),
            class: EntityClass::Car,
            position: at,
            speed: 10.0,
            waypoint: None,
            route: vec![],
        }
    }

    #[test]
    fn step_advances_at_speed() {
        let r = roads();
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = entity(Point::new(500.0, 500.0));
        e.waypoint = Some(Point::new(600.0, 500.0));
        MobilityModel::RandomWaypoint.step(&mut e, &r, 1.0, &mut rng);
        assert!((e.position.x - 510.0).abs() < 1e-9);
    }

    #[test]
    fn random_waypoint_stays_in_extent() {
        let r = roads();
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = entity(Point::new(500.0, 500.0));
        for _ in 0..1000 {
            MobilityModel::RandomWaypoint.step(&mut e, &r, 1.0, &mut rng);
            assert!(r.extent().contains(e.position), "escaped at {}", e.position);
        }
    }

    #[test]
    fn grid_walk_stays_on_roads() {
        let r = roads();
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = entity(Point::new(200.0, 300.0)); // on an intersection
        for _ in 0..2000 {
            MobilityModel::GridWalk.step(&mut e, &r, 0.5, &mut rng);
            assert!(r.on_road(e.position, 1e-6), "off-road at {}", e.position);
        }
    }

    #[test]
    fn grid_walk_from_off_road_reaches_road() {
        let r = roads();
        let mut rng = StdRng::seed_from_u64(4);
        let mut e = entity(Point::new(250.0, 350.0)); // mid-block
        for _ in 0..100 {
            MobilityModel::GridWalk.step(&mut e, &r, 1.0, &mut rng);
        }
        assert!(r.on_road(e.position, 1e-6));
    }

    #[test]
    fn grid_walk_covers_many_intersections() {
        let r = roads();
        let mut rng = StdRng::seed_from_u64(5);
        let mut e = entity(Point::new(500.0, 500.0));
        let mut visited = std::collections::HashSet::new();
        for _ in 0..5000 {
            MobilityModel::GridWalk.step(&mut e, &r, 1.0, &mut rng);
            visited.insert(r.nearest_intersection(e.position));
        }
        assert!(visited.len() > 10, "only visited {}", visited.len());
    }

    #[test]
    fn trip_travels_along_roads_between_destinations() {
        let r = roads();
        let mut rng = StdRng::seed_from_u64(6);
        let mut e = entity(Point::new(100.0, 100.0));
        let start = e.position;
        let mut max_dist: f64 = 0.0;
        for _ in 0..3000 {
            MobilityModel::Trip.step(&mut e, &r, 1.0, &mut rng);
            max_dist = max_dist.max(start.distance(e.position));
        }
        // Trips should carry the entity far from its origin.
        assert!(max_dist > 300.0, "max distance {max_dist}");
    }

    #[test]
    fn high_speed_crosses_multiple_waypoints_in_one_step() {
        let r = roads();
        let mut rng = StdRng::seed_from_u64(7);
        let mut e = entity(Point::new(0.0, 0.0));
        e.speed = 1000.0; // crosses many 100 m blocks per second
        for _ in 0..50 {
            MobilityModel::GridWalk.step(&mut e, &r, 1.0, &mut rng);
            assert!(r.extent().contains(e.position));
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let r = roads();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut e = entity(Point::new(500.0, 500.0));
            for _ in 0..200 {
                MobilityModel::Trip.step(&mut e, &r, 1.0, &mut rng);
            }
            e.position
        };
        assert_eq!(run(42), run(42));
    }
}
