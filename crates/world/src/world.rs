//! The simulated world: configuration and stepping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam_geo::{BBox, Duration, Point, Timestamp};

use crate::entity::{Entity, EntityClass, EntityId};
use crate::mobility::MobilityModel;
use crate::roads::RoadNetwork;
use crate::trajectory::TrajectoryStore;

/// Initial spatial distribution of entities.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Uniform over the world extent.
    Uniform,
    /// A fraction of entities clusters around hotspot centres (Gaussian
    /// with the given standard deviation in metres); the rest are uniform.
    /// This models downtown rush-hour skew and drives the load-balancing
    /// experiment.
    Hotspot {
        /// Hotspot centres.
        centers: Vec<Point>,
        /// Standard deviation of each cluster, metres.
        sigma: f64,
        /// Fraction of entities placed in hotspots, `[0, 1]`.
        fraction: f64,
    },
}

/// Configuration of a simulated world. Construct with a preset
/// ([`small_town`](WorldConfig::small_town), [`city`](WorldConfig::city))
/// or field-by-field, then adjust with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Covered region.
    pub extent: BBox,
    /// Road spacing, metres.
    pub road_spacing: f64,
    /// Number of entities per class: (pedestrians, bicycles, cars, trucks).
    pub class_counts: [usize; 4],
    /// Mobility model for every entity.
    pub mobility: MobilityModel,
    /// Initial placement.
    pub placement: Placement,
    /// Ground-truth recording interval.
    pub record_interval: Duration,
    /// Expected fraction of the population replaced per minute by churn
    /// (vehicles parking and fresh ones departing); 0 disables churn.
    /// Replaced entities keep the population size and class mix but get a
    /// fresh identity and position — the ground truth for cross-camera
    /// re-identification under realistic arrival/departure dynamics.
    pub churn_per_minute: f64,
    /// RNG seed; equal configs produce identical histories.
    pub seed: u64,
}

impl WorldConfig {
    /// A 2 km × 2 km town with 200 entities — fast enough for unit tests.
    pub fn small_town() -> Self {
        WorldConfig {
            extent: BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)),
            road_spacing: 200.0,
            class_counts: [80, 20, 80, 20],
            mobility: MobilityModel::GridWalk,
            placement: Placement::Uniform,
            record_interval: Duration::from_millis(500),
            churn_per_minute: 0.0,
            seed: 1,
        }
    }

    /// An 8 km × 8 km metro core with 20 000 entities — the evaluation's
    /// default workload (Table 1).
    pub fn city() -> Self {
        WorldConfig {
            extent: BBox::new(Point::new(0.0, 0.0), Point::new(8000.0, 8000.0)),
            road_spacing: 250.0,
            class_counts: [8000, 2000, 8000, 2000],
            mobility: MobilityModel::Trip,
            placement: Placement::Uniform,
            record_interval: Duration::from_secs(1),
            churn_per_minute: 0.05,
            seed: 1,
        }
    }

    /// Replaces the churn rate.
    pub fn with_churn_per_minute(mut self, churn: f64) -> Self {
        assert!(churn >= 0.0, "churn must be non-negative");
        self.churn_per_minute = churn;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the per-class entity counts.
    pub fn with_class_counts(mut self, counts: [usize; 4]) -> Self {
        self.class_counts = counts;
        self
    }

    /// Scales total population to approximately `total`, preserving class
    /// proportions.
    pub fn with_total_entities(mut self, total: usize) -> Self {
        let current: usize = self.class_counts.iter().sum();
        if current == 0 {
            self.class_counts = [total / 4; 4];
            return self;
        }
        let scale = total as f64 / current as f64;
        for c in &mut self.class_counts {
            *c = (*c as f64 * scale).round() as usize;
        }
        self
    }

    /// Replaces the mobility model.
    pub fn with_mobility(mut self, mobility: MobilityModel) -> Self {
        self.mobility = mobility;
        self
    }

    /// Replaces the placement.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Total entity count.
    pub fn total_entities(&self) -> usize {
        self.class_counts.iter().sum()
    }
}

/// The live simulated world.
///
/// Owns the road network, all entities, the simulation clock, and the
/// ground-truth trajectory store. Call [`step`](World::step) to advance.
#[derive(Debug)]
pub struct World {
    config: WorldConfig,
    roads: RoadNetwork,
    entities: Vec<Entity>,
    now: Timestamp,
    rng: StdRng,
    ground_truth: TrajectoryStore,
    last_record: Option<Timestamp>,
    next_entity_id: u64,
    churn_debt: f64,
    departures: u64,
}

impl World {
    /// Builds the world and places all entities.
    ///
    /// # Panics
    ///
    /// Panics when the extent is too small for the road spacing (see
    /// [`RoadNetwork::grid`]) or a hotspot fraction is out of `[0, 1]`.
    pub fn new(config: WorldConfig) -> Self {
        let roads = RoadNetwork::grid(config.extent, config.road_spacing);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut entities = Vec::with_capacity(config.total_entities());
        let mut next_id = 0u64;
        for (class_idx, &count) in config.class_counts.iter().enumerate() {
            let class = EntityClass::from_u8(class_idx as u8).expect("class index");
            let (lo, hi) = class.speed_range();
            for _ in 0..count {
                let position = sample_position(&config.placement, config.extent, &mut rng);
                entities.push(Entity {
                    id: EntityId(next_id),
                    class,
                    position,
                    speed: rng.gen_range(lo..=hi),
                    waypoint: None,
                    route: vec![],
                });
                next_id += 1;
            }
        }
        let mut world = World {
            config,
            roads,
            entities,
            now: Timestamp::ZERO,
            rng,
            ground_truth: TrajectoryStore::new(),
            last_record: None,
            next_entity_id: next_id,
            churn_debt: 0.0,
            departures: 0,
        };
        world.record_if_due();
        world
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The covered region.
    pub fn extent(&self) -> BBox {
        self.config.extent
    }

    /// The road network.
    pub fn roads(&self) -> &RoadNetwork {
        &self.roads
    }

    /// Current simulation time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Iterates over all entities' current states.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter()
    }

    /// Number of entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// The recorded ground truth so far.
    pub fn ground_truth(&self) -> &TrajectoryStore {
        &self.ground_truth
    }

    /// Total entities that have departed through churn so far.
    pub fn departures(&self) -> u64 {
        self.departures
    }

    /// Advances the simulation by `dt`: moves every entity, applies
    /// population churn, and records ground truth at the configured
    /// interval.
    pub fn step(&mut self, dt: Duration) {
        let dt_secs = dt.as_secs_f64();
        let mobility = self.config.mobility;
        for entity in &mut self.entities {
            mobility.step(entity, &self.roads, dt_secs, &mut self.rng);
        }
        self.apply_churn(dt_secs);
        self.now += dt;
        self.record_if_due();
    }

    /// Replaces a deterministic-in-expectation number of entities with
    /// fresh identities at fresh positions (same class, so the class mix
    /// is preserved).
    fn apply_churn(&mut self, dt_secs: f64) {
        if self.config.churn_per_minute <= 0.0 || self.entities.is_empty() {
            return;
        }
        self.churn_debt +=
            self.entities.len() as f64 * self.config.churn_per_minute * dt_secs / 60.0;
        while self.churn_debt >= 1.0 {
            self.churn_debt -= 1.0;
            let victim = self.rng.gen_range(0..self.entities.len());
            let class = self.entities[victim].class;
            let (lo, hi) = class.speed_range();
            let position =
                sample_position(&self.config.placement, self.config.extent, &mut self.rng);
            self.entities[victim] = Entity {
                id: EntityId(self.next_entity_id),
                class,
                position,
                speed: self.rng.gen_range(lo..=hi),
                waypoint: None,
                route: vec![],
            };
            self.next_entity_id += 1;
            self.departures += 1;
        }
    }

    /// Runs the simulation until `deadline`, stepping by `dt`.
    pub fn run_until(&mut self, deadline: Timestamp, dt: Duration) {
        assert!(dt > Duration::ZERO, "dt must be positive");
        while self.now < deadline {
            self.step(dt);
        }
    }

    fn record_if_due(&mut self) {
        let due = match self.last_record {
            None => true,
            Some(last) => self.now - last >= self.config.record_interval,
        };
        if due {
            for e in &self.entities {
                self.ground_truth.record(e.id, self.now, e.position);
            }
            self.last_record = Some(self.now);
        }
    }
}

fn sample_position<R: Rng>(placement: &Placement, extent: BBox, rng: &mut R) -> Point {
    match placement {
        Placement::Uniform => Point::new(
            rng.gen_range(extent.min.x..=extent.max.x),
            rng.gen_range(extent.min.y..=extent.max.y),
        ),
        Placement::Hotspot {
            centers,
            sigma,
            fraction,
        } => {
            assert!(
                (0.0..=1.0).contains(fraction),
                "hotspot fraction out of range"
            );
            if !centers.is_empty() && rng.gen_bool(*fraction) {
                let center = centers[rng.gen_range(0..centers.len())];
                // Box-Muller Gaussian around the hotspot, clamped to extent.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * sigma;
                let theta = std::f64::consts::TAU * u2;
                let p = center + Point::from_heading(theta) * r;
                Point::new(
                    p.x.clamp(extent.min.x, extent.max.x),
                    p.y.clamp(extent.min.y, extent.max.y),
                )
            } else {
                sample_position(&Placement::Uniform, extent, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_places_all_entities_inside() {
        let w = World::new(WorldConfig::small_town());
        assert_eq!(w.entity_count(), 200);
        for e in w.entities() {
            assert!(w.extent().contains(e.position));
        }
    }

    #[test]
    fn stepping_advances_clock_and_moves_entities() {
        let mut w = World::new(WorldConfig::small_town());
        let before: Vec<Point> = w.entities().map(|e| e.position).collect();
        w.step(Duration::from_secs(5));
        assert_eq!(w.now(), Timestamp::from_secs(5));
        let moved = w
            .entities()
            .zip(&before)
            .filter(|(e, b)| e.position.distance(**b) > 0.1)
            .count();
        assert!(moved > 150, "only {moved} entities moved");
        for e in w.entities() {
            assert!(w.extent().contains(e.position), "escaped: {}", e.position);
        }
    }

    #[test]
    fn ground_truth_recorded_at_interval() {
        let mut w = World::new(WorldConfig::small_town());
        w.run_until(Timestamp::from_secs(5), Duration::from_millis(500));
        // Recorded at t=0 and then every 500 ms → 11 samples per entity.
        let track = w.ground_truth().track(EntityId(0));
        assert_eq!(track.len(), 11);
        assert_eq!(track[0].time, Timestamp::ZERO);
        assert_eq!(track[10].time, Timestamp::from_secs(5));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut w = World::new(WorldConfig::small_town().with_seed(seed));
            w.run_until(Timestamp::from_secs(10), Duration::from_millis(500));
            w.entities().map(|e| e.position).collect::<Vec<_>>()
        };
        let a = run(9);
        let b = run(9);
        let c = run(10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hotspot_placement_concentrates_entities() {
        let center = Point::new(1000.0, 1000.0);
        let config = WorldConfig::small_town()
            .with_total_entities(1000)
            .with_placement(Placement::Hotspot {
                centers: vec![center],
                sigma: 100.0,
                fraction: 0.8,
            });
        let w = World::new(config);
        let near = w
            .entities()
            .filter(|e| e.position.distance(center) < 300.0)
            .count();
        // ~80% are Gaussian(σ=100) around the centre, nearly all within 3σ.
        assert!(near > 600, "only {near} of 1000 near hotspot");
    }

    #[test]
    fn with_total_entities_scales_proportionally() {
        let c = WorldConfig::small_town().with_total_entities(2000);
        assert_eq!(c.total_entities(), 2000);
        assert_eq!(c.class_counts, [800, 200, 800, 200]);
    }

    #[test]
    fn class_counts_respected() {
        let c = WorldConfig::small_town().with_class_counts([5, 0, 3, 0]);
        let w = World::new(c);
        let peds = w
            .entities()
            .filter(|e| e.class == EntityClass::Pedestrian)
            .count();
        let cars = w.entities().filter(|e| e.class == EntityClass::Car).count();
        assert_eq!((peds, cars, w.entity_count()), (5, 3, 8));
    }
}

#[cfg(test)]
mod churn_tests {
    use super::*;

    #[test]
    fn churn_replaces_identities_but_preserves_population_and_classes() {
        let config = WorldConfig::small_town()
            .with_seed(3)
            .with_churn_per_minute(6.0); // 10% per second: fast for a test
        let mut w = World::new(config);
        let before_ids: std::collections::HashSet<EntityId> = w.entities().map(|e| e.id).collect();
        let class_counts_before = {
            let mut c = [0usize; 4];
            for e in w.entities() {
                c[e.class.as_u8() as usize] += 1;
            }
            c
        };
        w.run_until(Timestamp::from_secs(10), Duration::from_millis(500));
        assert_eq!(w.entity_count(), 200, "population changed");
        assert!(w.departures() > 50, "only {} departures", w.departures());
        let after_ids: std::collections::HashSet<EntityId> = w.entities().map(|e| e.id).collect();
        let replaced = before_ids.difference(&after_ids).count();
        assert!(replaced > 50, "only {replaced} replaced");
        // New ids never collide with old ones.
        for e in w.entities() {
            assert!(e.id.0 < 10_000);
        }
        let class_counts_after = {
            let mut c = [0usize; 4];
            for e in w.entities() {
                c[e.class.as_u8() as usize] += 1;
            }
            c
        };
        assert_eq!(class_counts_after, class_counts_before, "class mix drifted");
    }

    #[test]
    fn zero_churn_keeps_identities() {
        let mut w = World::new(WorldConfig::small_town().with_seed(4));
        let before: Vec<EntityId> = w.entities().map(|e| e.id).collect();
        w.run_until(Timestamp::from_secs(10), Duration::from_millis(500));
        let after: Vec<EntityId> = w.entities().map(|e| e.id).collect();
        assert_eq!(before, after);
        assert_eq!(w.departures(), 0);
    }

    #[test]
    fn churn_is_deterministic() {
        let run = || {
            let config = WorldConfig::small_town()
                .with_seed(5)
                .with_churn_per_minute(3.0);
            let mut w = World::new(config);
            w.run_until(Timestamp::from_secs(20), Duration::from_millis(500));
            w.entities().map(|e| e.id).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn departed_entities_keep_their_ground_truth() {
        let config = WorldConfig::small_town()
            .with_seed(6)
            .with_churn_per_minute(6.0);
        let mut w = World::new(config);
        w.run_until(Timestamp::from_secs(10), Duration::from_millis(500));
        // Entity 0's track exists even if it departed.
        assert!(!w.ground_truth().track(EntityId(0)).is_empty());
        // Ground truth knows more entities than are currently live.
        assert!(w.ground_truth().entity_count() > w.entity_count());
    }
}
