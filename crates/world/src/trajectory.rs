//! Ground-truth trajectory recording.

use std::collections::HashMap;

use stcam_geo::{Point, TimeInterval, Timestamp};

use crate::entity::EntityId;

/// One recorded sample of an entity's true position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackPoint {
    /// Sample time.
    pub time: Timestamp,
    /// True position at `time`.
    pub position: Point,
}

/// The ground-truth archive of every entity's motion, sampled at the
/// simulator's recording interval.
///
/// The evaluation scores trajectory-analysis output against this store;
/// the framework under test never reads it.
#[derive(Debug, Default)]
pub struct TrajectoryStore {
    tracks: HashMap<EntityId, Vec<TrackPoint>>,
}

impl TrajectoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TrajectoryStore::default()
    }

    /// Appends a sample for `entity`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when samples for an entity are appended out
    /// of time order.
    pub fn record(&mut self, entity: EntityId, time: Timestamp, position: Point) {
        let track = self.tracks.entry(entity).or_default();
        debug_assert!(
            track.last().is_none_or(|last| last.time <= time),
            "samples must be appended in time order"
        );
        track.push(TrackPoint { time, position });
    }

    /// Number of entities with at least one sample.
    pub fn entity_count(&self) -> usize {
        self.tracks.len()
    }

    /// Total number of recorded samples.
    pub fn sample_count(&self) -> usize {
        self.tracks.values().map(Vec::len).sum()
    }

    /// The recorded samples for `entity`, in time order.
    pub fn track(&self, entity: EntityId) -> &[TrackPoint] {
        self.tracks.get(&entity).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all `(entity, track)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, &[TrackPoint])> {
        self.tracks.iter().map(|(id, t)| (*id, t.as_slice()))
    }

    /// The entity's interpolated true position at `t`, or `None` when `t`
    /// is outside the recorded span.
    pub fn position_at(&self, entity: EntityId, t: Timestamp) -> Option<Point> {
        let track = self.tracks.get(&entity)?;
        if track.is_empty() {
            return None;
        }
        let idx = track.partition_point(|s| s.time <= t);
        if idx == 0 {
            return (track[0].time == t).then_some(track[0].position);
        }
        let before = track[idx - 1];
        if before.time == t || idx == track.len() {
            return (before.time == t || idx < track.len()).then_some(before.position);
        }
        let after = track[idx];
        let span = (after.time - before.time).as_millis() as f64;
        if span == 0.0 {
            return Some(before.position);
        }
        let frac = (t - before.time).as_millis() as f64 / span;
        Some(before.position.lerp(after.position, frac))
    }

    /// The set of entities whose recorded track intersects both `region`
    /// (any sample inside) and `window`. Used as the oracle for
    /// range-query correctness tests.
    pub fn entities_in(&self, region: stcam_geo::BBox, window: TimeInterval) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .tracks
            .iter()
            .filter(|(_, track)| {
                track
                    .iter()
                    .any(|s| window.contains(s.time) && region.contains(s.position))
            })
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_geo::BBox;

    #[test]
    fn record_and_read_back() {
        let mut store = TrajectoryStore::new();
        store.record(EntityId(1), Timestamp::from_secs(0), Point::new(0.0, 0.0));
        store.record(EntityId(1), Timestamp::from_secs(1), Point::new(10.0, 0.0));
        store.record(EntityId(2), Timestamp::from_secs(0), Point::new(5.0, 5.0));
        assert_eq!(store.entity_count(), 2);
        assert_eq!(store.sample_count(), 3);
        assert_eq!(store.track(EntityId(1)).len(), 2);
        assert_eq!(store.track(EntityId(9)).len(), 0);
    }

    #[test]
    fn position_interpolates_linearly() {
        let mut store = TrajectoryStore::new();
        store.record(EntityId(1), Timestamp::from_secs(0), Point::new(0.0, 0.0));
        store.record(EntityId(1), Timestamp::from_secs(2), Point::new(20.0, 0.0));
        let p = store
            .position_at(EntityId(1), Timestamp::from_secs(1))
            .unwrap();
        assert!((p.x - 10.0).abs() < 1e-9);
        // Exact sample times.
        assert_eq!(
            store.position_at(EntityId(1), Timestamp::from_secs(0)),
            Some(Point::new(0.0, 0.0))
        );
        assert_eq!(
            store.position_at(EntityId(1), Timestamp::from_secs(2)),
            Some(Point::new(20.0, 0.0))
        );
    }

    #[test]
    fn position_outside_span_is_none() {
        let mut store = TrajectoryStore::new();
        store.record(EntityId(1), Timestamp::from_secs(1), Point::new(0.0, 0.0));
        store.record(EntityId(1), Timestamp::from_secs(2), Point::new(1.0, 0.0));
        assert_eq!(
            store.position_at(EntityId(1), Timestamp::from_millis(500)),
            None
        );
        assert_eq!(
            store.position_at(EntityId(1), Timestamp::from_secs(3)),
            None
        );
        assert_eq!(
            store.position_at(EntityId(5), Timestamp::from_secs(1)),
            None
        );
    }

    #[test]
    fn entities_in_region_window() {
        let mut store = TrajectoryStore::new();
        store.record(EntityId(1), Timestamp::from_secs(1), Point::new(5.0, 5.0));
        store.record(EntityId(2), Timestamp::from_secs(1), Point::new(50.0, 50.0));
        store.record(EntityId(3), Timestamp::from_secs(10), Point::new(5.0, 5.0));
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let window = TimeInterval::new(Timestamp::from_secs(0), Timestamp::from_secs(5));
        assert_eq!(store.entities_in(region, window), vec![EntityId(1)]);
    }
}
