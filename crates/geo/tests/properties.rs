//! Property-based tests for the geometric primitives.

use proptest::prelude::*;
use stcam_geo::{zorder, BBox, GridSpec, Point, Polygon, TimeInterval, Timestamp};

fn finite_coord() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn zorder_round_trip(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(zorder::decode(zorder::encode(x, y)), (x, y));
    }

    #[test]
    fn zorder_injective(a in any::<(u32, u32)>(), b in any::<(u32, u32)>()) {
        prop_assume!(a != b);
        prop_assert_ne!(zorder::encode(a.0, a.1), zorder::encode(b.0, b.1));
    }

    #[test]
    fn distance_triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
    }

    #[test]
    fn bbox_union_contains_both(a in (point(), point()), b in (point(), point())) {
        let ba = BBox::from_corners(a.0, a.1);
        let bb = BBox::from_corners(b.0, b.1);
        let u = ba.union(&bb);
        prop_assert!(u.contains_bbox(&ba));
        prop_assert!(u.contains_bbox(&bb));
    }

    #[test]
    fn bbox_intersection_within_both(a in (point(), point()), b in (point(), point())) {
        let ba = BBox::from_corners(a.0, a.1);
        let bb = BBox::from_corners(b.0, b.1);
        if let Some(i) = ba.intersection(&bb) {
            prop_assert!(ba.contains_bbox(&i));
            prop_assert!(bb.contains_bbox(&i));
        } else {
            prop_assert!(!ba.intersects(&bb));
        }
    }

    #[test]
    fn bbox_point_distance_zero_iff_contained(p in point(), a in (point(), point())) {
        let bb = BBox::from_corners(a.0, a.1);
        let d = bb.distance_to_point(p);
        prop_assert_eq!(d == 0.0, bb.contains(p));
        prop_assert!(d <= bb.max_distance_to_point(p) + 1e-9);
    }

    #[test]
    fn grid_cell_of_consistent_with_cell_bbox(
        x in 0.0..800.0f64,
        y in 0.0..600.0f64,
    ) {
        let g = GridSpec::new(Point::new(0.0, 0.0), 10.0, 80, 60);
        let cell = g.cell_of(Point::new(x, y)).expect("inside extent");
        prop_assert!(g.cell_bbox(cell).contains(Point::new(x, y)));
    }

    #[test]
    fn grid_overlap_covers_exactly_intersecting_cells(
        x0 in -50.0..850.0f64, y0 in -50.0..650.0f64,
        w in 0.0..400.0f64, h in 0.0..400.0f64,
    ) {
        let g = GridSpec::new(Point::new(0.0, 0.0), 10.0, 80, 60);
        let q = BBox::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let listed: std::collections::HashSet<_> = g.cells_overlapping(q).collect();
        for cell in g.all_cells() {
            let expected = g.cell_bbox(cell).intersects(&q);
            prop_assert_eq!(listed.contains(&cell), expected, "cell {}", cell);
        }
    }

    #[test]
    fn sector_points_within_range(
        heading in -3.0..3.0f64,
        fov in 0.2..3.0f64,
        range in 1.0..500.0f64,
        px in -600.0..600.0f64,
        py in -600.0..600.0f64,
    ) {
        let apex = Point::new(0.0, 0.0);
        let s = Polygon::sector(apex, heading, fov, range, 12);
        let p = Point::new(px, py);
        if s.contains(p) {
            // Everything inside the sector polygon is within viewing range.
            prop_assert!(apex.distance(p) <= range + 1e-6);
        }
    }

    #[test]
    fn polygon_contains_implies_bbox_contains(
        vs in prop::collection::vec(point(), 3..12),
        p in point(),
    ) {
        if let Some(poly) = Polygon::new(vs) {
            if poly.contains(p) {
                prop_assert!(poly.bbox().contains(p));
            }
        }
    }

    #[test]
    fn interval_intersection_commutes(
        a0 in 0u64..10_000, al in 0u64..10_000,
        b0 in 0u64..10_000, bl in 0u64..10_000,
    ) {
        let a = TimeInterval::new(Timestamp::from_millis(a0), Timestamp::from_millis(a0 + al));
        let b = TimeInterval::new(Timestamp::from_millis(b0), Timestamp::from_millis(b0 + bl));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(!i.is_empty());
            prop_assert!(i.start() >= a.start() && i.end() <= a.end());
        }
    }
}

proptest! {
    #[test]
    fn polygon_bbox_intersection_has_no_false_negatives(
        heading in -3.0..3.0f64,
        fov in 0.3..2.5f64,
        range in 20.0..300.0f64,
        bx in -400.0..400.0f64,
        by in -400.0..400.0f64,
        bw in 1.0..300.0f64,
        bh in 1.0..300.0f64,
        sx in 0.0..1.0f64,
        sy in 0.0..1.0f64,
    ) {
        // If a sample point of the box is inside the polygon, then
        // intersects_bbox must report an overlap (it is allowed to be
        // conservative the other way).
        let poly = Polygon::sector(Point::new(0.0, 0.0), heading, fov, range, 10);
        let bb = BBox::new(Point::new(bx, by), Point::new(bx + bw, by + bh));
        let sample = Point::new(bb.min.x + bw * sx, bb.min.y + bh * sy);
        if poly.contains(sample) {
            prop_assert!(poly.intersects_bbox(&bb), "missed overlap at {}", sample);
        }
        // Symmetric check: polygon vertices inside the box.
        if poly.vertices().iter().any(|v| bb.contains(*v)) {
            prop_assert!(poly.intersects_bbox(&bb));
        }
    }

    #[test]
    fn grid_ring_min_distance_is_a_true_lower_bound(
        col in 0u32..20, row in 0u32..20,
        radius in 0u32..10,
        px_frac in 0.0..1.0f64, py_frac in 0.0..1.0f64,
    ) {
        // For any query point inside the center cell, every point of any
        // ring cell is at least ring_min_distance away — the invariant
        // the kNN early-termination rule rests on.
        let g = GridSpec::new(Point::new(0.0, 0.0), 10.0, 20, 20);
        let center = stcam_geo::CellId::new(col, row);
        let cb = g.cell_bbox(center);
        let p = Point::new(
            cb.min.x + cb.width() * px_frac,
            cb.min.y + cb.height() * py_frac,
        );
        let bound = g.ring_min_distance(radius);
        for cell in g.ring(center, radius) {
            let d = g.cell_bbox(cell).distance_to_point(p);
            prop_assert!(
                d >= bound - 1e-9,
                "cell {} at distance {} < bound {}",
                cell, d, bound
            );
        }
    }
}
