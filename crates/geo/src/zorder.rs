//! Morton (Z-order) curve encoding.
//!
//! The partitioner places grid cells on the Z-order curve so that
//! consecutive curve positions are usually spatial neighbours; splitting
//! the curve into contiguous runs then yields spatially compact worker
//! shards. This module provides the 32-bit × 32-bit → 64-bit interleaving
//! and its inverse.

/// Spreads the bits of `v` so that bit *i* of the input lands at bit *2i*
/// of the output.
#[inline]
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`]: collects every second bit.
#[inline]
fn squash(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Interleaves `x` and `y` into a single Morton code; `x` occupies the even
/// bits, `y` the odd bits.
///
/// # Example
///
/// ```
/// assert_eq!(stcam_geo::zorder::encode(0b11, 0b00), 0b0101);
/// assert_eq!(stcam_geo::zorder::encode(0b00, 0b11), 0b1010);
/// ```
#[inline]
pub fn encode(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Inverse of [`encode`]: recovers `(x, y)`.
#[inline]
pub fn decode(code: u64) -> (u32, u32) {
    (squash(code), squash(code >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_codes() {
        assert_eq!(encode(0, 0), 0);
        assert_eq!(encode(1, 0), 1);
        assert_eq!(encode(0, 1), 2);
        assert_eq!(encode(1, 1), 3);
        assert_eq!(encode(2, 0), 4);
        assert_eq!(encode(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn round_trip_exhaustive_small() {
        for x in 0..64u32 {
            for y in 0..64u32 {
                assert_eq!(decode(encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn monotone_in_each_coordinate() {
        // Fixing y, increasing x strictly increases the code.
        let mut prev = encode(0, 7);
        for x in 1..100 {
            let c = encode(x, 7);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn locality_better_than_row_major_on_average() {
        // Neighbouring codes decode to nearby cells: average Chebyshev
        // distance between consecutive curve positions stays small.
        let n = 1u64 << 12; // 64×64 block
        let mut total = 0u64;
        for code in 1..n {
            let (x0, y0) = decode(code - 1);
            let (x1, y1) = decode(code);
            total += x0.abs_diff(x1).max(y0.abs_diff(y1)) as u64;
        }
        let avg = total as f64 / (n - 1) as f64;
        assert!(avg < 2.0, "average jump {avg} too large");
    }
}
