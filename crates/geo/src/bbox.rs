//! Axis-aligned bounding rectangles.

use std::fmt;

use crate::Point;

/// An axis-aligned bounding rectangle in the local planar frame.
///
/// A `BBox` is *closed* on its minimum edge and *closed* on its maximum edge
/// for containment tests ([`contains`](Self::contains)); overlap tests
/// ([`intersects`](Self::intersects)) treat touching boxes as intersecting.
/// An *empty* box (any max < min) contains nothing and intersects nothing.
///
/// # Example
///
/// ```
/// use stcam_geo::{BBox, Point};
/// let b = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0));
/// assert!(b.contains(Point::new(10.0, 5.0)));
/// assert_eq!(b.area(), 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Minimum corner (south-west).
    pub min: Point,
    /// Maximum corner (north-east).
    pub max: Point,
}

impl BBox {
    /// An empty box: intersects nothing, contains nothing, and acts as the
    /// identity for [`union`](Self::union).
    pub const EMPTY: BBox = BBox {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates the box with corners `min` and `max`.
    ///
    /// The corners are *not* reordered; use [`from_corners`](Self::from_corners)
    /// for unordered input.
    #[inline]
    pub const fn new(min: Point, max: Point) -> Self {
        BBox { min, max }
    }

    /// Creates the smallest box covering two arbitrary corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the square box of side `2 * radius` centred on `center`.
    pub fn around(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0);
        BBox {
            min: Point::new(center.x - radius, center.y - radius),
            max: Point::new(center.x + radius, center.y + radius),
        }
    }

    /// The smallest box covering every point in `points`, or
    /// [`BBox::EMPTY`] when the iterator is empty.
    pub fn covering<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(BBox::EMPTY, |b, p| b.expanded_to(p))
    }

    /// `true` when this box covers no area (including [`BBox::EMPTY`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.max.x < self.min.x || self.max.y < self.min.y
    }

    /// Width (east-west extent) in metres; 0 for empty boxes.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (north-south extent) in metres; 0 for empty boxes.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area in square metres; 0 for empty boxes.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` when `other` lies entirely within this box.
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        if other.is_empty() {
            return true;
        }
        !self.is_empty()
            && other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// `true` when the two boxes share at least a boundary point.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The overlapping region, or `None` when the boxes are disjoint.
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(BBox {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// The smallest box covering both inputs.
    pub fn union(&self, other: &BBox) -> BBox {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        BBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The smallest box covering this box and the point `p`.
    pub fn expanded_to(&self, p: Point) -> BBox {
        if self.is_empty() {
            return BBox { min: p, max: p };
        }
        BBox {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// This box grown outward by `margin` metres on every side.
    ///
    /// A negative margin shrinks the box and may make it empty.
    pub fn inflated(&self, margin: f64) -> BBox {
        if self.is_empty() {
            return *self;
        }
        BBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Minimum Euclidean distance from `p` to this box (0 when inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum Euclidean distance from `p` to any point of this box.
    pub fn max_distance_to_point(&self, p: Point) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corner points, counter-clockwise starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} — {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: f64, y0: f64, x1: f64, y1: f64) -> BBox {
        BBox::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn contains_boundary_points() {
        let bb = b(0.0, 0.0, 10.0, 10.0);
        assert!(bb.contains(Point::new(0.0, 0.0)));
        assert!(bb.contains(Point::new(10.0, 10.0)));
        assert!(bb.contains(Point::new(5.0, 10.0)));
        assert!(!bb.contains(Point::new(10.0001, 5.0)));
    }

    #[test]
    fn empty_box_semantics() {
        let e = BBox::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point::ORIGIN));
        assert!(!e.intersects(&b(0.0, 0.0, 1.0, 1.0)));
        assert_eq!(e.union(&b(1.0, 1.0, 2.0, 2.0)), b(1.0, 1.0, 2.0, 2.0));
        assert!(b(0.0, 0.0, 5.0, 5.0).contains_bbox(&e));
    }

    #[test]
    fn intersection_and_union() {
        let a = b(0.0, 0.0, 10.0, 10.0);
        let c = b(5.0, 5.0, 15.0, 15.0);
        assert_eq!(a.intersection(&c), Some(b(5.0, 5.0, 10.0, 10.0)));
        assert_eq!(a.union(&c), b(0.0, 0.0, 15.0, 15.0));
        let d = b(20.0, 20.0, 30.0, 30.0);
        assert_eq!(a.intersection(&d), None);
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = b(0.0, 0.0, 10.0, 10.0);
        let c = b(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&c));
        let i = a.intersection(&c).unwrap();
        assert_eq!(i.area(), 0.0);
    }

    #[test]
    fn covering_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let bb = BBox::covering(pts);
        assert_eq!(bb, b(-2.0, -1.0, 4.0, 5.0));
        assert!(BBox::covering(std::iter::empty()).is_empty());
    }

    #[test]
    fn around_and_inflate() {
        let bb = BBox::around(Point::new(5.0, 5.0), 2.0);
        assert_eq!(bb, b(3.0, 3.0, 7.0, 7.0));
        assert_eq!(bb.inflated(1.0), b(2.0, 2.0, 8.0, 8.0));
        assert!(bb.inflated(-3.0).is_empty());
    }

    #[test]
    fn point_distances() {
        let bb = b(0.0, 0.0, 10.0, 10.0);
        assert_eq!(bb.distance_to_point(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(bb.distance_to_point(Point::new(13.0, 14.0)), 5.0);
        assert_eq!(
            bb.max_distance_to_point(Point::new(0.0, 0.0)),
            200f64.sqrt()
        );
    }

    #[test]
    fn corners_ccw() {
        let bb = b(0.0, 0.0, 2.0, 1.0);
        let c = bb.corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(2.0, 0.0));
        assert_eq!(c[2], Point::new(2.0, 1.0));
        assert_eq!(c[3], Point::new(0.0, 1.0));
    }
}
