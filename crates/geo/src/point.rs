//! Planar and geographic points.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Mean Earth radius in metres, used for great-circle distances.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A position in a local planar frame (east/north offsets in metres from a
/// deployment-specific origin).
///
/// The distributed framework operates on planar coordinates throughout;
/// geographic input is projected once at the edge via
/// [`GeoPoint::to_local`].
///
/// # Example
///
/// ```
/// use stcam_geo::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East offset from the frame origin, metres.
    pub x: f64,
    /// North offset from the frame origin, metres.
    pub y: f64,
}

impl Point {
    /// The frame origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point at `(x, y)` metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`; cheaper than
    /// [`distance`](Self::distance) when only comparisons are needed.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Length of this point interpreted as a vector from the origin.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other` (both interpreted as vectors).
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the cross product with `other` (both interpreted as
    /// vectors); positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: the point `t` of the way from `self` to `to`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `to`; values outside `[0, 1]`
    /// extrapolate.
    #[inline]
    pub fn lerp(self, to: Point, t: f64) -> Point {
        Point::new(self.x + (to.x - self.x) * t, self.y + (to.y - self.y) * t)
    }

    /// Returns this vector scaled to unit length, or `None` if it is (near)
    /// zero-length.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// The heading of this vector in radians, measured counter-clockwise
    /// from the +x (east) axis, in `(-π, π]`.
    #[inline]
    pub fn heading(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// A unit vector pointing along `angle` radians (counter-clockwise from
    /// east).
    #[inline]
    pub fn from_heading(angle: f64) -> Point {
        Point::new(angle.cos(), angle.sin())
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A WGS-84 geographic coordinate (degrees).
///
/// Used only at the system boundary: camera deployments are specified in
/// latitude/longitude and projected into the local planar frame with
/// [`GeoPoint::to_local`] (equirectangular projection around a reference
/// point, accurate to well under 0.1% over a metropolitan extent).
///
/// # Example
///
/// ```
/// use stcam_geo::GeoPoint;
/// let atlanta = GeoPoint::new(33.749, -84.388);
/// let decatur = GeoPoint::new(33.774, -84.296);
/// let d = atlanta.haversine_distance(decatur);
/// assert!((d - 8900.0).abs() < 200.0, "distance was {d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a geographic point.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the latitude is outside `[-90, 90]`.
    #[inline]
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!((-90.0..=90.0).contains(&lat), "latitude out of range");
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    pub fn haversine_distance(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Projects this point into the local planar frame anchored at
    /// `reference` (equirectangular projection).
    pub fn to_local(self, reference: GeoPoint) -> Point {
        let lat0 = reference.lat.to_radians();
        let x = (self.lon - reference.lon).to_radians() * lat0.cos() * EARTH_RADIUS_M;
        let y = (self.lat - reference.lat).to_radians() * EARTH_RADIUS_M;
        Point::new(x, y)
    }

    /// Inverse of [`to_local`](Self::to_local): lifts a planar point back to
    /// geographic coordinates around `reference`.
    pub fn from_local(p: Point, reference: GeoPoint) -> GeoPoint {
        let lat0 = reference.lat.to_radians();
        let lat = reference.lat + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon = reference.lon + (p.x / (EARTH_RADIUS_M * lat0.cos())).to_degrees();
        GeoPoint { lat, lon }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}°, {:.5}°)", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.0, 4.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Point::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point::new(0.0, 0.0).normalized().is_none());
    }

    #[test]
    fn heading_round_trip() {
        for deg in [-179, -90, -45, 0, 30, 90, 120, 180] {
            let a = (deg as f64).to_radians();
            let h = Point::from_heading(a).heading();
            let diff = (h - a).rem_euclid(std::f64::consts::TAU);
            assert!(!(1e-9..=std::f64::consts::TAU - 1e-9).contains(&diff));
        }
    }

    #[test]
    fn haversine_known_distance() {
        // London to Paris, ~343.5 km.
        let london = GeoPoint::new(51.5074, -0.1278);
        let paris = GeoPoint::new(48.8566, 2.3522);
        let d = london.haversine_distance(paris);
        assert!((d - 343_500.0).abs() < 2_000.0, "got {d}");
    }

    #[test]
    fn local_projection_round_trip() {
        let reference = GeoPoint::new(33.749, -84.388);
        let p = GeoPoint::new(33.80, -84.30);
        let local = p.to_local(reference);
        let back = GeoPoint::from_local(local, reference);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
        // Planar distance approximates great-circle distance at city scale.
        let planar = local.norm();
        let sphere = reference.haversine_distance(p);
        assert!((planar - sphere).abs() / sphere < 1e-3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.00, 2.50)");
        assert_eq!(GeoPoint::new(1.0, 2.0).to_string(), "(1.00000°, 2.00000°)");
    }
}
