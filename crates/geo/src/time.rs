//! Timestamps and time windows.
//!
//! The framework uses a single simulated clock domain: milliseconds since
//! the start of the deployment, represented as [`Timestamp`]. Durations are
//! [`Duration`] (also milliseconds). Query windows are half-open
//! [`TimeInterval`]s `[start, end)`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time: milliseconds since deployment start.
///
/// # Example
///
/// ```
/// use stcam_geo::{Duration, Timestamp};
/// let t = Timestamp::from_secs(10) + Duration::from_millis(500);
/// assert_eq!(t.as_millis(), 10_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Deployment start (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable instant.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from milliseconds since deployment start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Creates a timestamp from whole seconds since deployment start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1000)
    }

    /// Milliseconds since deployment start.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds since deployment start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Absolute difference between two instants.
    #[inline]
    pub fn abs_diff(self, other: Timestamp) -> Duration {
        Duration(self.0.abs_diff(other.0))
    }

    /// Saturating subtraction of a duration (clamps at t = 0).
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    /// Elapsed time from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

/// A span of simulated time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1000)
    }

    /// Length in milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This duration scaled by `factor`, rounding to the nearest
    /// millisecond.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `factor` is negative or non-finite.
    pub fn mul_f64(self, factor: f64) -> Duration {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1000 {
            write!(f, "{} ms", self.0)
        } else {
            write!(f, "{:.3} s", self.as_secs_f64())
        }
    }
}

/// A half-open time window `[start, end)`.
///
/// The empty interval (`start == end`) contains no instants; construction
/// enforces `start <= end`.
///
/// # Example
///
/// ```
/// use stcam_geo::{TimeInterval, Timestamp};
/// let w = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(2));
/// assert!(w.contains(Timestamp::from_millis(1500)));
/// assert!(!w.contains(Timestamp::from_secs(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeInterval {
    start: Timestamp,
    end: Timestamp,
}

impl TimeInterval {
    /// The interval containing every instant.
    pub const ALL: TimeInterval = TimeInterval {
        start: Timestamp::ZERO,
        end: Timestamp::MAX,
    };

    /// Creates `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "interval start after end");
        TimeInterval { start, end }
    }

    /// The window of length `len` ending at `end` (clamped at t = 0).
    pub fn ending_at(end: Timestamp, len: Duration) -> Self {
        TimeInterval {
            start: end.saturating_sub(len),
            end,
        }
    }

    /// Inclusive start instant.
    #[inline]
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Exclusive end instant.
    #[inline]
    pub fn end(&self) -> Timestamp {
        self.end
    }

    /// Window length.
    #[inline]
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// `true` when the window contains no instants.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` when `t` lies inside the half-open window.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// `true` when the two windows share at least one instant.
    ///
    /// Empty windows overlap nothing, including themselves.
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The shared sub-window, or `None` when disjoint or empty.
    pub fn intersection(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeInterval { start, end })
        } else {
            None
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(2);
        assert_eq!(t + Duration::from_millis(250), Timestamp::from_millis(2250));
        assert_eq!(
            Timestamp::from_secs(5) - Timestamp::from_secs(2),
            Duration::from_secs(3)
        );
        assert_eq!(
            Timestamp::from_secs(1).saturating_sub(Duration::from_secs(5)),
            Timestamp::ZERO
        );
        assert_eq!(
            Timestamp::from_secs(1).abs_diff(Timestamp::from_secs(3)),
            Duration::from_secs(2)
        );
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_secs(1);
        assert_eq!(d + Duration::from_millis(500), Duration::from_millis(1500));
        assert_eq!(d - Duration::from_millis(300), Duration::from_millis(700));
        // Saturating subtraction.
        assert_eq!(
            Duration::from_millis(100) - Duration::from_secs(1),
            Duration::ZERO
        );
        assert_eq!(d.mul_f64(2.5), Duration::from_millis(2500));
    }

    #[test]
    fn interval_half_open_semantics() {
        let w = TimeInterval::new(Timestamp::from_secs(1), Timestamp::from_secs(2));
        assert!(w.contains(Timestamp::from_secs(1)));
        assert!(!w.contains(Timestamp::from_secs(2)));
        assert!(!w.contains(Timestamp::from_millis(999)));
        assert_eq!(w.duration(), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "interval start after end")]
    fn interval_rejects_reversed() {
        let _ = TimeInterval::new(Timestamp::from_secs(2), Timestamp::from_secs(1));
    }

    #[test]
    fn interval_overlap_and_intersection() {
        let a = TimeInterval::new(Timestamp::from_secs(0), Timestamp::from_secs(10));
        let b = TimeInterval::new(Timestamp::from_secs(5), Timestamp::from_secs(15));
        let c = TimeInterval::new(Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(a.overlaps(&b));
        // Half-open: touching intervals do not overlap.
        assert!(!a.overlaps(&c));
        assert_eq!(
            a.intersection(&b),
            Some(TimeInterval::new(
                Timestamp::from_secs(5),
                Timestamp::from_secs(10)
            ))
        );
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn empty_interval() {
        let e = TimeInterval::new(Timestamp::from_secs(3), Timestamp::from_secs(3));
        assert!(e.is_empty());
        assert!(!e.contains(Timestamp::from_secs(3)));
        assert!(!e.overlaps(&TimeInterval::ALL));
    }

    #[test]
    fn ending_at_clamps() {
        let w = TimeInterval::ending_at(Timestamp::from_secs(1), Duration::from_secs(10));
        assert_eq!(w.start(), Timestamp::ZERO);
        assert_eq!(w.end(), Timestamp::from_secs(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Duration::from_millis(42).to_string(), "42 ms");
        assert_eq!(Duration::from_millis(1500).to_string(), "1.500 s");
        assert_eq!(Timestamp::from_millis(1500).to_string(), "t+1.500s");
    }
}
