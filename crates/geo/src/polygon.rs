//! Simple polygons, used to model camera fields of view.

use std::fmt;

use crate::{BBox, Point};

/// A simple (non-self-intersecting) polygon in the local planar frame.
///
/// Used throughout the camera-network layer to model fields of view and
/// coverage regions. Vertex order may be clockwise or counter-clockwise;
/// containment uses the even-odd rule and treats boundary points as inside
/// within floating-point tolerance.
///
/// # Example
///
/// ```
/// use stcam_geo::{Point, Polygon};
/// let tri = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(0.0, 10.0),
/// ]).unwrap();
/// assert!(tri.contains(Point::new(2.0, 2.0)));
/// assert!(!tri.contains(Point::new(8.0, 8.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    bbox: BBox,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// Returns `None` when fewer than three vertices are supplied or any
    /// coordinate is non-finite.
    pub fn new(vertices: Vec<Point>) -> Option<Self> {
        if vertices.len() < 3 || vertices.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let bbox = BBox::covering(vertices.iter().copied());
        Some(Polygon { vertices, bbox })
    }

    /// A regular approximation of a circular disc with `segments` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `segments < 3` or `radius <= 0`.
    pub fn circle(center: Point, radius: f64, segments: usize) -> Self {
        assert!(segments >= 3, "a polygon needs at least 3 vertices");
        assert!(radius > 0.0, "radius must be positive");
        let vertices = (0..segments)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / segments as f64;
                center + Point::from_heading(a) * radius
            })
            .collect();
        Polygon::new(vertices).expect("circle vertices are valid")
    }

    /// A camera-style viewing sector: apex at `apex`, central direction
    /// `heading` (radians CCW from east), angular width `fov` (radians),
    /// and maximum viewing distance `range` (metres). The arc is
    /// approximated with `arc_segments + 1` rim vertices.
    ///
    /// # Panics
    ///
    /// Panics if `fov` is not in `(0, 2π)` or `range <= 0`.
    pub fn sector(apex: Point, heading: f64, fov: f64, range: f64, arc_segments: usize) -> Self {
        assert!(fov > 0.0 && fov < std::f64::consts::TAU, "fov out of range");
        assert!(range > 0.0, "range must be positive");
        let segs = arc_segments.max(2);
        let mut vertices = Vec::with_capacity(segs + 2);
        vertices.push(apex);
        for i in 0..=segs {
            let a = heading - fov / 2.0 + fov * i as f64 / segs as f64;
            vertices.push(apex + Point::from_heading(a) * range);
        }
        Polygon::new(vertices).expect("sector vertices are valid")
    }

    /// The polygon's vertices in definition order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// The precomputed axis-aligned bounding box.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Signed area: positive for counter-clockwise vertex order.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.cross(b);
        }
        acc / 2.0
    }

    /// Absolute enclosed area in square metres.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// The arithmetic mean of the vertices (adequate as a representative
    /// interior point for convex polygons such as sectors).
    pub fn vertex_centroid(&self) -> Point {
        let mut acc = Point::ORIGIN;
        for v in &self.vertices {
            acc = acc + *v;
        }
        acc / self.vertices.len() as f64
    }

    /// Even-odd point-in-polygon test; boundary points count as inside.
    pub fn contains(&self, p: Point) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[j];
            // Boundary: p on segment a-b.
            let ab = b - a;
            let ap = p - a;
            let cross = ab.cross(ap);
            if cross.abs() < 1e-9 {
                let dot = ap.dot(ab);
                if dot >= -1e-9 && dot <= ab.dot(ab) + 1e-9 {
                    return true;
                }
            }
            if (a.y > p.y) != (b.y > p.y) {
                let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_at {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Conservative polygon/box overlap test.
    ///
    /// Exact for convex polygons (which covers all field-of-view sectors and
    /// discs built by this crate); for concave polygons it may return `true`
    /// for some non-overlapping pairs, never `false` for overlapping ones.
    pub fn intersects_bbox(&self, bb: &BBox) -> bool {
        if !self.bbox.intersects(bb) {
            return false;
        }
        // Any polygon vertex inside the box?
        if self.vertices.iter().any(|v| bb.contains(*v)) {
            return true;
        }
        // Any box corner inside the polygon?
        if bb.corners().iter().any(|c| self.contains(*c)) {
            return true;
        }
        // Any edge pair crossing?
        let n = self.vertices.len();
        let bc = bb.corners();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            for k in 0..4 {
                if segments_intersect(a, b, bc[k], bc[(k + 1) % 4]) {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Polygon[{} vertices, area {:.1} m²]",
            self.vertices.len(),
            self.area()
        )
    }
}

/// Proper or touching intersection test for segments `a1-a2` and `b1-b2`.
fn segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    fn orient(a: Point, b: Point, c: Point) -> f64 {
        (b - a).cross(c - a)
    }
    fn on_segment(a: Point, b: Point, p: Point) -> bool {
        p.x >= a.x.min(b.x) - 1e-9
            && p.x <= a.x.max(b.x) + 1e-9
            && p.y >= a.y.min(b.y) - 1e-9
            && p.y <= a.y.max(b.y) + 1e-9
    }
    let d1 = orient(b1, b2, a1);
    let d2 = orient(b1, b2, a2);
    let d3 = orient(a1, a2, b1);
    let d4 = orient(a1, a2, b2);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1.abs() < 1e-9 && on_segment(b1, b2, a1))
        || (d2.abs() < 1e-9 && on_segment(b1, b2, a2))
        || (d3.abs() < 1e-9 && on_segment(a1, a2, b1))
        || (d4.abs() < 1e-9 && on_segment(a1, a2, b2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(Polygon::new(vec![]).is_none());
        assert!(Polygon::new(vec![Point::ORIGIN, Point::new(1.0, 1.0)]).is_none());
        assert!(Polygon::new(vec![
            Point::ORIGIN,
            Point::new(f64::NAN, 0.0),
            Point::new(1.0, 1.0)
        ])
        .is_none());
    }

    #[test]
    fn square_area_and_containment() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        assert!(sq.signed_area() > 0.0); // CCW
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(sq.contains(Point::new(0.0, 0.5))); // boundary
        assert!(sq.contains(Point::new(1.0, 1.0))); // corner
        assert!(!sq.contains(Point::new(1.5, 0.5)));
    }

    #[test]
    fn clockwise_square_negative_signed_area() {
        let sq = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(sq.signed_area() < 0.0);
        assert!((sq.area() - 1.0).abs() < 1e-12);
        assert!(sq.contains(Point::new(0.5, 0.5)));
    }

    #[test]
    fn circle_area_approaches_pi_r2() {
        let c = Polygon::circle(Point::new(3.0, 4.0), 10.0, 256);
        let exact = std::f64::consts::PI * 100.0;
        assert!((c.area() - exact).abs() / exact < 1e-3);
        assert!(c.contains(Point::new(3.0, 4.0)));
        assert!(!c.contains(Point::new(14.0, 4.0)));
    }

    #[test]
    fn sector_geometry() {
        // 90° sector looking east with range 10.
        let s = Polygon::sector(Point::ORIGIN, 0.0, std::f64::consts::FRAC_PI_2, 10.0, 16);
        assert!(s.contains(Point::new(5.0, 0.0)));
        assert!(s.contains(Point::new(4.0, 3.0)));
        assert!(!s.contains(Point::new(-1.0, 0.0))); // behind apex
        assert!(!s.contains(Point::new(0.0, 5.0))); // outside 45° edge
        assert!(!s.contains(Point::new(11.0, 0.0))); // beyond range
                                                     // Area of a quarter disc of radius 10 ≈ 78.5.
        assert!((s.area() - 78.5).abs() < 1.0);
    }

    #[test]
    fn bbox_is_tight() {
        let s = unit_square();
        assert_eq!(
            s.bbox(),
            BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
        );
    }

    #[test]
    fn bbox_intersection_cases() {
        let sq = unit_square();
        // Disjoint.
        assert!(!sq.intersects_bbox(&BBox::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0))));
        // Box inside polygon.
        assert!(sq.intersects_bbox(&BBox::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6))));
        // Polygon inside box.
        assert!(sq.intersects_bbox(&BBox::new(Point::new(-1.0, -1.0), Point::new(2.0, 2.0))));
        // Edge crossing with no contained vertices: thin box slicing the square.
        assert!(sq.intersects_bbox(&BBox::new(Point::new(-1.0, 0.4), Point::new(2.0, 0.6))));
    }

    #[test]
    fn segment_intersection_helper() {
        let o = Point::ORIGIN;
        assert!(segments_intersect(
            o,
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 0.0)
        ));
        assert!(!segments_intersect(
            o,
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0)
        ));
        // Collinear touching.
        assert!(segments_intersect(
            o,
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0)
        ));
    }

    #[test]
    fn centroid_of_square() {
        let c = unit_square().vertex_centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }
}
