//! Geometric and temporal primitives for the `stcam` framework.
//!
//! Every other crate in the workspace builds on the types defined here:
//!
//! * [`Point`] — a position in a local planar (east/north, metres) frame.
//! * [`GeoPoint`] — a WGS-84 latitude/longitude pair, with great-circle
//!   distance and projection into a local planar frame.
//! * [`BBox`] — an axis-aligned bounding rectangle.
//! * [`Polygon`] — a simple polygon with point-in-polygon tests, used for
//!   camera fields of view.
//! * [`GridSpec`] / [`CellId`] — a uniform grid over the covered region,
//!   the unit of space partitioning in the distributed framework.
//! * [`zorder`] — Morton (Z-order) encoding of grid cells, used to place
//!   cells on a locality-preserving one-dimensional curve.
//! * [`Timestamp`] / [`TimeInterval`] — millisecond timestamps and
//!   half-open time windows.
//!
//! The crate is dependency-free and entirely deterministic.
//!
//! # Example
//!
//! ```
//! use stcam_geo::{BBox, GridSpec, Point};
//!
//! let grid = GridSpec::new(Point::new(0.0, 0.0), 100.0, 80, 80);
//! let cell = grid.cell_of(Point::new(250.0, 460.0)).unwrap();
//! assert!(grid.cell_bbox(cell).contains(Point::new(250.0, 460.0)));
//! let query = BBox::new(Point::new(150.0, 150.0), Point::new(350.0, 350.0));
//! assert_eq!(grid.cells_overlapping(query).count(), 9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bbox;
mod grid;
mod point;
mod polygon;
mod time;
pub mod zorder;

pub use bbox::BBox;
pub use grid::{CellId, CellIter, GridSpec};
pub use point::{GeoPoint, Point, EARTH_RADIUS_M};
pub use polygon::Polygon;
pub use time::{Duration, TimeInterval, Timestamp};
