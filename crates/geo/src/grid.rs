//! Uniform grids: the unit of space partitioning.

use std::fmt;

use crate::{BBox, Point};

/// Identifier of one cell of a [`GridSpec`]: `(col, row)` indices.
///
/// Cell ids are only meaningful relative to the grid that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Column index (west → east).
    pub col: u32,
    /// Row index (south → north).
    pub row: u32,
}

impl CellId {
    /// Creates a cell id.
    #[inline]
    pub const fn new(col: u32, row: u32) -> Self {
        CellId { col, row }
    }

    /// The Morton (Z-order) code of this cell, interleaving column and row
    /// bits. Cells close on the curve tend to be close in space, which the
    /// partitioner exploits for locality-preserving assignment.
    #[inline]
    pub fn zorder(self) -> u64 {
        crate::zorder::encode(self.col, self.row)
    }

    /// Inverse of [`zorder`](Self::zorder).
    #[inline]
    pub fn from_zorder(code: u64) -> Self {
        let (col, row) = crate::zorder::decode(code);
        CellId { col, row }
    }

    /// Chebyshev (ring) distance between two cells.
    pub fn ring_distance(self, other: CellId) -> u32 {
        let dc = self.col.abs_diff(other.col);
        let dr = self.row.abs_diff(other.row);
        dc.max(dr)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}r{}", self.col, self.row)
    }
}

/// A uniform grid covering a rectangular region of the local planar frame.
///
/// The grid has `cols × rows` square cells of side `cell_size` metres, with
/// the south-west corner of cell `(0, 0)` at `origin`. Points on a shared
/// cell edge belong to the cell with the larger index (i.e. cells are
/// half-open `[min, min + size)`), except along the grid's outermost north
/// and east edges which are inclusive, so that every point of the covered
/// region maps to exactly one cell.
///
/// # Example
///
/// ```
/// use stcam_geo::{GridSpec, Point};
/// let g = GridSpec::new(Point::new(0.0, 0.0), 10.0, 4, 4);
/// assert_eq!(g.cell_of(Point::new(39.9, 0.0)).unwrap().col, 3);
/// assert_eq!(g.cell_of(Point::new(40.0, 40.0)).unwrap().col, 3); // outer edge
/// assert!(g.cell_of(Point::new(41.0, 0.0)).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    origin: Point,
    cell_size: f64,
    cols: u32,
    rows: u32,
}

impl GridSpec {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0` or either dimension is zero.
    pub fn new(origin: Point, cell_size: f64, cols: u32, rows: u32) -> Self {
        assert!(cell_size > 0.0, "cell_size must be positive");
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        GridSpec {
            origin,
            cell_size,
            cols,
            rows,
        }
    }

    /// The smallest grid of `cell_size` cells anchored at `region.min` that
    /// covers `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is empty or `cell_size <= 0`.
    pub fn covering(region: BBox, cell_size: f64) -> Self {
        assert!(!region.is_empty(), "cannot grid an empty region");
        assert!(cell_size > 0.0, "cell_size must be positive");
        let cols = (region.width() / cell_size).ceil().max(1.0) as u32;
        let rows = (region.height() / cell_size).ceil().max(1.0) as u32;
        GridSpec::new(region.min, cell_size, cols, rows)
    }

    /// Grid origin (south-west corner of cell `(0,0)`).
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Cell side length, metres.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> u64 {
        self.cols as u64 * self.rows as u64
    }

    /// The region covered by the whole grid.
    pub fn extent(&self) -> BBox {
        BBox::new(
            self.origin,
            Point::new(
                self.origin.x + self.cell_size * self.cols as f64,
                self.origin.y + self.cell_size * self.rows as f64,
            ),
        )
    }

    /// Maps a point to its cell, or `None` when outside the grid extent.
    pub fn cell_of(&self, p: Point) -> Option<CellId> {
        let fx = (p.x - self.origin.x) / self.cell_size;
        let fy = (p.y - self.origin.y) / self.cell_size;
        if fx < 0.0 || fy < 0.0 || fx > self.cols as f64 || fy > self.rows as f64 {
            return None;
        }
        let col = (fx as u32).min(self.cols - 1);
        let row = (fy as u32).min(self.rows - 1);
        Some(CellId { col, row })
    }

    /// Like [`cell_of`](Self::cell_of) but clamps out-of-extent points to
    /// the nearest border cell. Useful for routing slightly-noisy
    /// observations near the deployment boundary.
    pub fn cell_of_clamped(&self, p: Point) -> CellId {
        let fx = ((p.x - self.origin.x) / self.cell_size).max(0.0);
        let fy = ((p.y - self.origin.y) / self.cell_size).max(0.0);
        CellId {
            col: (fx as u32).min(self.cols - 1),
            row: (fy as u32).min(self.rows - 1),
        }
    }

    /// The region covered by `cell`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `cell` is out of range.
    pub fn cell_bbox(&self, cell: CellId) -> BBox {
        debug_assert!(
            cell.col < self.cols && cell.row < self.rows,
            "cell out of range"
        );
        let min = Point::new(
            self.origin.x + cell.col as f64 * self.cell_size,
            self.origin.y + cell.row as f64 * self.cell_size,
        );
        BBox::new(
            min,
            Point::new(min.x + self.cell_size, min.y + self.cell_size),
        )
    }

    /// The centre point of `cell`.
    pub fn cell_center(&self, cell: CellId) -> Point {
        self.cell_bbox(cell).center()
    }

    /// `true` when `cell` is within this grid's dimensions.
    #[inline]
    pub fn contains_cell(&self, cell: CellId) -> bool {
        cell.col < self.cols && cell.row < self.rows
    }

    /// Iterates over all cells whose region intersects `query` (boundary
    /// touching counts). Empty iterator when the query misses the grid.
    pub fn cells_overlapping(&self, query: BBox) -> CellIter {
        let Some(clip) = query.intersection(&self.extent()) else {
            return CellIter::empty();
        };
        let c0 = self.cell_of_clamped(clip.min);
        let c1 = self.cell_of_clamped(clip.max);
        CellIter {
            col0: c0.col,
            col1: c1.col,
            row1: c1.row,
            next: Some(c0),
        }
    }

    /// Iterates over every cell of the grid in row-major order.
    pub fn all_cells(&self) -> CellIter {
        CellIter {
            col0: 0,
            col1: self.cols - 1,
            row1: self.rows - 1,
            next: Some(CellId::new(0, 0)),
        }
    }

    /// The cells forming the square ring at Chebyshev distance `radius`
    /// around `center` (radius 0 is just the centre cell), clipped to the
    /// grid. Used by the iterative k-nearest-neighbour expansion.
    pub fn ring(&self, center: CellId, radius: u32) -> Vec<CellId> {
        if radius == 0 {
            return if self.contains_cell(center) {
                vec![center]
            } else {
                vec![]
            };
        }
        let mut out = Vec::new();
        let r = radius as i64;
        let (cc, cr) = (center.col as i64, center.row as i64);
        let mut push = |col: i64, row: i64| {
            if col >= 0 && row >= 0 && (col as u32) < self.cols && (row as u32) < self.rows {
                out.push(CellId::new(col as u32, row as u32));
            }
        };
        for col in (cc - r)..=(cc + r) {
            push(col, cr - r);
            push(col, cr + r);
        }
        for row in (cr - r + 1)..=(cr + r - 1) {
            push(cc - r, row);
            push(cc + r, row);
        }
        out
    }

    /// Minimum distance from `p` to any point of the ring at `radius`
    /// around the cell containing `p`; i.e. a lower bound on the distance
    /// to observations stored in that ring. Used to decide when kNN
    /// expansion may stop.
    pub fn ring_min_distance(&self, radius: u32) -> f64 {
        if radius == 0 {
            0.0
        } else {
            (radius - 1) as f64 * self.cell_size
        }
    }
}

impl fmt::Display for GridSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}×{} grid of {:.0} m cells at {}",
            self.cols, self.rows, self.cell_size, self.origin
        )
    }
}

/// Iterator over a rectangular block of cells, produced by
/// [`GridSpec::cells_overlapping`] and [`GridSpec::all_cells`].
#[derive(Debug, Clone)]
pub struct CellIter {
    col0: u32,
    col1: u32,
    row1: u32,
    next: Option<CellId>,
}

impl CellIter {
    fn empty() -> Self {
        CellIter {
            col0: 0,
            col1: 0,
            row1: 0,
            next: None,
        }
    }
}

impl Iterator for CellIter {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        let cur = self.next?;
        self.next = if cur.col < self.col1 {
            Some(CellId::new(cur.col + 1, cur.row))
        } else if cur.row < self.row1 {
            Some(CellId::new(self.col0, cur.row + 1))
        } else {
            None
        };
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.next {
            None => (0, Some(0)),
            Some(cur) => {
                let cols = (self.col1 - self.col0 + 1) as usize;
                let full_rows = (self.row1 - cur.row) as usize;
                let n = (self.col1 - cur.col + 1) as usize + full_rows * cols;
                (n, Some(n))
            }
        }
    }
}

impl ExactSizeIterator for CellIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::new(Point::new(0.0, 0.0), 10.0, 8, 6)
    }

    #[test]
    fn cell_of_basic_and_edges() {
        let g = grid();
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), Some(CellId::new(0, 0)));
        assert_eq!(g.cell_of(Point::new(9.999, 0.0)), Some(CellId::new(0, 0)));
        assert_eq!(g.cell_of(Point::new(10.0, 0.0)), Some(CellId::new(1, 0)));
        // Outer inclusive edges.
        assert_eq!(g.cell_of(Point::new(80.0, 60.0)), Some(CellId::new(7, 5)));
        assert_eq!(g.cell_of(Point::new(80.1, 0.0)), None);
        assert_eq!(g.cell_of(Point::new(-0.1, 0.0)), None);
    }

    #[test]
    fn clamped_maps_everything() {
        let g = grid();
        assert_eq!(
            g.cell_of_clamped(Point::new(-100.0, -100.0)),
            CellId::new(0, 0)
        );
        assert_eq!(g.cell_of_clamped(Point::new(1e6, 1e6)), CellId::new(7, 5));
    }

    #[test]
    fn cell_bbox_round_trip() {
        let g = grid();
        for cell in g.all_cells() {
            let c = g.cell_center(cell);
            assert_eq!(g.cell_of(c), Some(cell));
            assert!(g.cell_bbox(cell).contains(c));
        }
    }

    #[test]
    fn covering_builds_tight_grid() {
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(95.0, 41.0));
        let g = GridSpec::covering(region, 10.0);
        assert_eq!((g.cols(), g.rows()), (10, 5));
        assert!(g.extent().contains_bbox(&region));
    }

    #[test]
    fn overlap_enumeration() {
        let g = grid();
        let q = BBox::new(Point::new(11.0, 11.0), Point::new(29.0, 19.0));
        let cells: Vec<_> = g.cells_overlapping(q).collect();
        assert_eq!(cells, vec![CellId::new(1, 1), CellId::new(2, 1)]);
        // Query entirely off-grid.
        assert_eq!(
            g.cells_overlapping(BBox::new(Point::new(200.0, 0.0), Point::new(210.0, 10.0)))
                .count(),
            0
        );
        // Query covering everything.
        assert_eq!(
            g.cells_overlapping(BBox::new(Point::new(-5.0, -5.0), Point::new(500.0, 500.0)))
                .count(),
            48
        );
    }

    #[test]
    fn overlap_size_hint_exact() {
        let g = grid();
        let q = BBox::new(Point::new(5.0, 5.0), Point::new(35.0, 25.0));
        let it = g.cells_overlapping(q);
        let (lo, hi) = it.size_hint();
        let n = it.count();
        assert_eq!(lo, n);
        assert_eq!(hi, Some(n));
    }

    #[test]
    fn all_cells_row_major() {
        let g = GridSpec::new(Point::ORIGIN, 1.0, 3, 2);
        let cells: Vec<_> = g.all_cells().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], CellId::new(0, 0));
        assert_eq!(cells[2], CellId::new(2, 0));
        assert_eq!(cells[3], CellId::new(0, 1));
        assert_eq!(cells[5], CellId::new(2, 1));
    }

    #[test]
    fn ring_shapes() {
        let g = GridSpec::new(Point::ORIGIN, 1.0, 10, 10);
        let c = CellId::new(5, 5);
        assert_eq!(g.ring(c, 0), vec![c]);
        let r1 = g.ring(c, 1);
        assert_eq!(r1.len(), 8);
        assert!(r1.iter().all(|x| x.ring_distance(c) == 1));
        let r2 = g.ring(c, 2);
        assert_eq!(r2.len(), 16);
        // Clipped at the border.
        let corner = CellId::new(0, 0);
        let r1c = g.ring(corner, 1);
        assert_eq!(r1c.len(), 3);
    }

    #[test]
    fn ring_min_distance_monotone() {
        let g = GridSpec::new(Point::ORIGIN, 10.0, 10, 10);
        assert_eq!(g.ring_min_distance(0), 0.0);
        assert_eq!(g.ring_min_distance(1), 0.0);
        assert_eq!(g.ring_min_distance(2), 10.0);
        assert_eq!(g.ring_min_distance(3), 20.0);
    }

    #[test]
    fn zorder_round_trip_ids() {
        for cell in [CellId::new(0, 0), CellId::new(1, 2), CellId::new(1000, 999)] {
            assert_eq!(CellId::from_zorder(cell.zorder()), cell);
        }
    }
}
