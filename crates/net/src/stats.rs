//! Message and byte accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::NodeId;

/// Monotonic counters for one node's traffic.
#[derive(Debug, Default)]
pub struct NodeCounters {
    pub(crate) msgs_sent: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
    pub(crate) msgs_received: AtomicU64,
    pub(crate) bytes_received: AtomicU64,
    pub(crate) msgs_dropped: AtomicU64,
}

/// A point-in-time snapshot of one node's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Messages this node has sent (whether or not delivered).
    pub msgs_sent: u64,
    /// Wire bytes this node has sent.
    pub bytes_sent: u64,
    /// Messages delivered to this node.
    pub msgs_received: u64,
    /// Wire bytes delivered to this node.
    pub bytes_received: u64,
    /// Messages addressed to or from this node that the fabric dropped
    /// (loss model, partitions, or crashed peers).
    pub msgs_dropped: u64,
}

impl NodeStats {
    /// Difference against an earlier snapshot of the same node: traffic
    /// that occurred in between. Saturating, so a stale `earlier` from a
    /// different node cannot underflow.
    pub fn since(&self, earlier: &NodeStats) -> NodeStats {
        NodeStats {
            msgs_sent: self.msgs_sent.saturating_sub(earlier.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            msgs_received: self.msgs_received.saturating_sub(earlier.msgs_received),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            msgs_dropped: self.msgs_dropped.saturating_sub(earlier.msgs_dropped),
        }
    }
}

impl NodeCounters {
    pub(crate) fn snapshot(&self) -> NodeStats {
        NodeStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            msgs_dropped: self.msgs_dropped.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the whole fabric's traffic.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Total messages accepted for delivery.
    pub total_msgs: u64,
    /// Total wire bytes accepted for delivery.
    pub total_bytes: u64,
    /// Total messages dropped by loss, partition, or crash.
    pub total_dropped: u64,
    /// Per-node counter snapshots.
    pub per_node: HashMap<NodeId, NodeStats>,
}

impl FabricStats {
    /// Difference against an earlier snapshot: traffic that occurred in
    /// between. Per-node entries present only in `self` are kept as-is.
    pub fn since(&self, earlier: &FabricStats) -> FabricStats {
        let mut per_node = HashMap::new();
        for (node, now) in &self.per_node {
            let then = earlier.per_node.get(node).copied().unwrap_or_default();
            per_node.insert(
                *node,
                NodeStats {
                    msgs_sent: now.msgs_sent - then.msgs_sent,
                    bytes_sent: now.bytes_sent - then.bytes_sent,
                    msgs_received: now.msgs_received - then.msgs_received,
                    bytes_received: now.bytes_received - then.bytes_received,
                    msgs_dropped: now.msgs_dropped - then.msgs_dropped,
                },
            );
        }
        FabricStats {
            total_msgs: self.total_msgs - earlier.total_msgs,
            total_bytes: self.total_bytes - earlier.total_bytes,
            total_dropped: self.total_dropped - earlier.total_dropped,
            per_node,
        }
    }
}

/// Shared registry of all node counters plus fabric-level totals.
#[derive(Debug, Default)]
pub(crate) struct StatsRegistry {
    pub(crate) total_msgs: AtomicU64,
    pub(crate) total_bytes: AtomicU64,
    pub(crate) total_dropped: AtomicU64,
    pub(crate) nodes: RwLock<HashMap<NodeId, std::sync::Arc<NodeCounters>>>,
}

impl StatsRegistry {
    pub(crate) fn snapshot(&self) -> FabricStats {
        FabricStats {
            total_msgs: self.total_msgs.load(Ordering::Relaxed),
            total_bytes: self.total_bytes.load(Ordering::Relaxed),
            total_dropped: self.total_dropped.load(Ordering::Relaxed),
            per_node: self
                .nodes
                .read()
                .iter()
                .map(|(id, c)| (*id, c.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_since_subtracts_and_saturates() {
        let a = NodeStats {
            msgs_sent: 4,
            bytes_sent: 100,
            ..Default::default()
        };
        let b = NodeStats {
            msgs_sent: 9,
            bytes_sent: 350,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.msgs_sent, 5);
        assert_eq!(d.bytes_sent, 250);
        // Saturating: a mismatched baseline does not underflow.
        assert_eq!(a.since(&b).msgs_sent, 0);
    }

    #[test]
    fn since_subtracts() {
        let mut a = FabricStats {
            total_msgs: 10,
            total_bytes: 1000,
            ..Default::default()
        };
        a.per_node.insert(
            NodeId(1),
            NodeStats {
                msgs_sent: 4,
                ..Default::default()
            },
        );
        let mut b = a.clone();
        b.total_msgs = 25;
        b.total_bytes = 2500;
        b.per_node.get_mut(&NodeId(1)).unwrap().msgs_sent = 9;
        let d = b.since(&a);
        assert_eq!(d.total_msgs, 15);
        assert_eq!(d.total_bytes, 1500);
        assert_eq!(d.per_node[&NodeId(1)].msgs_sent, 5);
    }
}
