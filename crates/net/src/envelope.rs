//! Message envelopes carried by the fabric.

use crate::NodeId;

/// How a message participates in the request/response protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Fire-and-forget; delivered to the receiver's inbox.
    OneWay,
    /// An RPC request; delivered to the receiver's inbox, carrying a
    /// correlation id the receiver must echo in its reply.
    Request,
    /// An RPC response; routed directly to the caller blocked in
    /// [`Endpoint::call`](crate::Endpoint::call) rather than the inbox.
    Response,
}

/// A message as delivered to a receiving endpoint.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Protocol role of this message.
    pub kind: MessageKind,
    /// Correlation id; zero for one-way messages.
    pub correlation: u64,
    /// Opaque payload bytes (typically a `stcam-codec` encoded value).
    pub payload: Vec<u8>,
}

/// Fixed per-message envelope overhead a real transport would add,
/// charged on top of the payload (16 bytes: src, dst, kind, correlation).
/// Public so layers above the fabric can account wire bytes per call
/// without a fabric-counter round trip.
pub const WIRE_OVERHEAD: u64 = 16;

impl Envelope {
    /// Total accounted wire size of this message: payload plus
    /// [`WIRE_OVERHEAD`].
    pub fn wire_size(&self) -> u64 {
        self.payload.len() as u64 + WIRE_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_overhead() {
        let e = Envelope {
            src: NodeId(1),
            dst: NodeId(2),
            kind: MessageKind::OneWay,
            correlation: 0,
            payload: vec![0u8; 100],
        };
        assert_eq!(e.wire_size(), 116);
    }
}
