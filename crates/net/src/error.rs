//! Transport errors.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// An error raised by the simulated transport.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The destination node is not registered with the fabric.
    UnknownNode(NodeId),
    /// The destination (or source) node has been crashed by failure
    /// injection.
    NodeDown(NodeId),
    /// An RPC did not receive a response within its deadline (the request
    /// or the response may have been dropped, the peer may be down, or the
    /// link may be partitioned).
    Timeout,
    /// The fabric has been shut down.
    Shutdown,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "node {n} is not registered"),
            NetError::NodeDown(n) => write!(f, "node {n} is down"),
            NetError::Timeout => write!(f, "rpc timed out"),
            NetError::Shutdown => write!(f, "fabric has shut down"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            NetError::UnknownNode(NodeId(3)),
            NetError::NodeDown(NodeId(1)),
            NetError::Timeout,
            NetError::Shutdown,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NetError>();
    }
}
