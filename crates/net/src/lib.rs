//! Simulated cluster transport for the `stcam` framework.
//!
//! The original system ran on a physical cluster over TCP/IP. This crate
//! substitutes an in-process **message fabric**: every cluster node holds an
//! [`Endpoint`] registered with a shared [`Fabric`], and messages travel
//! through a delivery thread that models per-link latency (base + per-byte),
//! deterministic jitter, probabilistic loss, network partitions, and node
//! crashes. Per-node and global counters account for every message and byte,
//! which the communication-cost experiment reads directly.
//!
//! What this preserves from a real deployment: message *counts*, message
//! *sizes*, request fan-out/fan-in structure, delivery ordering per link,
//! latency proportional to payload size, and all failure-handling code
//! paths. What it abstracts away: kernel networking overheads and
//! congestion — which is why the evaluation reports relative shapes rather
//! than absolute wall-clock numbers.
//!
//! # Example
//!
//! ```
//! use stcam_net::{Fabric, LinkModel, NodeId};
//! use std::time::Duration;
//!
//! let fabric = Fabric::new(LinkModel::instant());
//! let a = fabric.register(NodeId(0));
//! let b = fabric.register(NodeId(1));
//!
//! a.send(NodeId(1), b"ping".to_vec())?;
//! let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(env.payload, b"ping");
//! assert_eq!(env.src, NodeId(0));
//! # Ok::<(), stcam_net::NetError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod envelope;
mod error;
mod fabric;
mod link;
mod stats;

pub use envelope::{Envelope, MessageKind, WIRE_OVERHEAD};
pub use error::NetError;
pub use fabric::{CallObserver, Endpoint, Fabric};
pub use link::LinkModel;
pub use stats::{FabricStats, NodeStats};

/// Identifier of a cluster node.
///
/// Plain `u32` wrapper; node 0 is conventionally the coordinator and
/// workers are numbered from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
