//! The message fabric: registration, delivery, RPC, failure injection.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::envelope::{Envelope, MessageKind};
use crate::link::{DetRng, LinkModel};
use crate::stats::{FabricStats, NodeCounters, NodeStats, StatsRegistry};
use crate::{NetError, NodeId};

/// The shared in-process network connecting all cluster nodes.
///
/// Create one fabric per simulated cluster, [`register`](Fabric::register)
/// an [`Endpoint`] per node, and hand each endpoint to its node's threads.
/// The fabric owns a background delivery thread that applies the
/// [`LinkModel`] before handing messages to receivers; it shuts down when
/// the last endpoint and fabric handle are dropped.
#[derive(Debug, Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

#[derive(Debug)]
struct FabricInner {
    link: LinkModel,
    /// Current drop probability as `f64::to_bits`, runtime-mutable so
    /// chaos schedules can open and close lossy-link phases on a running
    /// cluster (initialised from `link.drop_probability`).
    drop_bits: AtomicU64,
    stats: StatsRegistry,
    nodes: RwLock<HashMap<NodeId, NodeState>>,
    sched_tx: Sender<Scheduled>,
    next_correlation: AtomicU64,
    rng: Mutex<DetRng>,
    /// Partition group per node; nodes in different groups cannot talk.
    partition: RwLock<HashMap<NodeId, u32>>,
    /// Last scheduled delivery instant per directed link, to preserve
    /// per-link FIFO despite jitter.
    link_clock: Mutex<HashMap<(NodeId, NodeId), Instant>>,
}

#[derive(Debug, Clone)]
struct NodeState {
    inbox_tx: Sender<Envelope>,
    pending: Arc<Mutex<HashMap<u64, Sender<Vec<u8>>>>>,
    alive: Arc<AtomicBool>,
    counters: Arc<NodeCounters>,
}

struct Scheduled {
    at: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl Fabric {
    /// Creates a fabric whose links all follow `link`, seeded
    /// deterministically.
    pub fn new(link: LinkModel) -> Self {
        Fabric::with_seed(link, 0x57CA_C0FF_EE00_u64)
    }

    /// Creates a fabric with an explicit RNG seed for the loss/jitter
    /// draws, for reproducible failure experiments.
    pub fn with_seed(link: LinkModel, seed: u64) -> Self {
        let (sched_tx, sched_rx) = channel::unbounded();
        let inner = Arc::new(FabricInner {
            link,
            drop_bits: AtomicU64::new(link.drop_probability.to_bits()),
            stats: StatsRegistry::default(),
            nodes: RwLock::new(HashMap::new()),
            sched_tx,
            next_correlation: AtomicU64::new(1),
            rng: Mutex::new(DetRng::new(seed)),
            partition: RwLock::new(HashMap::new()),
            link_clock: Mutex::new(HashMap::new()),
        });
        let thread_inner = Arc::downgrade(&inner);
        std::thread::Builder::new()
            .name("stcam-fabric-delivery".into())
            .spawn(move || delivery_loop(sched_rx, thread_inner))
            .expect("spawn delivery thread");
        Fabric { inner }
    }

    /// Registers `node` and returns its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already registered.
    pub fn register(&self, node: NodeId) -> Endpoint {
        let (inbox_tx, inbox_rx) = channel::unbounded();
        let counters = Arc::new(NodeCounters::default());
        let state = NodeState {
            inbox_tx,
            pending: Arc::new(Mutex::new(HashMap::new())),
            alive: Arc::new(AtomicBool::new(true)),
            counters: Arc::clone(&counters),
        };
        let mut nodes = self.inner.nodes.write();
        assert!(!nodes.contains_key(&node), "node {node} already registered");
        self.inner
            .stats
            .nodes
            .write()
            .insert(node, Arc::clone(&counters));
        let pending = Arc::clone(&state.pending);
        let alive = Arc::clone(&state.alive);
        nodes.insert(node, state);
        Endpoint {
            node,
            inner: Arc::clone(&self.inner),
            inbox_rx,
            pending,
            alive,
            counters,
            observer: Mutex::new(None),
        }
    }

    /// Marks `node` as crashed: its sends fail, deliveries to it are
    /// dropped, and outstanding RPCs against it will time out.
    pub fn crash(&self, node: NodeId) {
        if let Some(state) = self.inner.nodes.read().get(&node) {
            state.alive.store(false, Ordering::SeqCst);
            // Fail outstanding RPC callers promptly by dropping their
            // response channels.
            state.pending.lock().clear();
        }
    }

    /// Reverses [`crash`](Fabric::crash); the node resumes with an empty
    /// inbox history (messages dropped while down stay dropped).
    pub fn restart(&self, node: NodeId) {
        if let Some(state) = self.inner.nodes.read().get(&node) {
            state.alive.store(true, Ordering::SeqCst);
        }
    }

    /// `true` when `node` is registered and not crashed.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.inner
            .nodes
            .read()
            .get(&node)
            .map(|s| s.alive.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// Splits the cluster into isolated groups: messages between nodes in
    /// different groups are dropped. Nodes not mentioned keep group 0.
    pub fn partition(&self, groups: &[&[NodeId]]) {
        let mut map = self.inner.partition.write();
        map.clear();
        for (gi, group) in groups.iter().enumerate() {
            for node in *group {
                map.insert(*node, gi as u32 + 1);
            }
        }
    }

    /// Removes all partitions.
    pub fn heal_partition(&self) {
        self.inner.partition.write().clear();
    }

    /// A snapshot of all traffic counters.
    pub fn stats(&self) -> FabricStats {
        self.inner.stats.snapshot()
    }

    /// The link model used by every link of this fabric, with the
    /// *current* drop probability (see
    /// [`set_drop_probability`](Self::set_drop_probability)).
    pub fn link_model(&self) -> LinkModel {
        let mut link = self.inner.link;
        link.drop_probability = f64::from_bits(self.inner.drop_bits.load(Ordering::SeqCst));
        link
    }

    /// Changes the loss rate of every link at runtime. Messages already
    /// scheduled for delivery are unaffected; subsequent sends draw
    /// against the new probability. Chaos schedules use this to run
    /// lossy-link phases against a live cluster.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    pub fn set_drop_probability(&self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} not in [0, 1]"
        );
        self.inner.drop_bits.store(p.to_bits(), Ordering::SeqCst);
    }
}

impl FabricInner {
    fn same_partition(&self, a: NodeId, b: NodeId) -> bool {
        let map = self.partition.read();
        map.get(&a).copied().unwrap_or(0) == map.get(&b).copied().unwrap_or(0)
    }

    /// Common send path; returns Ok even when the loss model drops the
    /// message (like UDP — reliability is the caller's concern via RPC).
    fn submit(&self, env: Envelope) -> Result<(), NetError> {
        let nodes = self.nodes.read();
        let src_state = nodes.get(&env.src).ok_or(NetError::UnknownNode(env.src))?;
        if !src_state.alive.load(Ordering::SeqCst) {
            return Err(NetError::NodeDown(env.src));
        }
        let dst_state = nodes.get(&env.dst).ok_or(NetError::UnknownNode(env.dst))?;
        let size = env.wire_size();
        src_state.counters.msgs_sent.fetch_add(1, Ordering::Relaxed);
        src_state
            .counters
            .bytes_sent
            .fetch_add(size, Ordering::Relaxed);
        self.stats.total_msgs.fetch_add(1, Ordering::Relaxed);
        self.stats.total_bytes.fetch_add(size, Ordering::Relaxed);

        // Loss, partition and dead-destination checks happen at send time;
        // crash-at-delivery races are checked again in the delivery loop.
        let dropped =
            !dst_state.alive.load(Ordering::SeqCst) || !self.same_partition(env.src, env.dst) || {
                let p = f64::from_bits(self.drop_bits.load(Ordering::Relaxed));
                p > 0.0 && self.rng.lock().next_f64() < p
            };
        if dropped {
            src_state
                .counters
                .msgs_dropped
                .fetch_add(1, Ordering::Relaxed);
            self.stats.total_dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }

        let u = self.rng.lock().next_f64();
        let latency = self.link.latency_for(env.payload.len(), u);
        let now = Instant::now();
        let mut at = now + latency;
        {
            // Preserve per-link FIFO despite jitter.
            let mut clock = self.link_clock.lock();
            let entry = clock.entry((env.src, env.dst)).or_insert(at);
            if *entry > at {
                at = *entry;
            } else {
                *entry = at;
            }
        }
        let seq = self.next_correlation.fetch_add(1, Ordering::Relaxed);
        self.sched_tx
            .send(Scheduled { at, seq, env })
            .map_err(|_| NetError::Shutdown)
    }

    fn deliver(&self, env: Envelope) {
        let nodes = self.nodes.read();
        let Some(dst_state) = nodes.get(&env.dst) else {
            return;
        };
        if !dst_state.alive.load(Ordering::SeqCst) {
            self.stats.total_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let size = env.wire_size();
        dst_state
            .counters
            .msgs_received
            .fetch_add(1, Ordering::Relaxed);
        dst_state
            .counters
            .bytes_received
            .fetch_add(size, Ordering::Relaxed);
        match env.kind {
            MessageKind::Response => {
                let sender = dst_state.pending.lock().remove(&env.correlation);
                if let Some(tx) = sender {
                    let _ = tx.send(env.payload);
                }
                // Late responses after caller timeout are silently dropped,
                // matching at-most-once RPC semantics.
            }
            MessageKind::OneWay | MessageKind::Request => {
                let _ = dst_state.inbox_tx.send(env);
            }
        }
    }
}

fn delivery_loop(rx: Receiver<Scheduled>, inner: std::sync::Weak<FabricInner>) {
    // OS timers cannot sleep accurately for the sub-millisecond latencies
    // a LAN model produces, so waits below this threshold yield-poll
    // instead of parking. `yield_now` (rather than a pure spin) keeps the
    // simulator usable on low-core-count hosts, where a spinning delivery
    // thread would starve the very threads it is delivering to.
    const SPIN_BELOW: Duration = Duration::from_millis(1);
    let mut heap: BinaryHeap<Scheduled> = BinaryHeap::new();
    loop {
        let now = Instant::now();
        // Deliver everything due.
        while heap.peek().is_some_and(|s| s.at <= now) {
            let s = heap.pop().expect("peeked");
            match inner.upgrade() {
                Some(inner) => inner.deliver(s.env),
                None => return,
            }
        }
        let wait = heap.peek().map(|s| s.at.saturating_duration_since(now));
        let received = match wait {
            Some(Duration::ZERO) => continue,
            Some(d) if d < SPIN_BELOW => {
                let deadline = now + d;
                loop {
                    match rx.try_recv() {
                        Ok(s) => break Some(s),
                        Err(_) if Instant::now() >= deadline => break None,
                        Err(_) => std::thread::yield_now(),
                    }
                }
            }
            Some(d) => rx.recv_timeout(d).ok(),
            None => rx.recv().ok(),
        };
        match received {
            Some(s) => heap.push(s),
            None if wait.is_none() => return, // disconnected and idle
            None => {}                        // timeout: loop to deliver
        }
    }
}

/// Observer of per-destination RPC outcomes: invoked after every
/// [`Endpoint::call`] with the destination and whether a response arrived
/// in time. This is the transport's suspicion hook — failure detectors
/// layered above the fabric (e.g. a coordinator health view) subscribe
/// here instead of re-deriving outcomes from error plumbing.
pub type CallObserver = Arc<dyn Fn(NodeId, bool) + Send + Sync>;

/// A node's handle onto the fabric.
///
/// Cheap to clone is *not* provided deliberately: each node owns exactly
/// one endpoint, mirroring one socket per process. The endpoint is `Send`,
/// so a node may move it into its serving thread; concurrent RPC *calls*
/// from multiple threads of the same node are supported through interior
/// synchronisation.
pub struct Endpoint {
    node: NodeId,
    inner: Arc<FabricInner>,
    inbox_rx: Receiver<Envelope>,
    pending: Arc<Mutex<HashMap<u64, Sender<Vec<u8>>>>>,
    alive: Arc<AtomicBool>,
    counters: Arc<NodeCounters>,
    observer: Mutex<Option<CallObserver>>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", &self.node)
            .field("observer", &self.observer.lock().is_some())
            .finish_non_exhaustive()
    }
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Sends a fire-and-forget message.
    ///
    /// Delivery is not guaranteed (the loss model, partitions, or a crashed
    /// destination may drop it); use [`call`](Self::call) for reliability.
    ///
    /// # Errors
    ///
    /// Fails when this node is down, the destination is unknown, or the
    /// fabric has shut down.
    pub fn send(&self, to: NodeId, payload: Vec<u8>) -> Result<(), NetError> {
        self.inner.submit(Envelope {
            src: self.node,
            dst: to,
            kind: MessageKind::OneWay,
            correlation: 0,
            payload,
        })
    }

    /// Sends a request and blocks until its response arrives or `timeout`
    /// elapses.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when no response arrives in time (the request
    /// or response may have been lost, or the peer crashed); other errors
    /// as for [`send`](Self::send).
    pub fn call(
        &self,
        to: NodeId,
        payload: Vec<u8>,
        timeout: Duration,
    ) -> Result<Vec<u8>, NetError> {
        let correlation = self.inner.next_correlation.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        self.pending.lock().insert(correlation, tx);
        let submitted = self.inner.submit(Envelope {
            src: self.node,
            dst: to,
            kind: MessageKind::Request,
            correlation,
            payload,
        });
        if let Err(e) = submitted {
            self.pending.lock().remove(&correlation);
            // Submission errors are local (own node down, unknown peer,
            // shutdown) — not evidence about the destination's health, so
            // the observer is not invoked.
            return Err(e);
        }
        let result = match rx.recv_timeout(timeout) {
            Ok(response) => Ok(response),
            Err(_) => {
                self.pending.lock().remove(&correlation);
                Err(NetError::Timeout)
            }
        };
        let observer = self.observer.lock().clone();
        if let Some(observer) = observer {
            observer(to, result.is_ok());
        }
        result
    }

    /// Installs the per-node suspicion hook: `observer` runs after every
    /// [`call`](Self::call) that reached the wire, with the destination
    /// and whether a response arrived in time. Local submission failures
    /// (own node crashed, unknown peer) do not trigger it. Replaces any
    /// previously installed observer.
    pub fn set_call_observer(&self, observer: CallObserver) {
        *self.observer.lock() = Some(observer);
    }

    /// Replies to a previously received [`MessageKind::Request`] envelope.
    ///
    /// # Errors
    ///
    /// As for [`send`](Self::send).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `request` is not a request envelope.
    pub fn reply(&self, request: &Envelope, payload: Vec<u8>) -> Result<(), NetError> {
        debug_assert!(request.kind == MessageKind::Request, "reply to non-request");
        self.inner.submit(Envelope {
            src: self.node,
            dst: request.src,
            kind: MessageKind::Response,
            correlation: request.correlation,
            payload,
        })
    }

    /// Receives the next inbound message, blocking up to `timeout`.
    /// Returns `None` on timeout or fabric shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.inbox_rx.recv_timeout(timeout).ok()
    }

    /// Receives the next inbound message without blocking.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.inbox_rx.try_recv().ok()
    }

    /// `true` until this node is crashed by failure injection.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Snapshot of this node's traffic counters.
    pub fn stats(&self) -> NodeStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant_fabric() -> Fabric {
        Fabric::new(LinkModel::instant())
    }

    #[test]
    fn send_and_receive() {
        let f = instant_fabric();
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        a.send(NodeId(1), b"hi".to_vec()).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.payload, b"hi");
        assert_eq!(env.src, NodeId(0));
        assert_eq!(env.kind, MessageKind::OneWay);
    }

    #[test]
    fn rpc_round_trip() {
        let f = instant_fabric();
        let client = f.register(NodeId(0));
        let server = f.register(NodeId(1));
        let handle = std::thread::spawn(move || {
            let req = server.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(req.kind, MessageKind::Request);
            server.reply(&req, b"pong".to_vec()).unwrap();
        });
        let resp = client
            .call(NodeId(1), b"ping".to_vec(), Duration::from_secs(5))
            .unwrap();
        assert_eq!(resp, b"pong");
        handle.join().unwrap();
    }

    #[test]
    fn unknown_node_errors() {
        let f = instant_fabric();
        let a = f.register(NodeId(0));
        assert_eq!(
            a.send(NodeId(9), vec![]),
            Err(NetError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn duplicate_registration_panics() {
        let f = instant_fabric();
        let _a = f.register(NodeId(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _b = f.register(NodeId(0));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn crash_drops_messages_and_fails_sends() {
        let f = instant_fabric();
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        f.crash(NodeId(1));
        assert!(!f.is_alive(NodeId(1)));
        a.send(NodeId(1), b"lost".to_vec()).unwrap(); // silently dropped
        assert!(b.recv_timeout(Duration::from_millis(50)).is_none());
        assert_eq!(
            b.send(NodeId(0), vec![]),
            Err(NetError::NodeDown(NodeId(1)))
        );
        f.restart(NodeId(1));
        assert!(f.is_alive(NodeId(1)));
        a.send(NodeId(1), b"back".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_some());
    }

    #[test]
    fn rpc_to_crashed_node_times_out() {
        let f = instant_fabric();
        let a = f.register(NodeId(0));
        let _b = f.register(NodeId(1));
        f.crash(NodeId(1));
        let err = a
            .call(NodeId(1), vec![], Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let f = instant_fabric();
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        let c = f.register(NodeId(2));
        f.partition(&[&[NodeId(0), NodeId(1)], &[NodeId(2)]]);
        a.send(NodeId(1), b"same side".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_some());
        a.send(NodeId(2), b"other side".to_vec()).unwrap();
        assert!(c.recv_timeout(Duration::from_millis(50)).is_none());
        f.heal_partition();
        a.send(NodeId(2), b"healed".to_vec()).unwrap();
        assert!(c.recv_timeout(Duration::from_secs(1)).is_some());
    }

    #[test]
    fn loss_model_drops_roughly_the_right_fraction() {
        let f = Fabric::with_seed(LinkModel::instant().with_drop_probability(0.5), 99);
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        for _ in 0..1000 {
            a.send(NodeId(1), vec![0u8; 8]).unwrap();
        }
        let mut received = 0;
        while b.recv_timeout(Duration::from_millis(100)).is_some() {
            received += 1;
        }
        assert!((300..700).contains(&received), "received {received}");
        let stats = f.stats();
        assert_eq!(stats.total_dropped + received, 1000);
    }

    #[test]
    fn drop_probability_is_runtime_mutable() {
        let f = Fabric::with_seed(LinkModel::instant(), 7);
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        f.set_drop_probability(1.0);
        assert_eq!(f.link_model().drop_probability, 1.0);
        a.send(NodeId(1), b"lost".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_none());
        f.set_drop_probability(0.0);
        a.send(NodeId(1), b"through".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_some());
    }

    #[test]
    fn latency_is_applied() {
        let link = LinkModel {
            base_latency: Duration::from_millis(30),
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter: Duration::ZERO,
            drop_probability: 0.0,
        };
        let f = Fabric::new(link);
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        let t0 = Instant::now();
        a.send(NodeId(1), vec![]).unwrap();
        let env = b.recv_timeout(Duration::from_secs(1));
        let elapsed = t0.elapsed();
        assert!(env.is_some());
        assert!(elapsed >= Duration::from_millis(25), "elapsed {elapsed:?}");
    }

    #[test]
    fn per_link_fifo_despite_jitter() {
        let link = LinkModel {
            base_latency: Duration::from_micros(200),
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter: Duration::from_micros(200),
            drop_probability: 0.0,
        };
        let f = Fabric::new(link);
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        for i in 0..200u32 {
            a.send(NodeId(1), i.to_le_bytes().to_vec()).unwrap();
        }
        let mut last = None;
        for _ in 0..200 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            let v = u32::from_le_bytes(env.payload.try_into().unwrap());
            if let Some(prev) = last {
                assert!(v > prev, "reordered: {v} after {prev}");
            }
            last = Some(v);
        }
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let f = instant_fabric();
        let a = f.register(NodeId(0));
        let b = f.register(NodeId(1));
        a.send(NodeId(1), vec![0u8; 100]).unwrap();
        b.recv_timeout(Duration::from_secs(1)).unwrap();
        let s = f.stats();
        assert_eq!(s.total_msgs, 1);
        assert_eq!(s.total_bytes, 116);
        assert_eq!(s.per_node[&NodeId(0)].msgs_sent, 1);
        assert_eq!(s.per_node[&NodeId(1)].msgs_received, 1);
        assert_eq!(a.stats().bytes_sent, 116);
    }

    #[test]
    fn call_observer_sees_successes_and_timeouts() {
        let f = instant_fabric();
        let client = f.register(NodeId(0));
        let server = f.register(NodeId(1));
        let seen: Arc<Mutex<Vec<(NodeId, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        client.set_call_observer(Arc::new(move |node, ok| sink.lock().push((node, ok))));
        let server_thread = std::thread::spawn(move || {
            let req = server.recv_timeout(Duration::from_secs(5)).unwrap();
            server.reply(&req, b"ok".to_vec()).unwrap();
        });
        client
            .call(NodeId(1), b"hi".to_vec(), Duration::from_secs(5))
            .unwrap();
        server_thread.join().unwrap();
        f.crash(NodeId(1));
        let err = client
            .call(NodeId(1), vec![], Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, NetError::Timeout);
        // Local submission errors (unknown peer) must not blame the peer.
        let _ = client.call(NodeId(9), vec![], Duration::from_millis(30));
        assert_eq!(*seen.lock(), vec![(NodeId(1), true), (NodeId(1), false)]);
    }

    #[test]
    fn concurrent_rpcs_from_one_node() {
        let f = instant_fabric();
        let client = Arc::new(f.register(NodeId(0)));
        let server = f.register(NodeId(1));
        let server_thread = std::thread::spawn(move || {
            for _ in 0..40 {
                let req = server.recv_timeout(Duration::from_secs(5)).unwrap();
                let mut resp = req.payload.clone();
                resp.push(0xAA);
                server.reply(&req, resp).unwrap();
            }
        });
        let mut handles = vec![];
        for t in 0..4u8 {
            let c = Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                for i in 0..10u8 {
                    let resp = c
                        .call(NodeId(1), vec![t, i], Duration::from_secs(5))
                        .unwrap();
                    assert_eq!(resp, vec![t, i, 0xAA]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server_thread.join().unwrap();
    }
}
