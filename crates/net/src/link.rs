//! Link models: latency, jitter, and loss.

use std::time::Duration;

/// Parameters of every link in the fabric.
///
/// Delivery time of a message of `n` payload bytes is
/// `base_latency + n / bandwidth ± jitter`, and the message is dropped
/// outright with probability `drop_probability` (decided by a deterministic
/// per-fabric RNG so that runs are reproducible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Fixed per-message latency.
    pub base_latency: Duration,
    /// Link bandwidth in bytes per second; `f64::INFINITY` disables the
    /// size-proportional component.
    pub bandwidth_bytes_per_sec: f64,
    /// Maximum absolute jitter added to (or subtracted from) the latency.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub drop_probability: f64,
}

impl LinkModel {
    /// A perfect link: zero latency, infinite bandwidth, no loss. Used by
    /// unit tests and by experiments that want to isolate CPU costs.
    pub fn instant() -> Self {
        LinkModel {
            base_latency: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter: Duration::ZERO,
            drop_probability: 0.0,
        }
    }

    /// A datacenter-style LAN: 100 µs base latency, 1 GB/s, 20 µs jitter,
    /// no loss. The default for the evaluation experiments.
    pub fn lan() -> Self {
        LinkModel {
            base_latency: Duration::from_micros(100),
            bandwidth_bytes_per_sec: 1e9,
            jitter: Duration::from_micros(20),
            drop_probability: 0.0,
        }
    }

    /// A metro-area network between camera aggregation sites: 2 ms base
    /// latency, 100 MB/s, 200 µs jitter.
    pub fn metro() -> Self {
        LinkModel {
            base_latency: Duration::from_millis(2),
            bandwidth_bytes_per_sec: 1e8,
            jitter: Duration::from_micros(200),
            drop_probability: 0.0,
        }
    }

    /// Returns a copy with the drop probability replaced.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_probability = p;
        self
    }

    /// Latency for a message of `payload_bytes`, given a jitter draw
    /// `u ∈ [0, 1)`.
    pub fn latency_for(&self, payload_bytes: usize, u: f64) -> Duration {
        let transfer = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(payload_bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        let jitter_signed = (u * 2.0 - 1.0) * self.jitter.as_secs_f64();
        let total = self.base_latency.as_secs_f64() + transfer.as_secs_f64() + jitter_signed;
        Duration::from_secs_f64(total.max(0.0))
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::lan()
    }
}

/// A small, fast, deterministic RNG (xorshift64*) for loss and jitter
/// decisions. Not cryptographic; reproducibility is the goal.
#[derive(Debug, Clone)]
pub(crate) struct DetRng(u64);

impl DetRng {
    pub(crate) fn new(seed: u64) -> Self {
        DetRng(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_link_is_zero() {
        let l = LinkModel::instant();
        assert_eq!(l.latency_for(1_000_000, 0.5), Duration::ZERO);
    }

    #[test]
    fn latency_scales_with_size() {
        let l = LinkModel {
            base_latency: Duration::from_millis(1),
            bandwidth_bytes_per_sec: 1e6, // 1 MB/s
            jitter: Duration::ZERO,
            drop_probability: 0.0,
        };
        // 1000 bytes at 1 MB/s = 1 ms transfer.
        assert_eq!(l.latency_for(1000, 0.5), Duration::from_millis(2));
        assert!(l.latency_for(10_000, 0.5) > l.latency_for(1000, 0.5));
    }

    #[test]
    fn jitter_bounded() {
        let l = LinkModel {
            base_latency: Duration::from_millis(10),
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter: Duration::from_millis(2),
            drop_probability: 0.0,
        };
        let lo = l.latency_for(0, 0.0);
        let hi = l.latency_for(0, 0.9999999);
        assert!(lo >= Duration::from_millis(8));
        assert!(hi <= Duration::from_millis(12));
        assert!(hi > lo);
    }

    #[test]
    fn latency_never_negative() {
        let l = LinkModel {
            base_latency: Duration::from_micros(1),
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter: Duration::from_millis(5),
            drop_probability: 0.0,
        };
        assert_eq!(l.latency_for(0, 0.0), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bad_drop_probability_panics() {
        let _ = LinkModel::lan().with_drop_probability(1.5);
    }

    #[test]
    fn det_rng_is_deterministic_and_uniformish() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(7);
        let mean: f64 = (0..10_000).map(|_| c.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
