//! Property-based tests for the fabric: conservation of message
//! accounting, latency model sanity, and delivery correctness under
//! random traffic patterns.

use std::time::Duration;

use proptest::prelude::*;
use stcam_net::{Fabric, LinkModel, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn latency_is_nonnegative_and_monotone_in_size(
        base_us in 0u64..5_000,
        bandwidth in 1e3..1e12f64,
        jitter_us in 0u64..2_000,
        small in 0usize..10_000,
        extra in 0usize..10_000,
        u in 0.0..1.0f64,
    ) {
        let link = LinkModel {
            base_latency: Duration::from_micros(base_us),
            bandwidth_bytes_per_sec: bandwidth,
            jitter: Duration::from_micros(jitter_us),
            drop_probability: 0.0,
        };
        let a = link.latency_for(small, u);
        let b = link.latency_for(small + extra, u);
        prop_assert!(b >= a, "larger message was faster: {a:?} vs {b:?}");
    }

    #[test]
    fn every_sent_message_is_delivered_or_dropped(
        n_nodes in 2u32..8,
        sends in prop::collection::vec((0u32..8, 0u32..8, 0usize..200), 1..100),
    ) {
        let fabric = Fabric::new(LinkModel::instant());
        let endpoints: Vec<_> = (0..n_nodes).map(|i| fabric.register(NodeId(i))).collect();
        let mut expected_per_node = vec![0usize; n_nodes as usize];
        let mut sent = 0usize;
        for (from, to, len) in sends {
            let from = from % n_nodes;
            let to = to % n_nodes;
            endpoints[from as usize]
                .send(NodeId(to), vec![0u8; len])
                .expect("send");
            expected_per_node[to as usize] += 1;
            sent += 1;
        }
        // Drain every inbox.
        let mut received = 0usize;
        for (i, endpoint) in endpoints.iter().enumerate() {
            let mut got = 0;
            while endpoint.recv_timeout(Duration::from_millis(200)).is_some() {
                got += 1;
            }
            prop_assert_eq!(got, expected_per_node[i], "node {} inbox", i);
            received += got;
        }
        let stats = fabric.stats();
        prop_assert_eq!(stats.total_msgs as usize, sent);
        prop_assert_eq!(stats.total_dropped, 0);
        prop_assert_eq!(received, sent);
        // Per-node accounting sums to the totals.
        let sent_sum: u64 = stats.per_node.values().map(|s| s.msgs_sent).sum();
        let recv_sum: u64 = stats.per_node.values().map(|s| s.msgs_received).sum();
        prop_assert_eq!(sent_sum as usize, sent);
        prop_assert_eq!(recv_sum as usize, received);
    }

    #[test]
    fn lossy_fabric_conserves_messages(
        drop_p in 0.0..1.0f64,
        n in 10usize..300,
        seed in any::<u64>(),
    ) {
        let fabric = Fabric::with_seed(LinkModel::instant().with_drop_probability(drop_p), seed);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        for _ in 0..n {
            a.send(NodeId(1), vec![1, 2, 3]).expect("send");
        }
        let mut received = 0usize;
        while b.recv_timeout(Duration::from_millis(150)).is_some() {
            received += 1;
        }
        let stats = fabric.stats();
        // Conservation: sent = delivered + dropped, exactly.
        prop_assert_eq!(stats.total_msgs as usize, n);
        prop_assert_eq!(stats.total_dropped as usize + received, n);
    }

    #[test]
    fn per_link_fifo_holds_for_any_jitter(
        jitter_us in 0u64..500,
        n in 2usize..100,
    ) {
        let link = LinkModel {
            base_latency: Duration::from_micros(100),
            bandwidth_bytes_per_sec: f64::INFINITY,
            jitter: Duration::from_micros(jitter_us),
            drop_probability: 0.0,
        };
        let fabric = Fabric::new(link);
        let a = fabric.register(NodeId(0));
        let b = fabric.register(NodeId(1));
        for i in 0..n as u32 {
            a.send(NodeId(1), i.to_le_bytes().to_vec()).expect("send");
        }
        let mut last = None;
        for _ in 0..n {
            let env = b.recv_timeout(Duration::from_secs(2)).expect("delivery");
            let v = u32::from_le_bytes(env.payload.as_slice().try_into().expect("4 bytes"));
            if let Some(prev) = last {
                prop_assert!(v > prev, "reordered: {} after {}", v, prev);
            }
            last = Some(v);
        }
    }
}
