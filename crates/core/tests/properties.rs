//! Property-based tests for the framework's pure components: the wire
//! protocol never panics on hostile bytes and round-trips every message;
//! the partition map upholds its invariants for arbitrary geometry, ring
//! sizes and load profiles.

use proptest::prelude::*;
use stcam::{
    DigestEntry, DigestReport, GridSpecMsg, PartitionMap, Predicate, ReplicaDigestEntry, Request,
    Response, SegmentDigestEntry, WorkerStatsMsg,
};
use stcam_camnet::{CameraId, Observation, ObservationId, Signature};
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, Point, TimeInterval, Timestamp};
use stcam_net::NodeId;
use stcam_world::{EntityClass, EntityId};

fn arb_region() -> impl Strategy<Value = BBox> {
    (
        0.0..4000.0f64,
        0.0..4000.0f64,
        1.0..2000.0f64,
        1.0..2000.0f64,
    )
        .prop_map(|(x, y, w, h)| BBox::new(Point::new(x, y), Point::new(x + w, y + h)))
}

fn arb_window() -> impl Strategy<Value = TimeInterval> {
    (0u64..100_000, 0u64..100_000).prop_map(|(a, d)| {
        TimeInterval::new(Timestamp::from_millis(a), Timestamp::from_millis(a + d))
    })
}

fn arb_observation() -> impl Strategy<Value = Observation> {
    (
        0u32..1_000,
        0u64..1_000_000,
        0u64..100_000,
        0.0..4000.0f64,
        0.0..4000.0f64,
        0u8..4,
        proptest::option::of(0u64..1_000_000),
    )
        .prop_map(|(cam, seq, t, x, y, class, truth)| Observation {
            id: ObservationId::compose(CameraId(cam), seq),
            camera: CameraId(cam),
            time: Timestamp::from_millis(t),
            position: Point::new(x, y),
            class: EntityClass::from_u8(class).expect("class"),
            signature: Signature::latent_for_entity(seq),
            truth: truth.map(EntityId),
        })
}

fn arb_buckets() -> impl Strategy<Value = GridSpecMsg> {
    (
        0.0..1000.0f64,
        0.0..1000.0f64,
        1.0..500.0f64,
        1u32..64,
        1u32..64,
    )
        .prop_map(|(x, y, cell_size, cols, rows)| GridSpecMsg {
            origin: Point::new(x, y),
            cell_size,
            cols,
            rows,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn protocol_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_from_slice::<Request>(&bytes);
        let _ = decode_from_slice::<Response>(&bytes);
        let _ = decode_from_slice::<stcam::Notification>(&bytes);
    }

    #[test]
    fn protocol_truncation_never_panics(region in arb_region(), window in arb_window(), cut in any::<prop::sample::Index>()) {
        // Every prefix of a valid message either fails cleanly or (never)
        // succeeds as a different value; it must not panic.
        let bytes = encode_to_vec(&Request::Range { region, window });
        let cut = cut.index(bytes.len() + 1).min(bytes.len());
        let _ = decode_from_slice::<Request>(&bytes[..cut]);
    }

    #[test]
    fn requests_round_trip(
        region in arb_region(),
        window in arb_window(),
        buckets in arb_buckets(),
        batch in prop::collection::vec(arb_observation(), 0..8),
        k in 0u32..1000,
        class in 0u8..4,
        node in 0u32..100,
        cutoff in 0u64..1_000_000,
        max_distance in proptest::option::of(0.0..10_000.0f64),
        seq in any::<u64>(),
        epoch in any::<u64>(),
        cells in prop::collection::vec(0u32..4096, 0..32),
    ) {
        let class_enum = EntityClass::from_u8(class).expect("class");
        // Every Request variant the protocol defines.
        let requests = [
            Request::Ping,
            Request::Ingest(batch.clone()),
            Request::Replicate { primary: NodeId(node), batch: batch.clone() },
            Request::IngestSeq { sender: NodeId(node), seq, epoch, batch: batch.clone() },
            Request::ReplicateSeq { sender: NodeId(node), seq, primary: NodeId(node), batch: batch.clone() },
            Request::RouteUpdate { epoch, grid: buckets, cells: cells.clone() },
            Request::Range { region, window },
            Request::Knn { at: region.center(), window, k, max_distance },
            Request::Heatmap { buckets, window },
            Request::RegisterContinuous {
                id: stcam::ContinuousQueryId(k as u64),
                predicate: Predicate { region, class: Some(class_enum) },
                notify: NodeId(node),
            },
            Request::UnregisterContinuous(stcam::ContinuousQueryId(k as u64)),
            Request::SnapshotReplica { of: NodeId(node) },
            Request::Adopt(batch.clone()),
            Request::Stats,
            Request::EvictBefore(Timestamp::from_millis(cutoff)),
            Request::Promote { failed: NodeId(node) },
            Request::ExtractRegion { region },
            Request::RangeFiltered { region, window, class },
            Request::TopCells { buckets, window },
            Request::ReplicaRead {
                of: NodeId(node),
                inner: Box::new(Request::Range { region, window }),
            },
            Request::CellDigest { grid: buckets },
            Request::Repair {
                primary: NodeId(node),
                grid: buckets,
                cell: k,
                truncate: k % 2 == 0,
                batch: batch.clone(),
            },
            Request::Rejoin { epoch, grid: buckets, cells },
            Request::SegmentDigest,
            Request::ExportSegments {
                region,
                skip: vec![SegmentDigestEntry { number: seq, count: k as u64, checksum: epoch }],
            },
            Request::InstallSegments { frames: vec![], head: batch.clone() },
        ];
        // Each round-trips exactly, and dispatch names stay unique.
        let mut names = std::collections::HashSet::new();
        for request in requests {
            let bytes = encode_to_vec(&request);
            prop_assert!(names.insert(request.op_name()), "duplicate op name {}", request.op_name());
            prop_assert_eq!(decode_from_slice::<Request>(&bytes).unwrap(), request);
        }
        prop_assert_eq!(names.len(), 26);
    }

    #[test]
    fn responses_round_trip(
        batch in prop::collection::vec(arb_observation(), 0..8),
        counts in prop::collection::vec(0u64..1_000_000, 0..64),
        cells in prop::collection::vec((0u32..4096, 0u64..1_000_000), 0..32),
        served in prop::collection::vec(("[a-z_]{1,20}", 0u64..1_000), 0..6),
        scalars in prop::collection::vec(0u64..1_000_000, 8),
        newest in proptest::option::of(0u64..1_000_000),
        error in "[ -~]{0,64}",
        seq in any::<u64>(),
        epoch in any::<u64>(),
        accepted in any::<u32>(),
    ) {
        let stats = WorkerStatsMsg {
            primary_observations: scalars[0],
            replica_observations: scalars[1],
            ingested_total: scalars[2],
            notifications_sent: scalars[3],
            continuous_queries: scalars[4],
            busy_micros: scalars[5],
            resident_bytes: scalars[6],
            sealed_segments: scalars[7],
            newest_ms: newest,
            served,
        };
        // Every Response variant the protocol defines.
        let misrouted: Vec<ObservationId> = batch.iter().map(|o| o.id).collect();
        let digests = DigestReport {
            primary: cells
                .iter()
                .map(|&(cell, checksum)| DigestEntry {
                    cell,
                    count: cell,
                    checksum,
                })
                .collect(),
            replicas: cells
                .iter()
                .map(|&(cell, checksum)| ReplicaDigestEntry {
                    primary: NodeId(cell),
                    cell,
                    count: cell,
                    checksum,
                })
                .collect(),
        };
        let responses = [
            Response::Ack,
            Response::Observations(batch),
            Response::Counts(counts),
            Response::Stats(stats),
            Response::Error(error),
            Response::CellCounts(cells.clone()),
            Response::IngestAck { seq, accepted },
            Response::IngestNack { seq, accepted, epoch, misrouted },
            Response::Digests(digests),
            Response::SegmentDigests(
                cells
                    .iter()
                    .map(|&(cell, checksum)| SegmentDigestEntry {
                        number: cell as u64,
                        count: cell as u64,
                        checksum,
                    })
                    .collect(),
            ),
            Response::Segments { frames: vec![], head: vec![] },
        ];
        for response in responses {
            let bytes = encode_to_vec(&response);
            prop_assert_eq!(decode_from_slice::<Response>(&bytes).unwrap(), response);
        }
    }

    #[test]
    fn partition_ownership_is_total_and_consistent(
        side in 400.0..10_000.0f64,
        cell in 50.0..2_000.0f64,
        n_workers in 1usize..24,
        px in -2_000.0..12_000.0f64,
        py in -2_000.0..12_000.0f64,
    ) {
        prop_assume!(side / cell >= 1.0);
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(side, side));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, cell, workers.clone());
        // Every point (even far outside) routes to a member.
        let owner = map.owner_of(Point::new(px, py));
        prop_assert!(workers.contains(&owner));
        // Cells partition exactly: each cell owned once, union = all.
        let total: usize = workers.iter().map(|&w| map.cells_of(w).len()).sum();
        prop_assert_eq!(total as u64, map.grid().cell_count());
    }

    #[test]
    fn partition_load_aware_never_starves_and_beats_worst_case(
        n_workers in 2usize..12,
        loads in prop::collection::vec(0u64..10_000, 64),
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(800.0, 800.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::load_aware(extent, 100.0, workers.clone(), &loads);
        for &w in &workers {
            prop_assert!(!map.cells_of(w).is_empty(), "worker {} starved", w);
        }
        // The imbalance can never be worse than "all load on one worker".
        let imbalance = map.imbalance(&loads);
        prop_assert!(imbalance <= n_workers as f64 + 1e-9);
        prop_assert!(imbalance >= 1.0 - 1e-9);
    }

    #[test]
    fn partition_region_fanout_is_minimal_and_sufficient(
        region in arb_region(),
        n_workers in 1usize..16,
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(8_000.0, 8_000.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, 500.0, workers);
        let fanout = map.workers_for_region(region);
        // Sufficient: the owner of every overlapping cell is contacted.
        for c in map.grid().cells_overlapping(region) {
            prop_assert!(fanout.contains(&map.owner_of_cell(c)));
        }
        // Minimal: every contacted worker owns at least one overlapping cell.
        for &w in &fanout {
            let touches = map
                .cells_of(w)
                .iter()
                .any(|&c| map.grid().cell_bbox(c).intersects(&region));
            prop_assert!(touches, "{} contacted needlessly", w);
        }
    }

    #[test]
    fn partition_successors_are_distinct_members(
        n_workers in 1usize..16,
        r in 0usize..20,
        idx in any::<prop::sample::Index>(),
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, 250.0, workers.clone());
        let me = workers[idx.index(workers.len())];
        let succ = map.successors(me, r);
        prop_assert!(succ.len() <= r.min(n_workers - 1));
        let mut seen = std::collections::HashSet::new();
        for s in &succ {
            prop_assert!(*s != me, "successor equals self");
            prop_assert!(workers.contains(s));
            prop_assert!(seen.insert(*s), "duplicate successor");
        }
    }

    #[test]
    fn routing_regions_tile_the_plane(
        n_workers in 1usize..8,
        px in -500.0..1500.0f64,
        py in -500.0..1500.0f64,
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, 250.0, workers);
        let p = Point::new(px, py);
        let containing: Vec<_> = map
            .grid()
            .all_cells()
            .filter(|&c| map.cell_routing_region(c).contains(p))
            .collect();
        prop_assert_eq!(containing.len(), 1, "point {} in {} regions", p, containing.len());
        prop_assert_eq!(containing[0], map.grid().cell_of_clamped(p));
    }
}
