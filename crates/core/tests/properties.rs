//! Property-based tests for the framework's pure components: the wire
//! protocol never panics on hostile bytes and round-trips every message;
//! the partition map upholds its invariants for arbitrary geometry, ring
//! sizes and load profiles.

use proptest::prelude::*;
use stcam::{PartitionMap, Predicate, Request, Response};
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, Point, TimeInterval, Timestamp};
use stcam_net::NodeId;
use stcam_world::EntityClass;

fn arb_region() -> impl Strategy<Value = BBox> {
    (0.0..4000.0f64, 0.0..4000.0f64, 1.0..2000.0f64, 1.0..2000.0f64)
        .prop_map(|(x, y, w, h)| BBox::new(Point::new(x, y), Point::new(x + w, y + h)))
}

fn arb_window() -> impl Strategy<Value = TimeInterval> {
    (0u64..100_000, 0u64..100_000).prop_map(|(a, d)| {
        TimeInterval::new(Timestamp::from_millis(a), Timestamp::from_millis(a + d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn protocol_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_from_slice::<Request>(&bytes);
        let _ = decode_from_slice::<Response>(&bytes);
        let _ = decode_from_slice::<stcam::Notification>(&bytes);
    }

    #[test]
    fn protocol_truncation_never_panics(region in arb_region(), window in arb_window(), cut in any::<prop::sample::Index>()) {
        // Every prefix of a valid message either fails cleanly or (never)
        // succeeds as a different value; it must not panic.
        let bytes = encode_to_vec(&Request::Range { region, window });
        let cut = cut.index(bytes.len() + 1).min(bytes.len());
        let _ = decode_from_slice::<Request>(&bytes[..cut]);
    }

    #[test]
    fn requests_round_trip(
        region in arb_region(),
        window in arb_window(),
        k in 0u32..1000,
        class in 0u8..4,
        node in 0u32..100,
        max_distance in proptest::option::of(0.0..10_000.0f64),
    ) {
        let class_enum = EntityClass::from_u8(class).expect("class");
        let requests = [
            Request::Ping,
            Request::Range { region, window },
            Request::RangeFiltered { region, window, class },
            Request::Knn { at: region.center(), window, k, max_distance },
            Request::ExtractRegion { region },
            Request::SnapshotReplica { of: NodeId(node) },
            Request::Promote { failed: NodeId(node) },
            Request::RegisterContinuous {
                id: stcam::ContinuousQueryId(k as u64),
                predicate: Predicate { region, class: Some(class_enum) },
                notify: NodeId(node),
            },
        ];
        for request in requests {
            let bytes = encode_to_vec(&request);
            prop_assert_eq!(decode_from_slice::<Request>(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn partition_ownership_is_total_and_consistent(
        side in 400.0..10_000.0f64,
        cell in 50.0..2_000.0f64,
        n_workers in 1usize..24,
        px in -2_000.0..12_000.0f64,
        py in -2_000.0..12_000.0f64,
    ) {
        prop_assume!(side / cell >= 1.0);
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(side, side));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, cell, workers.clone());
        // Every point (even far outside) routes to a member.
        let owner = map.owner_of(Point::new(px, py));
        prop_assert!(workers.contains(&owner));
        // Cells partition exactly: each cell owned once, union = all.
        let total: usize = workers.iter().map(|&w| map.cells_of(w).len()).sum();
        prop_assert_eq!(total as u64, map.grid().cell_count());
    }

    #[test]
    fn partition_load_aware_never_starves_and_beats_worst_case(
        n_workers in 2usize..12,
        loads in prop::collection::vec(0u64..10_000, 64),
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(800.0, 800.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::load_aware(extent, 100.0, workers.clone(), &loads);
        for &w in &workers {
            prop_assert!(!map.cells_of(w).is_empty(), "worker {} starved", w);
        }
        // The imbalance can never be worse than "all load on one worker".
        let imbalance = map.imbalance(&loads);
        prop_assert!(imbalance <= n_workers as f64 + 1e-9);
        prop_assert!(imbalance >= 1.0 - 1e-9);
    }

    #[test]
    fn partition_region_fanout_is_minimal_and_sufficient(
        region in arb_region(),
        n_workers in 1usize..16,
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(8_000.0, 8_000.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, 500.0, workers);
        let fanout = map.workers_for_region(region);
        // Sufficient: the owner of every overlapping cell is contacted.
        for c in map.grid().cells_overlapping(region) {
            prop_assert!(fanout.contains(&map.owner_of_cell(c)));
        }
        // Minimal: every contacted worker owns at least one overlapping cell.
        for &w in &fanout {
            let touches = map
                .cells_of(w)
                .iter()
                .any(|&c| map.grid().cell_bbox(c).intersects(&region));
            prop_assert!(touches, "{} contacted needlessly", w);
        }
    }

    #[test]
    fn partition_successors_are_distinct_members(
        n_workers in 1usize..16,
        r in 0usize..20,
        idx in any::<prop::sample::Index>(),
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, 250.0, workers.clone());
        let me = workers[idx.index(workers.len())];
        let succ = map.successors(me, r);
        prop_assert!(succ.len() <= r.min(n_workers - 1));
        let mut seen = std::collections::HashSet::new();
        for s in &succ {
            prop_assert!(*s != me, "successor equals self");
            prop_assert!(workers.contains(s));
            prop_assert!(seen.insert(*s), "duplicate successor");
        }
    }

    #[test]
    fn routing_regions_tile_the_plane(
        n_workers in 1usize..8,
        px in -500.0..1500.0f64,
        py in -500.0..1500.0f64,
    ) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let workers: Vec<NodeId> = (1..=n_workers as u32).map(NodeId).collect();
        let map = PartitionMap::uniform(extent, 250.0, workers);
        let p = Point::new(px, py);
        let containing: Vec<_> = map
            .grid()
            .all_cells()
            .filter(|&c| map.cell_routing_region(c).contains(p))
            .collect();
        prop_assert_eq!(containing.len(), 1, "point {} in {} regions", p, containing.len());
        prop_assert_eq!(containing[0], map.grid().cell_of_clamped(p));
    }
}
