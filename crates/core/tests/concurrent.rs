//! Concurrency stress for the lock-free query plane: many client
//! threads mixing range / kNN / heat-map reads against concurrent
//! ingest and a recovery tick, with strict answers checked against the
//! centralized oracle and executor telemetry checked for lost updates.
//!
//! The read workload queries a *stable* time window that is fully
//! ingested and flushed before the threads start; the concurrent writer
//! ingests into a disjoint, much later window. Strict queries over the
//! stable window must therefore return exactly the oracle's answer no
//! matter how the scheduler interleaves them with ingest, recovery
//! probes, or each other.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration as StdDuration;

use stcam::exec::OpStats;
use stcam::{CentralizedStore, Cluster, ClusterConfig};
use stcam_camnet::{CameraId, Observation, ObservationId, Signature};
use stcam_geo::{BBox, GridSpec, Point, TimeInterval, Timestamp};
use stcam_net::LinkModel;
use stcam_world::{EntityClass, EntityId};

const QUERY_THREADS: usize = 9; // 3 per query kind — ≥ 8 total
const ITERS: usize = 12;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0))
}

fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
    Observation {
        id: ObservationId::compose(CameraId(0), seq),
        camera: CameraId(0),
        time: Timestamp::from_millis(t_ms),
        position: Point::new(x, y),
        class: EntityClass::Car,
        signature: Signature::latent_for_entity(seq),
        truth: Some(EntityId(seq)),
    }
}

/// Irrational-ish multipliers keep pairwise distances distinct, so kNN
/// answers have a unique order and oracle comparison is exact.
fn stable_batch() -> Vec<Observation> {
    (0..900)
        .map(|i| {
            obs(
                i,
                (i % 90) * 1_000, // window [0, 90 s)
                (i as f64 * 37.31) % 1600.0,
                (i as f64 * 53.77) % 1600.0,
            )
        })
        .collect()
}

fn stats_map(stats: Vec<(&'static str, OpStats)>) -> BTreeMap<&'static str, OpStats> {
    stats.into_iter().collect()
}

#[test]
fn concurrent_queries_match_oracle_under_ingest_and_recovery() {
    let cluster = Cluster::launch(
        ClusterConfig::new(extent(), 6)
            .with_replication(1)
            .with_link(LinkModel::instant()),
    )
    .unwrap();
    let stable = stable_batch();
    cluster.ingest(stable.clone()).unwrap();
    cluster.flush().unwrap();

    let mut oracle = CentralizedStore::flat();
    oracle.ingest(stable);
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(90));
    let buckets = GridSpec::covering(extent(), 200.0);

    let before = stats_map(cluster.op_stats());
    let issued = [
        ("range", AtomicU64::new(0)),
        ("knn", AtomicU64::new(0)),
        ("heatmap", AtomicU64::new(0)),
    ];

    std::thread::scope(|scope| {
        // Concurrent writer: disjoint window [1000 s, …), same extent.
        scope.spawn(|| {
            for round in 0u64..10 {
                let batch: Vec<Observation> = (0..80)
                    .map(|i| {
                        let seq = 100_000 + round * 80 + i;
                        obs(
                            seq,
                            1_000_000 + seq,
                            (seq as f64 * 17.23) % 1600.0,
                            (seq as f64 * 29.41) % 1600.0,
                        )
                    })
                    .collect();
                cluster.ingest(batch).unwrap();
            }
            cluster.flush().unwrap();
        });
        // One recovery tick mid-flight; nothing is dead, so it must be
        // a no-op that does not wedge or disturb any reader.
        scope.spawn(|| {
            std::thread::sleep(StdDuration::from_millis(5));
            assert!(cluster.check_and_recover().is_empty());
        });
        for t in 0..QUERY_THREADS {
            let (cluster, oracle, issued) = (&cluster, &oracle, &issued);
            let buckets = &buckets;
            scope.spawn(move || match t % 3 {
                0 => {
                    for i in 0..ITERS {
                        let cx = 100.0 + ((t * ITERS + i) as f64 * 131.7) % 1300.0;
                        let region = BBox::around(Point::new(cx, 1600.0 - cx / 2.0), 350.0);
                        let got = cluster.range_query(region, window).unwrap();
                        issued[0].1.fetch_add(1, Ordering::Relaxed);
                        let want = oracle.range_query(region, window);
                        assert_eq!(
                            got.iter().map(|o| o.id).collect::<Vec<_>>(),
                            want.iter().map(|o| o.id).collect::<Vec<_>>(),
                            "range mismatch at {region:?}"
                        );
                    }
                }
                1 => {
                    for i in 0..ITERS {
                        let at = Point::new(
                            ((t * ITERS + i) as f64 * 97.3) % 1600.0,
                            ((t * ITERS + i) as f64 * 71.9) % 1600.0,
                        );
                        let k = 5 + (i % 3) * 10;
                        let got = cluster.knn_query(at, window, k).unwrap();
                        issued[1].1.fetch_add(1, Ordering::Relaxed);
                        let want = oracle.knn_query(at, window, k);
                        assert_eq!(
                            got.iter().map(|o| o.id).collect::<Vec<_>>(),
                            want.iter().map(|o| o.id).collect::<Vec<_>>(),
                            "knn mismatch at {at} k={k}"
                        );
                    }
                }
                _ => {
                    for _ in 0..ITERS {
                        let got = cluster.heatmap(buckets, window).unwrap();
                        issued[2].1.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(got, oracle.heatmap(buckets, window), "heatmap mismatch");
                    }
                }
            });
        }
    });

    // No lost telemetry: with per-call byte tallies and one shared stats
    // account, every invocation issued by every thread must be booked
    // exactly once.
    let after = stats_map(cluster.op_stats());
    let delta = |name: &str| {
        let b = before.get(name).copied().unwrap_or_default();
        after.get(name).copied().unwrap_or_default().since(&b)
    };
    let issued_range = issued[0].1.load(Ordering::Relaxed);
    let issued_knn = issued[1].1.load(Ordering::Relaxed);
    let issued_heatmap = issued[2].1.load(Ordering::Relaxed);
    assert_eq!(
        issued_range,
        (QUERY_THREADS as u64).div_ceil(3) * ITERS as u64
    );
    assert_eq!(delta("range").invocations, issued_range);
    assert_eq!(delta("knn_phase1").invocations, issued_knn);
    assert_eq!(delta("knn_phase2").invocations, issued_knn);
    assert_eq!(delta("heatmap").invocations, issued_heatmap);
    for op in ["range", "knn_phase1", "knn_phase2", "heatmap"] {
        let d = delta(op);
        assert_eq!(d.failures, 0, "{op} recorded failures");
        assert!(d.bytes_sent > 0 && d.bytes_received > 0, "{op} bytes lost");
    }
    cluster.shutdown();
}

#[test]
fn plan_epoch_advances_only_on_recovery_with_failures() {
    let cluster = Cluster::launch(
        ClusterConfig::new(extent(), 4)
            .with_replication(1)
            .with_link(LinkModel::instant())
            .with_rpc_timeout(StdDuration::from_millis(200)),
    )
    .unwrap();
    let plane = cluster.query_plane();
    assert_eq!(plane.epoch(), 1);
    // Healthy recovery tick: no mutation, no publication.
    assert!(cluster.check_and_recover().is_empty());
    assert_eq!(plane.epoch(), 1);
    // A real failure publishes a new plan; lock-free readers see the
    // shrunken alive set without touching the coordinator.
    cluster.ingest(stable_batch()).unwrap();
    cluster.flush().unwrap();
    cluster.kill_worker(stcam_net::NodeId(2));
    assert_eq!(cluster.check_and_recover(), vec![stcam_net::NodeId(2)]);
    assert_eq!(plane.epoch(), 2);
    assert!(!plane.plan().alive.contains(&stcam_net::NodeId(2)));
    // Replication keeps strict reads whole on the new plan.
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(90));
    assert_eq!(cluster.range_query(extent(), window).unwrap().len(), 900);
    cluster.shutdown();
}
