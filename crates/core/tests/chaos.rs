//! Seeded chaos harness: deterministic fault schedules against a live
//! cluster, with every query checked against a centralized oracle.
//!
//! Each schedule is a [`stcam::chaos::ChaosPlan`]: crashes, restarts,
//! partitions, heals and recovery ticks interleaved with query
//! batteries. The generator keeps schedules survivable (at most
//! `replication` shards unavailable at once), so the invariants here are
//! unconditional:
//!
//! * a **strict** query either errors or equals the oracle exactly;
//! * a **best-effort** range result is a subset of the oracle, and every
//!   dropped hit's owner appears in the reported missing set
//!   (truthfulness);
//! * a full (`completeness.is_full()`) best-effort result equals the
//!   oracle;
//! * after the plan's convergence tail (heal + recover), completeness
//!   returns to full and no data has been lost;
//! * **write durability**: on lossy-link plans, every observation the
//!   cluster *acknowledged* to the writer joins the oracle, so each later
//!   battery asserts acked data is never missing from a strict (or full
//!   best-effort) answer — the acked-ingest contract under message loss.
//!
//! Seeds come from `CHAOS_SEED` (one `u64`) or default to a fixed set;
//! the lossy drop rate comes from `CHAOS_DROP` (permille, default 50 =
//! 5%); the seed is printed before each run so any failure is replayable.

use std::time::Duration as StdDuration;

use stcam::chaos::{ChaosEvent, ChaosPlan};
use stcam::{CentralizedStore, Cluster, ClusterConfig, OpPolicy, QueryMode, StcamError};
use stcam_camnet::{CameraId, Observation, ObservationId, Signature};
use stcam_geo::{BBox, GridSpec, Point, TimeInterval, Timestamp};
use stcam_net::{LinkModel, NodeId};
use stcam_world::{EntityClass, EntityId};

const WORKERS: u32 = 8;
const REPLICATION: usize = 2;
const OBSERVATIONS: u64 = 600;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0))
}

fn window_all() -> TimeInterval {
    TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10_000))
}

fn obs(i: u64) -> Observation {
    Observation {
        id: ObservationId::compose(CameraId(0), i),
        camera: CameraId(0),
        time: Timestamp::from_millis((i % 60) * 1000),
        position: Point::new((i as f64 * 41.0) % 1600.0, (i as f64 * 59.0) % 1600.0),
        class: EntityClass::Car,
        signature: Signature::latent_for_entity(i),
        truth: Some(EntityId(i)),
    }
}

fn config() -> ClusterConfig {
    ClusterConfig::new(extent(), WORKERS as usize)
        .with_replication(REPLICATION)
        .with_link(LinkModel::instant())
        // Short timeout so sub-queries to dead nodes fail over fast.
        .with_rpc_timeout(StdDuration::from_millis(250))
}

/// Acked ingest replicates synchronously before acknowledging, so this
/// settles on the first poll; it stays as a belt-and-braces barrier (and
/// would catch a regression to fire-and-forget replication).
fn settle_replication(cluster: &Cluster) {
    let expected = OBSERVATIONS * REPLICATION.min(WORKERS as usize - 1) as u64;
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    loop {
        let stats = cluster.stats().expect("stats on a healthy cluster");
        let replicas: u64 = stats
            .workers
            .iter()
            .map(|(_, s)| s.replica_observations)
            .sum();
        if replicas >= expected {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replication never settled: {replicas}/{expected}"
        );
        std::thread::sleep(StdDuration::from_millis(20));
    }
}

/// Launches a preloaded cluster plus two oracle stores: `oracle` holds
/// everything the cluster has **acknowledged** (must be served), `upper`
/// holds everything ever **sent** (may be served). They start equal and
/// only diverge while a lossy plan has writes in limbo.
fn launch_with_data() -> (Cluster, CentralizedStore, CentralizedStore) {
    let cluster = Cluster::launch(config()).expect("launch");
    let batch: Vec<Observation> = (0..OBSERVATIONS).map(obs).collect();
    let mut oracle = CentralizedStore::flat();
    oracle.ingest(batch.clone());
    let mut upper = CentralizedStore::flat();
    upper.ingest(batch.clone());
    let accepted = cluster.ingest(batch).expect("ingest");
    assert_eq!(
        accepted, OBSERVATIONS as usize,
        "acked ingest must accept the whole preload on a healthy cluster"
    );
    cluster.flush().expect("flush");
    settle_replication(&cluster);
    (cluster, oracle, upper)
}

fn sorted_ids(observations: &[Observation]) -> Vec<ObservationId> {
    let mut ids: Vec<ObservationId> = observations.iter().map(|o| o.id).collect();
    ids.sort();
    ids
}

/// One battery of strict and best-effort queries, each checked against
/// the oracles. `oracle` is the acked lower bound (these observations
/// must be served), `upper` the sent upper bound (anything served must
/// come from here — writes in limbo may be partially present on some
/// shards). When the two are equal (every non-lossy plan, and lossy
/// plans with nothing in limbo) the checks degenerate to exact set
/// equality. `tag` identifies the plan step for failure messages.
fn battery(
    cluster: &Cluster,
    oracle: &CentralizedStore,
    upper: &CentralizedStore,
    seed: u64,
    tag: &str,
) {
    let window = window_all();
    let region = extent();
    let oracle_hits = oracle.range_query(region, window);
    let oracle_ids = sorted_ids(&oracle_hits);
    let upper_ids = sorted_ids(&upper.range_query(region, window));
    let in_limbo = upper_ids.len() != oracle_ids.len();
    let in_upper = |id: &ObservationId| upper_ids.binary_search(id).is_ok();

    // Strict range: errors are allowed mid-fault, lies are not — and no
    // acked observation may ever be missing from a strict answer.
    match cluster.range_query_with(QueryMode::Strict, region, window) {
        Ok(d) => {
            assert!(
                d.completeness.is_full(),
                "seed {seed} {tag}: strict Ok but completeness not full"
            );
            let got_ids = sorted_ids(&d.value);
            for id in &oracle_ids {
                assert!(
                    got_ids.binary_search(id).is_ok(),
                    "seed {seed} {tag}: acked observation {id:?} missing from a strict answer"
                );
            }
            for id in &got_ids {
                assert!(
                    in_upper(id),
                    "seed {seed} {tag}: strict range invented {id:?}"
                );
            }
        }
        Err(StcamError::PartialFailure { .. }) | Err(StcamError::NoQuorum) => {}
        Err(e) => panic!("seed {seed} {tag}: unexpected strict range error: {e}"),
    }

    // Best-effort range: a truthful subset of what was sent, containing
    // everything acked when it claims to be full.
    let d = cluster
        .range_query_with(QueryMode::BestEffort, region, window)
        .expect("best-effort range never fails on shard loss");
    assert!(
        d.completeness.subset,
        "seed {seed} {tag}: a range result is always a subset"
    );
    let got_ids = sorted_ids(&d.value);
    for id in &got_ids {
        assert!(
            in_upper(id),
            "seed {seed} {tag}: best-effort range invented {id:?}"
        );
    }
    if d.completeness.is_full() {
        for id in &oracle_ids {
            assert!(
                got_ids.binary_search(id).is_ok(),
                "seed {seed} {tag}: full best-effort range dropped acked {id:?}"
            );
        }
    } else {
        // Truthfulness: every dropped acked hit's owner is reported
        // missing.
        let partition = cluster.partition();
        for o in &oracle_hits {
            if got_ids.binary_search(&o.id).is_err() {
                let owner = partition.owner_of(o.position);
                assert!(
                    d.completeness.missing.contains(&owner),
                    "seed {seed} {tag}: dropped {:?} but its owner {owner} \
                     is not in the missing set {:?}",
                    o.id,
                    d.completeness.missing
                );
            }
        }
    }

    // Best-effort heat-map: per-cell counts never exceed what was sent,
    // and never undercount what was acked when full.
    let buckets = GridSpec::covering(extent(), 200.0);
    let oracle_heat = oracle.heatmap(&buckets, window);
    let upper_heat = upper.heatmap(&buckets, window);
    let d = cluster
        .heatmap_with(QueryMode::BestEffort, &buckets, window)
        .expect("best-effort heatmap never fails on shard loss");
    for (cell, (&got, &cap)) in d.value.iter().zip(upper_heat.iter()).enumerate() {
        assert!(
            got <= cap,
            "seed {seed} {tag}: heatmap cell {cell} overcounts ({got} > {cap})"
        );
    }
    if d.completeness.is_full() {
        for (cell, (&got, &floor)) in d.value.iter().zip(oracle_heat.iter()).enumerate() {
            assert!(
                got >= floor,
                "seed {seed} {tag}: full heatmap cell {cell} undercounts acked \
                 ({got} < {floor})"
            );
        }
    }

    // Best-effort kNN: equality when full and nothing is in limbo (limbo
    // observations can legitimately perturb the ranking); a degraded
    // ranking must admit it may not be a subset of the true answer.
    let at = Point::new(800.0, 800.0);
    let oracle_knn: Vec<ObservationId> = oracle
        .knn_query(at, window, 15)
        .iter()
        .map(|o| o.id)
        .collect();
    match cluster.knn_query_with(QueryMode::BestEffort, at, window, 15) {
        Ok(d) => {
            if d.completeness.is_full() {
                let got: Vec<ObservationId> = d.value.iter().map(|o| o.id).collect();
                if in_limbo {
                    for id in &got {
                        assert!(
                            in_upper(id),
                            "seed {seed} {tag}: full best-effort knn invented {id:?}"
                        );
                    }
                } else {
                    assert_eq!(
                        got, oracle_knn,
                        "seed {seed} {tag}: full best-effort knn diverged from oracle"
                    );
                }
            } else {
                assert!(
                    !d.completeness.subset,
                    "seed {seed} {tag}: degraded knn must not claim subset semantics"
                );
            }
        }
        // Routing can fail outright when the seed shard has no live host.
        Err(StcamError::NoQuorum) => {}
        Err(e) => panic!("seed {seed} {tag}: unexpected best-effort knn error: {e}"),
    }
}

fn run_plan(seed: u64) {
    execute_plan(
        seed,
        &ChaosPlan::generate(seed, WORKERS, 10, REPLICATION),
        false,
    );
}

fn run_lossy_plan(seed: u64, permille: u16) {
    let plan = ChaosPlan::generate_lossy(seed, WORKERS, 10, REPLICATION, permille);
    execute_plan(seed, &plan, true);
}

fn execute_plan(seed: u64, plan: &ChaosPlan, lossy: bool) {
    let (cluster, mut oracle, mut upper) = launch_with_data();
    // Observations sent but not yet acknowledged (in `upper`, not in
    // `oracle`); retried at every later ingest step — worker-side id
    // dedup absorbs the repeats.
    let mut limbo: Vec<Observation> = Vec::new();
    if lossy {
        // Under message loss a single lost probe must not fail a live
        // worker out of the ring, and a lost promotion must not orphan a
        // replica log: give both idempotent ops a real retry budget.
        cluster.set_op_policy("probe", OpPolicy::new(StdDuration::from_millis(750)));
        cluster.set_op_policy(
            "promote",
            OpPolicy {
                timeout: StdDuration::from_millis(250),
                max_attempts: 6,
                backoff: StdDuration::from_millis(10),
            },
        );
    }
    for (step, event) in plan.events.iter().enumerate() {
        let tag = format!("step {step} ({event:?})");
        match event {
            ChaosEvent::Kill(n) => cluster.kill_worker(*n),
            ChaosEvent::Restart(n) => cluster.restart_worker(*n),
            ChaosEvent::Partition(group) => cluster.partition_network(&[group.as_slice()]),
            ChaosEvent::Heal => cluster.heal_network(),
            ChaosEvent::Recover => {
                cluster.check_and_recover();
            }
            ChaosEvent::Queries => battery(&cluster, &oracle, &upper, seed, &tag),
            ChaosEvent::Loss { permille } => {
                cluster.set_drop_probability(f64::from(*permille) / 1000.0);
            }
            ChaosEvent::Ingest { base, count } => {
                // One delivery attempt per observation per step: singleton
                // batches make the accepted count identify exactly which
                // observations were acknowledged, so the oracle only ever
                // contains acked data. Whatever the cluster cannot ack
                // right now (owner crashed or isolated and recovery has
                // not noticed) joins the limbo ledger.
                let fresh: Vec<Observation> =
                    (0..u64::from(*count)).map(|i| obs(base + i)).collect();
                upper.ingest(fresh.clone());
                let mut batch = std::mem::take(&mut limbo);
                batch.extend(fresh);
                for o in batch {
                    match cluster.ingest(vec![o.clone()]) {
                        Ok(1) => oracle.ingest(vec![o]),
                        Ok(0) => limbo.push(o),
                        Ok(n) => {
                            panic!("seed {seed} {tag}: impossible accepted count {n}")
                        }
                        Err(e) => panic!("seed {seed} {tag}: acked ingest errored: {e}"),
                    }
                }
            }
        }
    }

    if lossy {
        // The write barrier after the links healed: batch copies parked
        // in the retry window drain now (they dedup against what already
        // landed), so the final battery sees a quiesced cluster.
        cluster.flush().expect("final flush after links healed");
        // Nothing may stay in limbo on a healed, recovered cluster: every
        // observation ever sent must now acknowledge, and joins the
        // oracle so the final assertions check full equality.
        if !limbo.is_empty() {
            let batch = std::mem::take(&mut limbo);
            let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
            loop {
                match cluster.ingest(batch.clone()) {
                    Ok(n) if n == batch.len() => break,
                    outcome => assert!(
                        std::time::Instant::now() < deadline,
                        "seed {seed}: limbo never drained on the healed cluster: {outcome:?}"
                    ),
                }
                std::thread::sleep(StdDuration::from_millis(10));
            }
            oracle.ingest(batch);
        }
        assert_eq!(
            oracle.range_query(extent(), window_all()).len(),
            upper.range_query(extent(), window_all()).len(),
            "seed {seed}: oracle bookkeeping out of sync after limbo drain"
        );
    }

    // The plan's convergence tail healed and recovered everything, so
    // completeness must be back to full with no data lost.
    let d = cluster
        .range_query_with(QueryMode::BestEffort, extent(), window_all())
        .expect("final best-effort range");
    assert!(
        d.completeness.is_full(),
        "seed {seed}: completeness did not return to full; missing {:?}",
        d.completeness.missing
    );
    assert_eq!(
        sorted_ids(&d.value),
        sorted_ids(&oracle.range_query(extent(), window_all())),
        "seed {seed}: data lost despite replication covering every fault"
    );
    cluster
        .range_query(extent(), window_all())
        .expect("strict queries work again after convergence");

    // Every plan starts with a kill and queries before recovering, so the
    // run must have exercised the replica-failover read path.
    let failovers: u64 = cluster.op_stats().iter().map(|(_, s)| s.failovers).sum();
    assert!(
        failovers > 0,
        "seed {seed}: plan never exercised replica failover"
    );

    // Post-heal replica invariant: anti-entropy converges, after which
    // every cell an alive owner holds is mirrored — digest-equal — at its
    // `replication` alive ring successors.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(30);
    loop {
        let report = cluster.repair();
        if report.converged {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "seed {seed}: repair never converged ({} cells still under-replicated \
             after {} rounds)",
            report.under_replicated_after,
            report.rounds
        );
    }
    assert_eq!(
        cluster.under_replicated_cells(),
        0,
        "seed {seed}: under-replication gauge nonzero after repair converged"
    );
    cluster.shutdown();
}

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_SEED must be a u64, got {s:?}"))],
        Err(_) => vec![11, 23, 47],
    }
}

#[test]
fn seeded_chaos_schedules_hold_invariants() {
    for seed in seeds() {
        // Printed even on success so a failing CI log always names the
        // seed of the schedule that was running.
        println!("chaos: running seed {seed} (replay with CHAOS_SEED={seed})");
        run_plan(seed);
    }
}

/// The drop rate for lossy plans: `CHAOS_DROP` in permille (so the CI
/// matrix can sweep 10 = 1% through 50 = 5%), defaulting to 50.
fn drop_permille() -> u16 {
    match std::env::var("CHAOS_DROP") {
        Ok(s) => {
            let p: u16 = s
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("CHAOS_DROP must be a permille u16, got {s:?}"));
            assert!(p <= 1000, "CHAOS_DROP must be ≤ 1000 permille");
            p
        }
        Err(_) => 50,
    }
}

/// The acceptance criterion for reliable ingest: with a uniform message
/// drop probability on **every** link (default 5%, `CHAOS_DROP`
/// permille to override), faults and acked writes interleaved, no
/// observation the cluster acknowledged is ever missing from a
/// subsequent strict query answer — and after the links heal and the
/// convergence tail runs, nothing acked has been lost at all.
#[test]
fn lossy_links_never_lose_acked_observations() {
    let permille = drop_permille();
    // A lossy run pays full retry timeouts for every blocked write, so a
    // single seed runs by default; the CI chaos matrix sweeps the rest
    // through `CHAOS_SEED`.
    let seeds = match std::env::var("CHAOS_SEED") {
        Ok(_) => seeds(),
        Err(_) => vec![11],
    };
    for seed in seeds {
        println!(
            "chaos: running lossy seed {seed} at {permille}\u{2030} drop \
             (replay with CHAOS_SEED={seed} CHAOS_DROP={permille})"
        );
        run_lossy_plan(seed, permille);
    }
}

/// The acceptance scenario from the issue: 8 workers, replication 2, one
/// worker killed mid-stream. Best-effort range, kNN and heat-map queries
/// issued BEFORE any recovery tick succeed with full completeness by
/// reading the dead shard from its replicas; strict reads succeed too.
#[test]
fn killed_worker_is_served_by_replicas_before_recovery() {
    let (cluster, oracle, _upper) = launch_with_data();
    let victim = NodeId(3);
    cluster.kill_worker(victim);
    // No check_and_recover: the dead worker is still in the ring and the
    // partition map; only replica failover can answer for its shard.

    let d = cluster
        .range_query_with(QueryMode::BestEffort, extent(), window_all())
        .expect("range during crash window");
    assert!(
        d.completeness.is_full(),
        "range not full: missing {:?}",
        d.completeness.missing
    );
    assert!(
        d.completeness.shards_from_replica >= 1,
        "dead shard was not served from a replica"
    );
    assert!(
        d.completeness
            .replicas_used
            .iter()
            .any(|&(s, _)| s == victim),
        "failover did not target the killed worker's shard: {:?}",
        d.completeness.replicas_used
    );
    assert_eq!(
        sorted_ids(&d.value),
        sorted_ids(&oracle.range_query(extent(), window_all()))
    );

    let at = Point::new(800.0, 800.0);
    let d = cluster
        .knn_query_with(QueryMode::BestEffort, at, window_all(), 15)
        .expect("knn during crash window");
    assert!(
        d.completeness.is_full(),
        "knn not full: missing {:?}",
        d.completeness.missing
    );
    let got: Vec<ObservationId> = d.value.iter().map(|o| o.id).collect();
    let want: Vec<ObservationId> = oracle
        .knn_query(at, window_all(), 15)
        .iter()
        .map(|o| o.id)
        .collect();
    assert_eq!(got, want, "knn diverged from oracle during crash window");

    let buckets = GridSpec::covering(extent(), 200.0);
    let d = cluster
        .heatmap_with(QueryMode::BestEffort, &buckets, window_all())
        .expect("heatmap during crash window");
    assert!(
        d.completeness.is_full(),
        "heatmap not full: missing {:?}",
        d.completeness.missing
    );
    assert_eq!(d.value, oracle.heatmap(&buckets, window_all()));

    // Strict mode rides the same failover path, so it succeeds too.
    let strict = cluster
        .range_query(extent(), window_all())
        .expect("strict range during crash window with replication 2");
    assert_eq!(strict.len(), OBSERVATIONS as usize);

    // The health view noticed the dead node along the way.
    assert!(
        cluster
            .suspicions()
            .iter()
            .any(|&(n, s)| n == victim && s > 0),
        "killed worker never became suspect: {:?}",
        cluster.suspicions()
    );
    cluster.shutdown();
}

/// A worker that crashed, was failed out of the ring, and later restarts
/// is readmitted by the rejoin handshake even while the links drop 5% of
/// messages — and afterwards owns cells and serves strict reads again.
#[test]
fn restarted_worker_rejoins_under_loss() {
    let (cluster, oracle, _upper) = launch_with_data();
    let victim = NodeId(2);
    cluster.kill_worker(victim);
    let failed = cluster.check_and_recover();
    assert!(
        failed.contains(&victim),
        "kill was not detected: {failed:?}"
    );

    // Lossy links from here on: the rejoin probe and the repair stream
    // must survive dropped messages, so give probes real retry room.
    cluster.set_op_policy("probe", OpPolicy::new(StdDuration::from_millis(750)));
    cluster.set_drop_probability(0.05);
    cluster.restart_worker(victim);

    // Rejoin may need more than one recovery tick under loss (a dropped
    // probe looks exactly like a still-dead worker).
    let deadline = std::time::Instant::now() + StdDuration::from_secs(30);
    loop {
        cluster.check_and_recover();
        let owns_cells = !cluster.partition().cells_of(victim).is_empty();
        if owns_cells && cluster.under_replicated_cells() == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "restarted worker never rejoined under loss \
             (owns_cells={owns_cells}, under_replicated={})",
            cluster.under_replicated_cells()
        );
        std::thread::sleep(StdDuration::from_millis(50));
    }

    // Heal the links and drive anti-entropy to convergence: repair ops
    // lost to the 5% drop (a failed evict leaves a stale copy) retry now.
    cluster.set_drop_probability(0.0);
    let deadline = std::time::Instant::now() + StdDuration::from_secs(30);
    while !cluster.repair().converged {
        assert!(
            std::time::Instant::now() < deadline,
            "repair never converged after links healed"
        );
    }
    let strict = cluster
        .range_query(extent(), window_all())
        .expect("strict range after rejoin");
    assert_eq!(
        sorted_ids(&strict),
        sorted_ids(&oracle.range_query(extent(), window_all())),
        "strict answer diverged from oracle after rejoin"
    );
    cluster.shutdown();
}
