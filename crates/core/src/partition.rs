//! Space partitioning: macro-cells on a Z-order curve, assigned to workers.

use stcam_geo::{BBox, CellId, GridSpec, Point};
use stcam_net::NodeId;

/// How macro-cells are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// Split the Z-order curve into runs of equal *cell count*. Cheap and
    /// oblivious; degrades under spatial load skew.
    UniformHash,
    /// Split the Z-order curve into runs of equal *measured load*
    /// (observations per cell over a recent window). Adapts to hotspots
    /// while preserving spatial locality of each shard.
    LoadAware,
}

impl std::fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionPolicy::UniformHash => f.write_str("uniform-hash"),
            PartitionPolicy::LoadAware => f.write_str("load-aware"),
        }
    }
}

/// The assignment of every macro-cell to an owning worker.
///
/// Cells are ordered on the Z-order curve and each worker owns one
/// contiguous curve run, so shards stay spatially compact and a region
/// query touches few workers.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMap {
    grid: GridSpec,
    workers: Vec<NodeId>,
    /// Per cell (row-major slot), the index into `workers` of its owner.
    assignment: Vec<u32>,
}

impl PartitionMap {
    /// Builds a uniform (cell-count-balanced) partition of `extent` into
    /// macro-cells of `cell_size` over `workers`.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is empty or the geometry is degenerate.
    pub fn uniform(extent: BBox, cell_size: f64, workers: Vec<NodeId>) -> Self {
        let grid = GridSpec::covering(extent, cell_size);
        let cell_count = grid.cell_count() as usize;
        let loads = vec![1u64; cell_count];
        Self::from_loads(grid, workers, &loads)
    }

    /// Builds a load-aware partition: each worker's curve run carries
    /// approximately equal total `loads` (one entry per cell, row-major).
    ///
    /// # Panics
    ///
    /// Panics when `workers` is empty or `loads.len()` does not match the
    /// cell count of the macro grid.
    pub fn load_aware(extent: BBox, cell_size: f64, workers: Vec<NodeId>, loads: &[u64]) -> Self {
        let grid = GridSpec::covering(extent, cell_size);
        assert_eq!(
            loads.len(),
            grid.cell_count() as usize,
            "loads length must equal macro cell count"
        );
        // All-zero load degenerates to uniform.
        if loads.iter().all(|&l| l == 0) {
            let ones = vec![1u64; loads.len()];
            return Self::from_loads(grid, workers, &ones);
        }
        Self::from_loads(grid, workers, loads)
    }

    /// Builds by the given policy; `loads` is required (and only used) by
    /// [`PartitionPolicy::LoadAware`].
    pub fn build(
        policy: PartitionPolicy,
        extent: BBox,
        cell_size: f64,
        workers: Vec<NodeId>,
        loads: Option<&[u64]>,
    ) -> Self {
        match policy {
            PartitionPolicy::UniformHash => Self::uniform(extent, cell_size, workers),
            PartitionPolicy::LoadAware => Self::load_aware(
                extent,
                cell_size,
                workers,
                loads.expect("load-aware partitioning requires per-cell loads"),
            ),
        }
    }

    fn from_loads(grid: GridSpec, workers: Vec<NodeId>, loads: &[u64]) -> Self {
        assert!(!workers.is_empty(), "need at least one worker");
        let n_workers = workers.len();
        // Cells in Z-order.
        let mut cells: Vec<CellId> = grid.all_cells().collect();
        cells.sort_by_key(|c| c.zorder());
        let total: u64 = loads.iter().sum::<u64>().max(1);
        let mut assignment = vec![0u32; grid.cell_count() as usize];
        // Walk the curve, cutting a new run when the current worker has
        // its fair share AND enough workers remain for the leftover cells.
        let mut worker = 0usize;
        let mut acc = 0u64;
        let mut cells_in_run = 0usize;
        let target = total.div_ceil(n_workers as u64);
        for (i, cell) in cells.iter().enumerate() {
            let slot = cell.row as usize * grid.cols() as usize + cell.col as usize;
            let remaining_cells = cells.len() - i;
            let remaining_workers = n_workers - worker;
            // Cut a new run when adding this cell would overshoot the
            // current worker's share by more than stopping short would
            // undershoot it (classic 1-D linear partitioning), or when
            // exactly one cell per remaining worker is left (so that
            // extreme skew cannot starve trailing workers of cells).
            let forced = cells_in_run > 0 && remaining_cells == remaining_workers;
            let with_cell = acc + loads[slot];
            let sated = cells_in_run > 0
                && with_cell > target
                && (with_cell - target) > (target - acc.min(target))
                && remaining_cells >= remaining_workers;
            if remaining_workers > 1 && (forced || sated) {
                worker += 1;
                acc = 0;
                cells_in_run = 0;
            }
            assignment[slot] = worker as u32;
            acc += loads[slot];
            cells_in_run += 1;
        }
        PartitionMap {
            grid,
            workers,
            assignment,
        }
    }

    /// The macro grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// All workers in ring order.
    pub fn workers(&self) -> &[NodeId] {
        &self.workers
    }

    /// The worker owning the macro-cell containing `p` (clamped to the
    /// extent, so noisy boundary observations route deterministically).
    pub fn owner_of(&self, p: Point) -> NodeId {
        self.owner_of_cell(self.grid.cell_of_clamped(p))
    }

    /// The worker owning `cell`.
    ///
    /// # Panics
    ///
    /// Panics when `cell` is outside the macro grid.
    pub fn owner_of_cell(&self, cell: CellId) -> NodeId {
        assert!(self.grid.contains_cell(cell), "cell outside macro grid");
        let slot = cell.row as usize * self.grid.cols() as usize + cell.col as usize;
        self.workers[self.assignment[slot] as usize]
    }

    /// The distinct workers whose shards overlap `region`, in ring order.
    pub fn workers_for_region(&self, region: BBox) -> Vec<NodeId> {
        let mut present = vec![false; self.workers.len()];
        for cell in self.grid.cells_overlapping(region) {
            let slot = cell.row as usize * self.grid.cols() as usize + cell.col as usize;
            present[self.assignment[slot] as usize] = true;
        }
        self.workers
            .iter()
            .zip(&present)
            .filter(|(_, &p)| p)
            .map(|(&w, _)| w)
            .collect()
    }

    /// The macro-cells owned by `worker`.
    pub fn cells_of(&self, worker: NodeId) -> Vec<CellId> {
        let Some(widx) = self.workers.iter().position(|&w| w == worker) else {
            return Vec::new();
        };
        self.grid
            .all_cells()
            .filter(|c| {
                let slot = c.row as usize * self.grid.cols() as usize + c.col as usize;
                self.assignment[slot] == widx as u32
            })
            .collect()
    }

    /// The `r` ring successors of `worker` (replica holders), skipping
    /// `worker` itself. Fewer are returned when the cluster is small.
    pub fn successors(&self, worker: NodeId, r: usize) -> Vec<NodeId> {
        let Some(widx) = self.workers.iter().position(|&w| w == worker) else {
            return Vec::new();
        };
        (1..=r.min(self.workers.len() - 1))
            .map(|i| self.workers[(widx + i) % self.workers.len()])
            .collect()
    }

    /// The first `r` *alive* ring successors of `worker`: the whole ring
    /// is walked past dead members, so a shard keeps `r` live replica
    /// holders as long as the cluster has that many other alive nodes.
    /// This is the one successor rule shared by the write path (acked
    /// ingest certifies these nodes), the read path (replica failover
    /// consults them), and the repair planner (anti-entropy restores
    /// them) — the three stay in lockstep by construction.
    pub fn alive_successors(
        &self,
        worker: NodeId,
        r: usize,
        alive: &std::collections::HashSet<NodeId>,
    ) -> Vec<NodeId> {
        let Some(widx) = self.workers.iter().position(|&w| w == worker) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(r);
        for i in 1..self.workers.len() {
            if out.len() == r {
                break;
            }
            let candidate = self.workers[(widx + i) % self.workers.len()];
            if alive.contains(&candidate) {
                out.push(candidate);
            }
        }
        out
    }

    /// Reassigns every cell owned by `from` to `to` (failover). `to` must
    /// already be a member.
    ///
    /// # Panics
    ///
    /// Panics when either node is not a member.
    pub fn reassign(&mut self, from: NodeId, to: NodeId) {
        let fidx = self
            .workers
            .iter()
            .position(|&w| w == from)
            .expect("from is a member") as u32;
        let tidx = self
            .workers
            .iter()
            .position(|&w| w == to)
            .expect("to is a member") as u32;
        for a in &mut self.assignment {
            if *a == fidx {
                *a = tidx;
            }
        }
    }

    /// Minimal-churn admission: a map identical to `self` except that
    /// `joiner` is (re)entered into the ring and granted approximately a
    /// fair share of the measured `loads` (one entry per cell,
    /// row-major), carved cell-by-cell from the currently most loaded
    /// workers. Every other assignment is preserved, so the replica
    /// re-covering a cutover entails is proportional to the share moved
    /// — unlike rebuilding the map from scratch, which can reshuffle
    /// ownership across the whole keyspace. Donor cells are taken from
    /// the tail of each donor's Z-order run, keeping the donors
    /// contiguous.
    ///
    /// # Panics
    ///
    /// Panics when `loads.len()` does not match the cell count.
    pub fn admit(&self, joiner: NodeId, loads: &[u64]) -> PartitionMap {
        assert_eq!(loads.len(), self.assignment.len());
        let mut map = self.clone();
        if !map.workers.contains(&joiner) {
            map.workers.push(joiner);
        }
        let jix = map.workers.iter().position(|&w| w == joiner).unwrap() as u32;
        // All-zero load degenerates to uniform (cell-count) shares.
        let loads: Vec<u64> = if loads.iter().all(|&l| l == 0) {
            vec![1; loads.len()]
        } else {
            loads.to_vec()
        };
        let fair = loads.iter().sum::<u64>() / map.workers.len() as u64;
        // Per-worker load totals and cell slots, the latter Z-ordered so
        // donors cede from the tail of their curve run.
        let mut totals = vec![0u64; map.workers.len()];
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); map.workers.len()];
        let mut slots: Vec<usize> = (0..map.assignment.len()).collect();
        let cols = map.grid.cols();
        slots.sort_by_key(|&s| CellId::new(s as u32 % cols, s as u32 / cols).zorder());
        for &slot in &slots {
            let w = map.assignment[slot] as usize;
            totals[w] += loads[slot];
            owned[w].push(slot);
        }
        let mut jload = totals[jix as usize];
        while jload < fair {
            // Donor: the most loaded worker that would keep ≥ 1 cell.
            let Some(donor) = (0..map.workers.len())
                .filter(|&w| w as u32 != jix && owned[w].len() > 1)
                .max_by_key(|&w| totals[w])
            else {
                break;
            };
            let slot = *owned[donor].last().expect("donor has cells");
            let l = loads[slot];
            // Stop when overshooting the fair share hurts more than
            // stopping short does.
            if jload + l > fair && (jload + l - fair) > (fair - jload) {
                break;
            }
            owned[donor].pop();
            totals[donor] -= l;
            map.assignment[slot] = jix;
            jload += l;
        }
        map
    }

    /// The region of positions that *route* to `cell` under
    /// [`owner_of`](Self::owner_of): the cell's half-open box, extended
    /// unboundedly outward on grid-border sides (clamping maps outside
    /// positions to border cells). Used by shard migration so that the
    /// set of observations extracted from a cell is exactly the set that
    /// routes to it.
    pub fn cell_routing_region(&self, cell: CellId) -> BBox {
        const FAR: f64 = 1e12;
        let bb = self.grid.cell_bbox(cell);
        let min = Point::new(
            if cell.col == 0 { -FAR } else { bb.min.x },
            if cell.row == 0 { -FAR } else { bb.min.y },
        );
        let max = Point::new(
            if cell.col == self.grid.cols() - 1 {
                FAR
            } else {
                bb.max.x.next_down()
            },
            if cell.row == self.grid.rows() - 1 {
                FAR
            } else {
                bb.max.y.next_down()
            },
        );
        BBox::new(min, max)
    }

    /// Per-worker totals of `loads` (one entry per cell, row-major).
    ///
    /// # Panics
    ///
    /// Panics when `loads.len()` does not match the cell count.
    pub fn worker_loads(&self, loads: &[u64]) -> Vec<(NodeId, u64)> {
        assert_eq!(loads.len(), self.assignment.len());
        let mut totals = vec![0u64; self.workers.len()];
        for (slot, &load) in loads.iter().enumerate() {
            totals[self.assignment[slot] as usize] += load;
        }
        self.workers.iter().copied().zip(totals).collect()
    }

    /// Load imbalance factor: max worker load ÷ mean worker load (1.0 is
    /// perfect balance). Returns 1.0 when the total load is zero.
    pub fn imbalance(&self, loads: &[u64]) -> f64 {
        let totals = self.worker_loads(loads);
        let sum: u64 = totals.iter().map(|(_, l)| l).sum();
        if sum == 0 {
            return 1.0;
        }
        let max = totals.iter().map(|(_, l)| *l).max().unwrap_or(0);
        max as f64 / (sum as f64 / totals.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0))
    }

    fn workers(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId).collect()
    }

    #[test]
    fn uniform_assigns_every_cell_and_balances_counts() {
        let m = PartitionMap::uniform(extent(), 200.0, workers(4));
        assert_eq!(m.grid().cell_count(), 64);
        let loads = vec![1u64; 64];
        let per_worker = m.worker_loads(&loads);
        for (w, count) in &per_worker {
            assert_eq!(*count, 16, "worker {w} owns {count} cells");
        }
        assert!((m.imbalance(&loads) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn admit_moves_only_the_joiners_share() {
        let m = PartitionMap::uniform(extent(), 200.0, workers(4));
        let loads = vec![1u64; 64];
        let joiner = NodeId(9);
        let grown = m.admit(joiner, &loads);
        assert!(grown.workers().contains(&joiner));
        // Every cell either kept its previous owner or moved to the
        // joiner — veterans never trade cells among themselves.
        let mut moved = 0usize;
        for cell in m.grid().all_cells() {
            let before = m.owner_of_cell(cell);
            let after = grown.owner_of_cell(cell);
            if after != before {
                assert_eq!(after, joiner, "cell {cell:?} moved between veterans");
                moved += 1;
            }
        }
        // The joiner ends within one cell of its fair share (64 / 5).
        assert!((11..=13).contains(&moved), "joiner got {moved} cells");
        assert!((grown.imbalance(&loads) - 65.0 / 64.0).abs() < 0.11);
    }

    #[test]
    fn admit_of_satisfied_member_changes_nothing() {
        let m = PartitionMap::uniform(extent(), 200.0, workers(4));
        let loads = vec![1u64; 64];
        let same = m.admit(NodeId(2), &loads);
        assert_eq!(same.workers(), m.workers());
        for cell in m.grid().all_cells() {
            assert_eq!(same.owner_of_cell(cell), m.owner_of_cell(cell));
        }
    }

    #[test]
    fn owner_is_total_and_consistent() {
        let m = PartitionMap::uniform(extent(), 200.0, workers(5));
        for cell in m.grid().all_cells() {
            let owner = m.owner_of_cell(cell);
            assert!(m.workers().contains(&owner));
            let center = m.grid().cell_bbox(cell).center();
            assert_eq!(m.owner_of(center), owner);
        }
        // Points outside the extent clamp to border cells.
        let o = m.owner_of(Point::new(-500.0, -500.0));
        assert_eq!(o, m.owner_of_cell(CellId::new(0, 0)));
    }

    #[test]
    fn shards_are_spatially_compact() {
        // Each worker's cells should form few connected clumps thanks to
        // the Z-order runs; verify the bounding box of each shard is much
        // smaller than the whole extent for a 16-worker split.
        let m = PartitionMap::uniform(extent(), 100.0, workers(16));
        for &w in m.workers() {
            let cells = m.cells_of(w);
            let bb = BBox::covering(cells.iter().map(|&c| m.grid().cell_center(c)));
            assert!(
                bb.area() <= extent().area() / 2.0,
                "shard of {w} too spread"
            );
        }
    }

    #[test]
    fn workers_for_region_exactly_covers_owners() {
        let m = PartitionMap::uniform(extent(), 200.0, workers(4));
        let region = BBox::new(Point::new(50.0, 50.0), Point::new(350.0, 350.0));
        let listed = m.workers_for_region(region);
        let mut expected: Vec<NodeId> = m
            .grid()
            .cells_overlapping(region)
            .map(|c| m.owner_of_cell(c))
            .collect();
        expected.sort();
        expected.dedup();
        let mut got = listed.clone();
        got.sort();
        assert_eq!(got, expected);
        // Full-extent query touches everyone.
        assert_eq!(m.workers_for_region(extent()).len(), 4);
    }

    #[test]
    fn load_aware_beats_uniform_under_hotspot() {
        // Load concentrated in one corner.
        let grid = GridSpec::covering(extent(), 200.0);
        let mut loads = vec![1u64; grid.cell_count() as usize];
        for cell in
            grid.cells_overlapping(BBox::new(Point::new(0.0, 0.0), Point::new(400.0, 400.0)))
        {
            let slot = cell.row as usize * grid.cols() as usize + cell.col as usize;
            loads[slot] = 500;
        }
        let uniform = PartitionMap::uniform(extent(), 200.0, workers(8));
        let aware = PartitionMap::load_aware(extent(), 200.0, workers(8), &loads);
        let iu = uniform.imbalance(&loads);
        let ia = aware.imbalance(&loads);
        assert!(ia < iu, "load-aware {ia} not better than uniform {iu}");
        assert!(ia < 2.0, "load-aware imbalance still {ia}");
    }

    #[test]
    fn load_aware_all_zero_falls_back_to_uniform() {
        let grid = GridSpec::covering(extent(), 200.0);
        let zeros = vec![0u64; grid.cell_count() as usize];
        let m = PartitionMap::load_aware(extent(), 200.0, workers(4), &zeros);
        let ones = vec![1u64; zeros.len()];
        let per_worker = m.worker_loads(&ones);
        for (_, count) in per_worker {
            assert_eq!(count, 16);
        }
    }

    #[test]
    fn every_worker_gets_at_least_one_cell() {
        // Extreme skew: all load in one cell must not starve workers.
        let grid = GridSpec::covering(extent(), 200.0);
        let mut loads = vec![0u64; grid.cell_count() as usize];
        loads[0] = 1_000_000;
        let m = PartitionMap::load_aware(extent(), 200.0, workers(8), &loads);
        for &w in m.workers() {
            assert!(!m.cells_of(w).is_empty(), "worker {w} owns nothing");
        }
    }

    #[test]
    fn successors_ring() {
        let m = PartitionMap::uniform(extent(), 400.0, workers(4));
        assert_eq!(m.successors(NodeId(1), 2), vec![NodeId(2), NodeId(3)]);
        assert_eq!(m.successors(NodeId(4), 2), vec![NodeId(1), NodeId(2)]);
        // r capped by cluster size.
        assert_eq!(m.successors(NodeId(1), 10).len(), 3);
        // Unknown worker.
        assert!(m.successors(NodeId(99), 1).is_empty());
    }

    #[test]
    fn reassign_moves_all_cells() {
        let mut m = PartitionMap::uniform(extent(), 400.0, workers(4));
        let before = m.cells_of(NodeId(2)).len();
        assert!(before > 0);
        let target_before = m.cells_of(NodeId(3)).len();
        m.reassign(NodeId(2), NodeId(3));
        assert!(m.cells_of(NodeId(2)).is_empty());
        assert_eq!(m.cells_of(NodeId(3)).len(), target_before + before);
    }

    #[test]
    fn routing_region_matches_owner_routing() {
        let m = PartitionMap::uniform(extent(), 200.0, workers(4));
        // Probe a lattice of positions, including cell edges and points
        // outside the extent: each position must fall in exactly the
        // routing region of the cell that owns it.
        let mut probes = Vec::new();
        for i in -2..=18 {
            for j in -2..=18 {
                probes.push(Point::new(i as f64 * 100.0, j as f64 * 100.0));
                probes.push(Point::new(i as f64 * 100.0 + 37.5, j as f64 * 100.0 + 62.5));
            }
        }
        for p in probes {
            let owning_cell = m.grid().cell_of_clamped(p);
            let mut containing = 0;
            for cell in m.grid().all_cells() {
                if m.cell_routing_region(cell).contains(p) {
                    containing += 1;
                    assert_eq!(
                        cell, owning_cell,
                        "{p} routes to {owning_cell} but region of {cell} contains it"
                    );
                }
            }
            assert_eq!(
                containing, 1,
                "{p} contained by {containing} routing regions"
            );
        }
    }

    #[test]
    fn alive_successors_walk_past_dead_members() {
        use std::collections::HashSet;
        let m = PartitionMap::uniform(extent(), 400.0, workers(5));
        let all: HashSet<NodeId> = m.workers().iter().copied().collect();
        // Everyone alive: identical to the plain successor rule.
        assert_eq!(
            m.alive_successors(NodeId(1), 2, &all),
            vec![NodeId(2), NodeId(3)]
        );
        // A dead immediate successor is skipped, not counted.
        let mut alive = all.clone();
        alive.remove(&NodeId(2));
        assert_eq!(
            m.alive_successors(NodeId(1), 2, &alive),
            vec![NodeId(3), NodeId(4)]
        );
        // The walk wraps around the ring.
        assert_eq!(
            m.alive_successors(NodeId(4), 2, &alive),
            vec![NodeId(5), NodeId(1)]
        );
        // Fewer alive peers than r: return all of them.
        let two: HashSet<NodeId> = [NodeId(1), NodeId(4)].into_iter().collect();
        assert_eq!(m.alive_successors(NodeId(1), 3, &two), vec![NodeId(4)]);
        // Self is never a successor even when it is the only alive node.
        let me: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        assert!(m.alive_successors(NodeId(1), 2, &me).is_empty());
        // Unknown worker.
        assert!(m.alive_successors(NodeId(99), 2, &all).is_empty());
    }

    #[test]
    fn single_worker_owns_everything() {
        let m = PartitionMap::uniform(extent(), 400.0, workers(1));
        assert_eq!(m.cells_of(NodeId(1)).len(), m.grid().cell_count() as usize);
        assert!(m.successors(NodeId(1), 2).is_empty());
    }
}
