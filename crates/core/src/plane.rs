//! The lock-free query plane: epoch-published routing plans and a pool
//! of per-caller executors.
//!
//! Historically every read went through the coordinator's mutex, so N
//! client threads serialised on a single lock (and a single fabric
//! endpoint) even though scatter/gather itself is embarrassingly
//! parallel. This module splits that responsibility:
//!
//! * The **control plane** (the [`Coordinator`](crate::Coordinator),
//!   still mutex-guarded) owns membership, recovery, rebalance, and the
//!   continuous-query registry. Whenever it mutates the partition map or
//!   the alive set it *publishes* a fresh immutable [`QueryPlan`]
//!   snapshot here, tagged with a monotonically increasing epoch.
//! * The **query plane** ([`QueryPlane`]) serves reads. A query clones
//!   the current `Arc<QueryPlan>` (one brief `RwLock` read — never held
//!   across I/O), picks a pooled [`Executor`] round-robin, and runs the
//!   scatter/gather entirely against that immutable snapshot. Reads
//!   share **no** lock with each other or with the control plane.
//!
//! Consistency model: a query runs against the plan that was current
//! when it started. A concurrently published plan (failover, rebalance)
//! is observed by the *next* query. Stale-plan sub-queries that hit a
//! dead worker are absorbed by the executor's replica-failover path and
//! surface, at worst, as a [`Completeness`] deficit — exactly the same
//! contract as before, minus the global lock.
//!
//! All pooled executors share one [`ExecShared`](crate::exec) account,
//! so per-operation telemetry, policy overrides, and the
//! [`HealthView`](crate::HealthView) are cluster-wide no matter which
//! endpoint carried a given call.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use stcam_camnet::Observation;
use stcam_geo::{BBox, CellId, GridSpec, Point, TimeInterval};
use stcam_net::NodeId;

use crate::error::StcamError;
use crate::exec::{
    Completeness, Degraded, Executor, HeatmapOp, KnnBroadcastOp, KnnPhase1Op, KnnPhase2Op, OpStats,
    QueryMode, RangeFilteredOp, RangeOp, TopCellsOp,
};
use crate::health::HealthView;
use crate::partition::PartitionMap;
use crate::protocol::GridSpecMsg;

/// An immutable routing snapshot: everything a read needs to scatter.
///
/// Published as a whole by the control plane; readers clone the `Arc`
/// and never observe a partially updated map/alive-set pair.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Publication counter; strictly increasing, starts at 1.
    pub epoch: u64,
    /// The partition map current at publication time.
    pub partition: PartitionMap,
    /// The workers believed alive at publication time.
    pub alive: HashSet<NodeId>,
}

/// The concurrent read path: an epoch-published [`QueryPlan`] plus a
/// pool of fabric endpoints, one of which each query borrows
/// round-robin.
///
/// All methods take `&self` and are safe to call from any number of
/// threads; none of them acquires the coordinator's control-plane lock.
#[derive(Debug)]
pub struct QueryPlane {
    plan: RwLock<Arc<QueryPlan>>,
    pool: Vec<Executor>,
    next: AtomicUsize,
}

impl QueryPlane {
    /// Builds the plane over an executor pool and an initial plan
    /// (published as epoch 1).
    ///
    /// # Panics
    ///
    /// Panics when `pool` is empty: a query plane with no endpoint
    /// cannot serve reads.
    pub(crate) fn new(
        pool: Vec<Executor>,
        partition: PartitionMap,
        alive: HashSet<NodeId>,
    ) -> Self {
        assert!(!pool.is_empty(), "query plane needs at least one endpoint");
        QueryPlane {
            plan: RwLock::new(Arc::new(QueryPlan {
                epoch: 1,
                partition,
                alive,
            })),
            pool,
            next: AtomicUsize::new(0),
        }
    }

    /// The current plan snapshot. Cheap: one `RwLock` read and an `Arc`
    /// clone; the lock is released before this returns.
    pub fn plan(&self) -> Arc<QueryPlan> {
        Arc::clone(&self.plan.read())
    }

    /// The epoch of the currently published plan.
    pub fn epoch(&self) -> u64 {
        self.plan.read().epoch
    }

    /// Atomically replaces the published plan with `partition`/`alive`
    /// at the next epoch. Called by the control plane after every
    /// membership or partition mutation; in-flight queries keep their
    /// old snapshot, subsequent queries observe this one.
    pub(crate) fn publish(&self, partition: PartitionMap, alive: HashSet<NodeId>) -> u64 {
        let mut slot = self.plan.write();
        let epoch = slot.epoch + 1;
        *slot = Arc::new(QueryPlan {
            epoch,
            partition,
            alive,
        });
        epoch
    }

    /// Borrows the next pooled executor round-robin. Endpoints support
    /// concurrent calls (correlation ids), so even `threads > pool`
    /// oversubscription stays correct — pooling only spreads contention.
    fn executor(&self) -> &Executor {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        &self.pool[n % self.pool.len()]
    }

    /// Shared per-node suspicion view (common to every pooled endpoint
    /// and the control plane).
    pub fn health(&self) -> &Arc<HealthView> {
        self.pool[0].health()
    }

    /// Cluster-wide per-operation telemetry, sorted by operation name.
    /// One account across the coordinator and every pooled endpoint.
    pub fn op_stats(&self) -> Vec<(&'static str, OpStats)> {
        self.pool[0].op_stats()
    }

    // ------------------------------------------------------------------
    // Queries — each method snapshots the plan once and runs every
    // phase of the operation against that same snapshot.
    // ------------------------------------------------------------------

    /// All observations in `region` × `window` (see
    /// [`Coordinator::range_query_mode`](crate::Coordinator::range_query_mode)).
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] when a shard answered from neither
    /// its primary nor a replica.
    pub fn range_query_mode(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        let plan = self.plan();
        let d = self.executor().execute_degraded(
            RangeOp { region, window },
            &plan.partition,
            &plan.alive,
        );
        finish(mode, d)
    }

    /// Two-phase pruned kNN (see
    /// [`Coordinator::knn_query_mode`](crate::Coordinator::knn_query_mode)).
    /// Both phases run against one plan snapshot, so an interleaved
    /// failover cannot split the query across two routing views.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards;
    /// [`StcamError::NoQuorum`] when no worker can anchor phase one.
    pub fn knn_query_mode(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        if k == 0 {
            return Ok(Degraded {
                value: Vec::new(),
                completeness: empty_completeness(),
            });
        }
        let plan = self.plan();
        let exec = self.executor();
        let owner = route_owner(
            plan.partition.owner_of(at),
            &plan.partition,
            &plan.alive,
            exec.health(),
        )?;
        let phase1 = exec.execute_degraded(
            KnnPhase1Op {
                owner,
                at,
                window,
                k,
            },
            &plan.partition,
            &plan.alive,
        );
        let mut completeness = phase1.completeness;
        let seed = phase1.value;
        let bound = if seed.len() >= k {
            seed.last().map(|o| at.distance(o.position))
        } else {
            None
        };
        let phase2 = exec.execute_degraded(
            KnnPhase2Op {
                at,
                window,
                k,
                bound,
                exclude: owner,
                seed,
            },
            &plan.partition,
            &plan.alive,
        );
        completeness.absorb(phase2.completeness);
        finish(
            mode,
            Degraded {
                value: phase2.value,
                completeness,
            },
        )
    }

    /// Broadcast kNN baseline (see
    /// [`Coordinator::knn_broadcast_mode`](crate::Coordinator::knn_broadcast_mode)).
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn knn_broadcast_mode(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        if k == 0 {
            return Ok(Degraded {
                value: Vec::new(),
                completeness: empty_completeness(),
            });
        }
        let plan = self.plan();
        let d = self.executor().execute_degraded(
            KnnBroadcastOp { at, window, k },
            &plan.partition,
            &plan.alive,
        );
        finish(mode, d)
    }

    /// Partial-aggregation heat-map (see
    /// [`Coordinator::heatmap_mode`](crate::Coordinator::heatmap_mode)).
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn heatmap_mode(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<u64>>, StcamError> {
        let plan = self.plan();
        let d = self.executor().execute_degraded(
            HeatmapOp {
                buckets: GridSpecMsg::from(*buckets),
                window,
            },
            &plan.partition,
            &plan.alive,
        );
        finish(mode, d)
    }

    /// The `k` densest buckets (see
    /// [`Coordinator::top_cells_mode`](crate::Coordinator::top_cells_mode)).
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn top_cells_mode(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<(CellId, u64)>>, StcamError> {
        let plan = self.plan();
        let d = self.executor().execute_degraded(
            TopCellsOp {
                buckets: GridSpecMsg::from(*buckets),
                window,
                k,
            },
            &plan.partition,
            &plan.alive,
        );
        finish(mode, d)
    }

    /// Class-filtered range query (see
    /// [`Coordinator::range_query_filtered_mode`](crate::Coordinator::range_query_filtered_mode)).
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn range_query_filtered_mode(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        let plan = self.plan();
        let d = self.executor().execute_degraded(
            RangeFilteredOp {
                region,
                window,
                class: class.as_u8(),
            },
            &plan.partition,
            &plan.alive,
        );
        finish(mode, d)
    }

    /// Ship-all aggregate baseline: fetch every matching observation and
    /// bucket at the caller. Same result as
    /// [`heatmap_mode`](Self::heatmap_mode), far more bytes moved.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn heatmap_ship_all(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        let hits = self
            .range_query_mode(QueryMode::Strict, buckets.extent(), window)?
            .value;
        let mut total = vec![0u64; buckets.cell_count() as usize];
        for obs in hits {
            if let Some(cell) = buckets.cell_of(obs.position) {
                total[cell.row as usize * buckets.cols() as usize + cell.col as usize] += 1;
            }
        }
        Ok(total)
    }
}

/// Applies the query mode to a degraded result: strict callers get
/// [`StcamError::PartialFailure`] unless every shard answered.
pub(crate) fn finish<T>(mode: QueryMode, d: Degraded<T>) -> Result<Degraded<T>, StcamError> {
    match mode {
        QueryMode::Strict if !d.completeness.is_full() => Err(StcamError::PartialFailure {
            missing: d.completeness.missing,
        }),
        _ => Ok(d),
    }
}

/// An already-complete account for queries that contact no shard
/// (e.g. `k = 0` kNN).
pub(crate) fn empty_completeness() -> Completeness {
    Completeness {
        subset: true,
        ..Completeness::default()
    }
}

/// Resolves `owner` to the node that should actually receive its
/// traffic, diverting along the ring when the owner is marked dead — or
/// merely *suspected* dead by the [`HealthView`], so a crashed node
/// stops receiving traffic after its first failed RPC instead of after
/// the next recovery tick. Shared by ingest routing (control plane) and
/// the kNN phase-one anchor (query plane).
///
/// # Errors
///
/// [`StcamError::NoQuorum`] when no alive candidate exists.
pub(crate) fn route_owner(
    owner: NodeId,
    partition: &PartitionMap,
    alive: &HashSet<NodeId>,
    health: &HealthView,
) -> Result<NodeId, StcamError> {
    if alive.contains(&owner) && !health.is_suspect(owner) {
        return Ok(owner);
    }
    let successor = |require_healthy: bool| {
        partition
            .successors(owner, partition.workers().len() - 1)
            .into_iter()
            .find(|&w| alive.contains(&w) && (!require_healthy || !health.is_suspect(w)))
    };
    if let Some(w) = successor(true) {
        return Ok(w);
    }
    // Everyone is suspect: a suspect-but-alive owner still beats
    // nothing (suspicion may be a false positive under load).
    if alive.contains(&owner) {
        return Ok(owner);
    }
    successor(false).ok_or(StcamError::NoQuorum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_parts() -> (PartitionMap, HashSet<NodeId>) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0));
        let workers: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let partition = PartitionMap::uniform(extent, 100.0, workers.clone());
        (partition, workers.into_iter().collect())
    }

    fn test_plane(pool_size: usize) -> QueryPlane {
        let fabric = stcam_net::Fabric::new(stcam_net::LinkModel::instant());
        let (partition, alive) = plan_parts();
        let pool: Vec<Executor> = (0..pool_size)
            .map(|k| {
                Executor::new(
                    fabric.register(NodeId(20_000 + k as u32)),
                    crate::exec::OpPolicy::new(std::time::Duration::from_millis(50)),
                )
            })
            .collect();
        QueryPlane::new(pool, partition, alive)
    }

    #[test]
    fn publish_bumps_epoch_and_readers_see_the_new_plan() {
        let plane = test_plane(2);
        assert_eq!(plane.epoch(), 1);
        let old = plane.plan();
        let (partition, mut alive) = plan_parts();
        alive.remove(&NodeId(3));
        assert_eq!(plane.publish(partition, alive), 2);
        assert_eq!(plane.epoch(), 2);
        // The old snapshot is unaffected; the new one reflects the edit.
        assert!(old.alive.contains(&NodeId(3)));
        assert!(!plane.plan().alive.contains(&NodeId(3)));
    }

    #[test]
    fn concurrent_readers_and_publisher_never_tear_a_plan() {
        let plane = std::sync::Arc::new(test_plane(4));
        std::thread::scope(|scope| {
            let publisher = {
                let plane = std::sync::Arc::clone(&plane);
                scope.spawn(move || {
                    for round in 0..200u32 {
                        let (partition, mut alive) = plan_parts();
                        // Each published plan removes exactly one worker,
                        // a recognisable invariant for the readers.
                        alive.remove(&NodeId(1 + round % 4));
                        plane.publish(partition, alive);
                    }
                })
            };
            for _ in 0..4 {
                let plane = std::sync::Arc::clone(&plane);
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    for _ in 0..500 {
                        let plan = plane.plan();
                        assert!(plan.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = plan.epoch;
                        // Invariant: either the initial full plan or one
                        // of the published 3-worker plans — never a mix.
                        assert!(matches!(plan.alive.len(), 3 | 4));
                    }
                });
            }
            publisher.join().unwrap();
        });
        assert_eq!(plane.epoch(), 201);
    }

    #[test]
    fn route_owner_prefers_healthy_successors() {
        let (partition, mut alive) = plan_parts();
        let health = HealthView::new();
        let owner = partition.owner_of(Point::new(800.0, 800.0));
        // Healthy owner routes to itself.
        assert_eq!(
            route_owner(owner, &partition, &alive, &health).unwrap(),
            owner
        );
        // Dead owner diverts to an alive successor.
        alive.remove(&owner);
        let diverted = route_owner(owner, &partition, &alive, &health).unwrap();
        assert_ne!(diverted, owner);
        assert!(alive.contains(&diverted));
        // No quorum at all.
        let nobody: HashSet<NodeId> = HashSet::new();
        assert!(matches!(
            route_owner(owner, &partition, &nobody, &health),
            Err(StcamError::NoQuorum)
        ));
    }
}
