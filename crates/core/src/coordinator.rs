//! The coordinator: routing, membership, failover, and thin wrappers
//! over the [`exec`](crate::exec) scatter/gather layer.
//!
//! Every distributed operation is a [`DistributedOp`] value handed to the
//! coordinator's [`Executor`]; this module contributes only what is not
//! generic — ingest routing, the two-phase kNN composition, partition-map
//! surgery during rebalance/failover, and continuous-query bookkeeping.

use std::collections::{HashMap, HashSet};
use std::time::Duration as StdDuration;

use stcam_camnet::Observation;
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, CellId, GridSpec, Point, TimeInterval, Timestamp};
use stcam_net::{Endpoint, NodeId};

use crate::continuous::{ContinuousQueryId, Notification, Predicate};
use crate::error::StcamError;
use crate::exec::{
    AdoptOp, Completeness, Degraded, EvictOp, Executor, ExtractRegionOp, FlushOp, HeatmapOp,
    KnnBroadcastOp, KnnPhase1Op, KnnPhase2Op, OpPolicy, OpStats, ProbeOp, PromoteOp, QueryMode,
    RangeFilteredOp, RangeOp, RegisterContinuousOp, StatsOp, TopCellsOp, UnregisterContinuousOp,
};
use crate::partition::PartitionMap;
use crate::protocol::{GridSpecMsg, Request, WorkerStatsMsg};

/// Aggregated statistics across the cluster.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-worker statistics (alive workers only).
    pub workers: Vec<(NodeId, WorkerStatsMsg)>,
    /// Per-operation executor telemetry, sorted by operation name.
    pub ops: Vec<(&'static str, OpStats)>,
}

impl ClusterStats {
    /// Total observations held in primary shards.
    pub fn total_primary(&self) -> u64 {
        self.workers
            .iter()
            .map(|(_, s)| s.primary_observations)
            .sum()
    }

    /// Max ÷ mean of per-worker primary observation counts (1.0 = perfect
    /// balance). Returns 1.0 for an empty cluster.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_primary();
        if total == 0 || self.workers.is_empty() {
            return 1.0;
        }
        let max = self
            .workers
            .iter()
            .map(|(_, s)| s.primary_observations)
            .max()
            .unwrap_or(0);
        max as f64 / (total as f64 / self.workers.len() as f64)
    }

    /// Executor telemetry of one operation (zeros when never invoked).
    pub fn op(&self, name: &str) -> OpStats {
        self.ops
            .iter()
            .find(|(op, _)| *op == name)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }
}

/// Outcome of an online rebalance (see [`Coordinator::rebalance`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceReport {
    /// Macro-cells whose owner changed.
    pub cells_moved: usize,
    /// Observations migrated between workers.
    pub observations_moved: usize,
    /// Imbalance factor under the old map (max/mean of measured load).
    pub imbalance_before: f64,
    /// Imbalance factor of the same load under the new map.
    pub imbalance_after: f64,
}

/// The cluster's control plane and query router.
///
/// The coordinator is driven synchronously by the client thread: ingest
/// routing, query scatter/gather and failure recovery are all plain method
/// calls. Fan-out, retry, and telemetry live in the [`Executor`].
#[derive(Debug)]
pub struct Coordinator {
    exec: Executor,
    partition: PartitionMap,
    replication: usize,
    alive: HashSet<NodeId>,
    next_query_id: u64,
    /// Standing queries, kept for re-registration on failover.
    registrations: HashMap<ContinuousQueryId, Predicate>,
}

impl Coordinator {
    /// Creates a coordinator over an already-partitioned cluster.
    pub fn new(
        endpoint: Endpoint,
        partition: PartitionMap,
        replication: usize,
        rpc_timeout: StdDuration,
    ) -> Self {
        let alive = partition.workers().iter().copied().collect();
        let exec = Executor::new(endpoint, OpPolicy::new(rpc_timeout));
        exec.set_replication(replication);
        // Probes are single-attempt: a timeout *is* the liveness signal.
        exec.set_policy(
            "probe",
            OpPolicy::no_retry(rpc_timeout.min(StdDuration::from_millis(250))),
        );
        Coordinator {
            exec,
            partition,
            replication,
            alive,
            next_query_id: 1,
            registrations: HashMap::new(),
        }
    }

    /// The current partition map.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// Replication factor (replica count per shard, excluding the
    /// primary).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Overrides the liveness-probe timeout used by
    /// [`check_and_recover`](Self::check_and_recover) (default: the lesser
    /// of the RPC timeout and 250 ms). Shorter probes detect failures
    /// faster at the cost of more false positives under load.
    pub fn set_probe_timeout(&mut self, timeout: StdDuration) {
        self.exec.set_policy("probe", OpPolicy::no_retry(timeout));
    }

    /// Installs a timeout/retry policy override for the named operation.
    pub fn set_op_policy(&self, op: &'static str, policy: OpPolicy) {
        self.exec.set_policy(op, policy);
    }

    /// Per-operation executor telemetry, sorted by operation name.
    pub fn op_stats(&self) -> Vec<(&'static str, OpStats)> {
        self.exec.op_stats()
    }

    /// The workers currently believed alive.
    pub fn alive_workers(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.alive.iter().copied().collect();
        v.sort();
        v
    }

    /// Current per-node suspicion (consecutive failed RPCs since the
    /// last success), for every node with recorded history.
    pub fn suspicions(&self) -> Vec<(NodeId, u32)> {
        self.exec.health().snapshot()
    }

    // ------------------------------------------------------------------
    // Ingest path
    // ------------------------------------------------------------------

    /// Routes a batch of observations to their owning workers
    /// (fire-and-forget; pair with [`flush`](Self::flush) for a barrier).
    /// Returns the number of observations routed.
    ///
    /// # Errors
    ///
    /// Fails only on transport-level problems; observations routed to a
    /// worker that died mid-flight are counted as routed (their fate is
    /// governed by the replication factor).
    pub fn ingest(&mut self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        let n = batch.len();
        let mut groups: HashMap<NodeId, Vec<Observation>> = HashMap::new();
        for obs in batch {
            let owner = self.route(obs.position)?;
            groups.entry(owner).or_default().push(obs);
        }
        for (owner, group) in groups {
            self.exec
                .endpoint()
                .send(owner, encode_to_vec(&Request::Ingest(group)))?;
        }
        Ok(n)
    }

    /// The worker that owns `position`, diverted along the ring when the
    /// owner is marked dead — or merely *suspected* dead by the
    /// [`HealthView`](crate::HealthView), so a crashed node stops
    /// receiving traffic after its first failed RPC instead of after the
    /// next recovery tick.
    fn route(&self, position: Point) -> Result<NodeId, StcamError> {
        let owner = self.partition.owner_of(position);
        let health = self.exec.health();
        if self.alive.contains(&owner) && !health.is_suspect(owner) {
            return Ok(owner);
        }
        let successor = |require_healthy: bool| {
            self.partition
                .successors(owner, self.partition.workers().len() - 1)
                .into_iter()
                .find(|&w| self.alive.contains(&w) && (!require_healthy || !health.is_suspect(w)))
        };
        if let Some(w) = successor(true) {
            return Ok(w);
        }
        // Everyone is suspect: a suspect-but-alive owner still beats
        // nothing (suspicion may be a false positive under load).
        if self.alive.contains(&owner) {
            return Ok(owner);
        }
        successor(false).ok_or(StcamError::NoQuorum)
    }

    /// Barrier: confirms every alive worker has drained all previously
    /// sent ingest traffic (per-link FIFO + a Ping round trip).
    ///
    /// # Errors
    ///
    /// Fails when a worker believed alive does not answer in time.
    pub fn flush(&self) -> Result<(), StcamError> {
        self.exec.execute(FlushOp, &self.partition, &self.alive)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------
    //
    // Every read runs on the executor's degraded path — per-shard replica
    // failover, then a merge over whatever survived. `QueryMode` decides
    // what an incomplete answer becomes: `Strict` converts it into
    // `StcamError::PartialFailure`, `BestEffort` hands it to the caller
    // with its `Completeness` account. The plain (mode-less) methods are
    // strict, preserving the historical all-or-nothing signature — but
    // they now *succeed* through replica failover where they previously
    // errored on the first dead shard.

    /// Applies the query mode to a degraded result: strict callers get
    /// [`StcamError::PartialFailure`] unless every shard answered.
    fn finish<T>(mode: QueryMode, d: Degraded<T>) -> Result<Degraded<T>, StcamError> {
        match mode {
            QueryMode::Strict if !d.completeness.is_full() => Err(StcamError::PartialFailure {
                missing: d.completeness.missing,
            }),
            _ => Ok(d),
        }
    }

    /// An already-complete account for queries that contact no shard
    /// (e.g. `k = 0` kNN).
    fn empty_completeness() -> Completeness {
        Completeness {
            subset: true,
            ..Completeness::default()
        }
    }

    /// All observations in `region` × `window`, merged across shards and
    /// sorted by id.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] when a shard answered from neither
    /// its primary nor a replica.
    pub fn range_query_mode(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        let d =
            self.exec
                .execute_degraded(RangeOp { region, window }, &self.partition, &self.alive);
        Self::finish(mode, d)
    }

    /// Strict [`range_query_mode`](Self::range_query_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn range_query(
        &self,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Vec<Observation>, StcamError> {
        self.range_query_mode(QueryMode::Strict, region, window)
            .map(|d| d.value)
    }

    /// The `k` observations nearest to `at` within `window`, via two-phase
    /// pruned search — two composed ops: the owner of `at`'s cell answers
    /// first ([`KnnPhase1Op`]), its k-th distance bounds the disk that
    /// phase two scatters to ([`KnnPhase2Op`]). The completeness accounts
    /// of both phases are folded together; a degraded kNN is *not* a
    /// subset of the true answer (`subset = false`), since a lost shard
    /// can promote farther neighbours into the top-k.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards; [`StcamError::NoQuorum`]
    /// when no worker can anchor phase one.
    pub fn knn_query_mode(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        if k == 0 {
            return Ok(Degraded {
                value: Vec::new(),
                completeness: Self::empty_completeness(),
            });
        }
        let owner = self.route(at)?;
        let phase1 = self.exec.execute_degraded(
            KnnPhase1Op {
                owner,
                at,
                window,
                k,
            },
            &self.partition,
            &self.alive,
        );
        let mut completeness = phase1.completeness;
        let seed = phase1.value;
        let bound = if seed.len() >= k {
            seed.last().map(|o| at.distance(o.position))
        } else {
            None
        };
        let phase2 = self.exec.execute_degraded(
            KnnPhase2Op {
                at,
                window,
                k,
                bound,
                exclude: owner,
                seed,
            },
            &self.partition,
            &self.alive,
        );
        completeness.absorb(phase2.completeness);
        Self::finish(
            mode,
            Degraded {
                value: phase2.value,
                completeness,
            },
        )
    }

    /// Strict [`knn_query_mode`](Self::knn_query_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn knn_query(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        self.knn_query_mode(QueryMode::Strict, at, window, k)
            .map(|d| d.value)
    }

    /// The naive kNN evaluation — broadcast to every worker with no
    /// pruning bound. Baseline for the kNN experiment.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn knn_broadcast_mode(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        if k == 0 {
            return Ok(Degraded {
                value: Vec::new(),
                completeness: Self::empty_completeness(),
            });
        }
        let d = self.exec.execute_degraded(
            KnnBroadcastOp { at, window, k },
            &self.partition,
            &self.alive,
        );
        Self::finish(mode, d)
    }

    /// Strict [`knn_broadcast_mode`](Self::knn_broadcast_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn knn_broadcast(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        self.knn_broadcast_mode(QueryMode::Strict, at, window, k)
            .map(|d| d.value)
    }

    /// Per-bucket observation counts with worker-side partial aggregation:
    /// each worker reduces its shard to a counts vector, the merge sums
    /// vectors.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn heatmap_mode(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<u64>>, StcamError> {
        let d = self.exec.execute_degraded(
            HeatmapOp {
                buckets: GridSpecMsg::from(*buckets),
                window,
            },
            &self.partition,
            &self.alive,
        );
        Self::finish(mode, d)
    }

    /// Strict [`heatmap_mode`](Self::heatmap_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn heatmap(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        self.heatmap_mode(QueryMode::Strict, buckets, window)
            .map(|d| d.value)
    }

    /// The `k` densest buckets of `buckets` × `window`, ranked by count
    /// (ties by cell index). Workers ship only their occupied buckets, so
    /// sparse grids cost a fraction of a full [`heatmap`](Self::heatmap).
    /// A degraded ranking is not a subset of the true one (`subset =
    /// false`): a lost shard's counts can change which cells rank.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn top_cells_mode(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<(CellId, u64)>>, StcamError> {
        let d = self.exec.execute_degraded(
            TopCellsOp {
                buckets: GridSpecMsg::from(*buckets),
                window,
                k,
            },
            &self.partition,
            &self.alive,
        );
        Self::finish(mode, d)
    }

    /// Strict [`top_cells_mode`](Self::top_cells_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn top_cells(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<(CellId, u64)>, StcamError> {
        self.top_cells_mode(QueryMode::Strict, buckets, window, k)
            .map(|d| d.value)
    }

    /// The ship-all aggregate baseline: fetch every matching observation
    /// and bucket at the coordinator. Same result, far more bytes moved.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn heatmap_ship_all(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        let hits = self.range_query(buckets.extent(), window)?;
        let mut total = vec![0u64; buckets.cell_count() as usize];
        for obs in hits {
            if let Some(cell) = buckets.cell_of(obs.position) {
                total[cell.row as usize * buckets.cols() as usize + cell.col as usize] += 1;
            }
        }
        Ok(total)
    }

    /// Ages out observations older than `cutoff` everywhere.
    ///
    /// # Errors
    ///
    /// Propagates worker failures.
    pub fn evict_before(&self, cutoff: Timestamp) -> Result<(), StcamError> {
        self.exec
            .execute(EvictOp { cutoff }, &self.partition, &self.alive)
    }

    /// As [`range_query_mode`](Self::range_query_mode) with an
    /// entity-class filter pushed down to the workers ("trucks inside A").
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn range_query_filtered_mode(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        let d = self.exec.execute_degraded(
            RangeFilteredOp {
                region,
                window,
                class: class.as_u8(),
            },
            &self.partition,
            &self.alive,
        );
        Self::finish(mode, d)
    }

    /// Strict [`range_query_filtered_mode`](Self::range_query_filtered_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn range_query_filtered(
        &self,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Vec<Observation>, StcamError> {
        self.range_query_filtered_mode(QueryMode::Strict, region, window, class)
            .map(|d| d.value)
    }

    // ------------------------------------------------------------------
    // Online rebalancing
    // ------------------------------------------------------------------

    /// Re-partitions the cluster by *measured* per-cell load and migrates
    /// the affected shards: each moved macro-cell's contents are extracted
    /// from the old owner and adopted by the new one. Queries issued after
    /// this call observe the full data set under the new map.
    ///
    /// Intended for rebalance epochs when traffic has drifted from the
    /// distribution the current map was built for (see the load-balance
    /// and rebalance experiments).
    ///
    /// # Errors
    ///
    /// Returns [`StcamError::Unsupported`] when replication is enabled
    /// (replica logs are keyed by primary and are not rewritten by this
    /// version of migration), and propagates worker failures.
    ///
    /// # Caveats
    ///
    /// External [`Ingestor`](crate::Ingestor) handles hold partition-map
    /// snapshots; recreate them after a rebalance or their traffic will
    /// land on (and be served from) the old owners.
    pub fn rebalance(&mut self) -> Result<RebalanceReport, StcamError> {
        if self.replication > 0 {
            return Err(StcamError::Unsupported(
                "online rebalance requires replication factor 0",
            ));
        }
        // 1. Measure the load profile: all-time per-macro-cell counts.
        let grid = *self.partition.grid();
        let loads = self.heatmap(&grid, TimeInterval::ALL)?;
        let imbalance_before = self.partition.imbalance(&loads);
        // 2. Build the target map over the alive ring.
        let alive_ring: Vec<NodeId> = self
            .partition
            .workers()
            .iter()
            .copied()
            .filter(|w| self.alive.contains(w))
            .collect();
        if alive_ring.is_empty() {
            return Err(StcamError::NoQuorum);
        }
        let target = PartitionMap::load_aware(grid.extent(), grid.cell_size(), alive_ring, &loads);
        // 3. Diff and migrate, batched per (old, new) owner pair.
        let mut moves: HashMap<(NodeId, NodeId), Vec<CellId>> = HashMap::new();
        for cell in grid.all_cells() {
            let old = self.partition.owner_of_cell(cell);
            let new = target.owner_of_cell(cell);
            if old != new && self.alive.contains(&old) {
                moves.entry((old, new)).or_default().push(cell);
            }
        }
        let mut cells_moved = 0usize;
        let mut observations_moved = 0usize;
        for ((old, new), cells) in moves {
            let mut batch = Vec::new();
            for cell in cells {
                let region = self.partition.cell_routing_region(cell);
                let extracted = self.exec.execute(
                    ExtractRegionOp {
                        target: old,
                        region,
                    },
                    &self.partition,
                    &self.alive,
                )?;
                batch.extend(extracted);
                cells_moved += 1;
            }
            observations_moved += batch.len();
            if !batch.is_empty() {
                self.exec
                    .execute(AdoptOp { target: new, batch }, &self.partition, &self.alive)?;
            }
        }
        // 4. Swap in the new map and make standing queries present at
        // their (possibly new) overlapping workers.
        self.partition = target;
        let notify = self.exec.endpoint().id();
        let registrations: Vec<(ContinuousQueryId, Predicate)> =
            self.registrations.iter().map(|(&id, &p)| (id, p)).collect();
        for (id, predicate) in registrations {
            self.exec.execute(
                RegisterContinuousOp {
                    id,
                    predicate,
                    notify,
                    only: None,
                },
                &self.partition,
                &self.alive,
            )?;
        }
        let imbalance_after = self.partition.imbalance(&loads);
        Ok(RebalanceReport {
            cells_moved,
            observations_moved,
            imbalance_before,
            imbalance_after,
        })
    }

    // ------------------------------------------------------------------
    // Continuous queries
    // ------------------------------------------------------------------

    /// Registers a standing query; matches will arrive via
    /// [`poll_notifications`](Self::poll_notifications).
    ///
    /// # Errors
    ///
    /// Fails when a shard worker cannot be reached.
    pub fn register_continuous(
        &mut self,
        predicate: Predicate,
    ) -> Result<ContinuousQueryId, StcamError> {
        let id = ContinuousQueryId(self.next_query_id);
        self.next_query_id += 1;
        let notify = self.exec.endpoint().id();
        self.exec.execute(
            RegisterContinuousOp {
                id,
                predicate,
                notify,
                only: None,
            },
            &self.partition,
            &self.alive,
        )?;
        self.registrations.insert(id, predicate);
        Ok(id)
    }

    /// Removes a standing query everywhere.
    ///
    /// # Errors
    ///
    /// Fails when a shard worker cannot be reached.
    pub fn unregister_continuous(&mut self, id: ContinuousQueryId) -> Result<(), StcamError> {
        self.registrations.remove(&id);
        self.exec
            .execute(UnregisterContinuousOp { id }, &self.partition, &self.alive)
    }

    /// Drains match notifications that have arrived since the last poll,
    /// waiting up to `timeout` for the first one.
    pub fn poll_notifications(&self, timeout: StdDuration) -> Vec<Notification> {
        let endpoint = self.exec.endpoint();
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let Some(envelope) = endpoint.recv_timeout(remaining) else {
                break;
            };
            if let Ok(notification) = decode_from_slice::<Notification>(&envelope.payload) {
                out.push(notification);
            }
            if !out.is_empty() {
                // Drain whatever else is already queued, then return.
                while let Some(envelope) = endpoint.try_recv() {
                    if let Ok(n) = decode_from_slice::<Notification>(&envelope.payload) {
                        out.push(n);
                    }
                }
                break;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Membership and recovery
    // ------------------------------------------------------------------

    /// Probes every worker believed alive; for each failure, fails its
    /// shard over to the first alive ring successor (which holds the
    /// replica when the replication factor covers it), repairs the
    /// partition map, and re-registers standing queries there. Returns the
    /// failed workers.
    pub fn check_and_recover(&mut self) -> Vec<NodeId> {
        let failed: Vec<NodeId> = self
            .exec
            .run(&ProbeOp, &self.partition, &self.alive)
            .into_iter()
            .filter_map(|(worker, result)| result.is_err().then_some(worker))
            .collect();
        for &worker in &failed {
            self.alive.remove(&worker);
        }
        for &worker in &failed {
            self.fail_over(worker);
        }
        failed
    }

    fn fail_over(&mut self, failed: NodeId) {
        let chain = self
            .partition
            .successors(failed, self.partition.workers().len() - 1);
        let Some(successor) = chain.into_iter().find(|w| self.alive.contains(w)) else {
            return; // no quorum: nothing to repair onto
        };
        self.partition.reassign(failed, successor);
        if self.replication > 0 {
            // Absorb the replica log; data loss is bounded by in-flight
            // replication traffic at crash time.
            let _ = self.exec.execute(
                PromoteOp {
                    target: successor,
                    failed,
                },
                &self.partition,
                &self.alive,
            );
        }
        // Standing queries whose region now overlaps the successor's
        // enlarged shard must be present there.
        let notify = self.exec.endpoint().id();
        let registrations: Vec<(ContinuousQueryId, Predicate)> =
            self.registrations.iter().map(|(&id, &p)| (id, p)).collect();
        for (id, predicate) in registrations {
            let _ = self.exec.execute(
                RegisterContinuousOp {
                    id,
                    predicate,
                    notify,
                    only: Some(successor),
                },
                &self.partition,
                &self.alive,
            );
        }
    }

    /// Collects statistics from every alive worker, plus the executor's
    /// per-operation telemetry.
    ///
    /// # Errors
    ///
    /// Fails when a worker believed alive does not answer.
    pub fn stats(&self) -> Result<ClusterStats, StcamError> {
        let workers = self.exec.execute(StatsOp, &self.partition, &self.alive)?;
        Ok(ClusterStats {
            workers,
            ops: self.exec.op_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(counts: &[u64]) -> ClusterStats {
        ClusterStats {
            workers: counts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    (
                        NodeId(i as u32 + 1),
                        WorkerStatsMsg {
                            primary_observations: c,
                            ..Default::default()
                        },
                    )
                })
                .collect(),
            ops: Vec::new(),
        }
    }

    #[test]
    fn cluster_stats_totals_and_imbalance() {
        let s = stats_with(&[100, 100, 100, 100]);
        assert_eq!(s.total_primary(), 400);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        let skewed = stats_with(&[400, 0, 0, 0]);
        assert!((skewed.imbalance() - 4.0).abs() < 1e-12);
        // Degenerate cases fall back to 1.0.
        assert_eq!(stats_with(&[]).imbalance(), 1.0);
        assert_eq!(stats_with(&[0, 0]).imbalance(), 1.0);
    }

    #[test]
    fn cluster_stats_op_lookup() {
        let mut s = stats_with(&[1]);
        s.ops.push((
            "range",
            OpStats {
                invocations: 3,
                ..Default::default()
            },
        ));
        assert_eq!(s.op("range").invocations, 3);
        assert_eq!(s.op("heatmap"), OpStats::default());
    }

    #[test]
    fn rebalance_report_is_plain_data() {
        let r = RebalanceReport {
            cells_moved: 3,
            observations_moved: 42,
            imbalance_before: 2.5,
            imbalance_after: 1.1,
        };
        let s = format!("{r:?}");
        assert!(s.contains("cells_moved: 3"));
        assert!(r.imbalance_after < r.imbalance_before);
    }
}
