//! The coordinator: routing, scatter/gather, membership, failover.

use std::collections::{HashMap, HashSet};
use std::time::Duration as StdDuration;

use stcam_camnet::Observation;
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, GridSpec, Point, TimeInterval, Timestamp};
use stcam_net::{Endpoint, NodeId};

use crate::continuous::{ContinuousQueryId, Notification, Predicate};
use crate::error::StcamError;
use crate::partition::PartitionMap;
use crate::protocol::{GridSpecMsg, Request, Response, WorkerStatsMsg};

/// Aggregated statistics across the cluster.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-worker statistics (alive workers only).
    pub workers: Vec<(NodeId, WorkerStatsMsg)>,
}

impl ClusterStats {
    /// Total observations held in primary shards.
    pub fn total_primary(&self) -> u64 {
        self.workers.iter().map(|(_, s)| s.primary_observations).sum()
    }

    /// Max ÷ mean of per-worker primary observation counts (1.0 = perfect
    /// balance). Returns 1.0 for an empty cluster.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_primary();
        if total == 0 || self.workers.is_empty() {
            return 1.0;
        }
        let max = self
            .workers
            .iter()
            .map(|(_, s)| s.primary_observations)
            .max()
            .unwrap_or(0);
        max as f64 / (total as f64 / self.workers.len() as f64)
    }
}

/// Outcome of an online rebalance (see [`Coordinator::rebalance`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceReport {
    /// Macro-cells whose owner changed.
    pub cells_moved: usize,
    /// Observations migrated between workers.
    pub observations_moved: usize,
    /// Imbalance factor under the old map (max/mean of measured load).
    pub imbalance_before: f64,
    /// Imbalance factor of the same load under the new map.
    pub imbalance_after: f64,
}

/// The cluster's control plane and query router.
///
/// The coordinator is driven synchronously by the client thread: ingest
/// routing, query scatter/gather and failure recovery are all plain method
/// calls. Query fan-out happens on scoped threads so sub-queries execute
/// in parallel across workers.
#[derive(Debug)]
pub struct Coordinator {
    endpoint: Endpoint,
    partition: PartitionMap,
    replication: usize,
    alive: HashSet<NodeId>,
    rpc_timeout: StdDuration,
    probe_timeout: StdDuration,
    next_query_id: u64,
    /// Standing queries, kept for re-registration on failover.
    registrations: HashMap<ContinuousQueryId, Predicate>,
}

impl Coordinator {
    /// Creates a coordinator over an already-partitioned cluster.
    pub fn new(
        endpoint: Endpoint,
        partition: PartitionMap,
        replication: usize,
        rpc_timeout: StdDuration,
    ) -> Self {
        let alive = partition.workers().iter().copied().collect();
        Coordinator {
            endpoint,
            partition,
            replication,
            alive,
            rpc_timeout,
            probe_timeout: rpc_timeout.min(StdDuration::from_millis(250)),
            next_query_id: 1,
            registrations: HashMap::new(),
        }
    }

    /// The current partition map.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// Replication factor (replica count per shard, excluding the
    /// primary).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Overrides the liveness-probe timeout used by
    /// [`check_and_recover`](Self::check_and_recover) (default: the lesser
    /// of the RPC timeout and 250 ms). Shorter probes detect failures
    /// faster at the cost of more false positives under load.
    pub fn set_probe_timeout(&mut self, timeout: StdDuration) {
        self.probe_timeout = timeout;
    }

    /// The workers currently believed alive.
    pub fn alive_workers(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.alive.iter().copied().collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // Ingest path
    // ------------------------------------------------------------------

    /// Routes a batch of observations to their owning workers
    /// (fire-and-forget; pair with [`flush`](Self::flush) for a barrier).
    /// Returns the number of observations routed.
    ///
    /// # Errors
    ///
    /// Fails only on transport-level problems; observations routed to a
    /// worker that died mid-flight are counted as routed (their fate is
    /// governed by the replication factor).
    pub fn ingest(&mut self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        let n = batch.len();
        let mut groups: HashMap<NodeId, Vec<Observation>> = HashMap::new();
        for obs in batch {
            let owner = self.route(obs.position)?;
            groups.entry(owner).or_default().push(obs);
        }
        for (owner, group) in groups {
            self.endpoint
                .send(owner, encode_to_vec(&Request::Ingest(group)))?;
        }
        Ok(n)
    }

    /// The worker that owns `position`, falling back along the ring when
    /// the owner is marked dead.
    fn route(&self, position: Point) -> Result<NodeId, StcamError> {
        let owner = self.partition.owner_of(position);
        if self.alive.contains(&owner) {
            return Ok(owner);
        }
        // The partition map should have been repaired by recovery; as a
        // late-race fallback, route to the first alive successor.
        self.partition
            .successors(owner, self.partition.workers().len() - 1)
            .into_iter()
            .find(|w| self.alive.contains(w))
            .ok_or(StcamError::NoQuorum)
    }

    /// Barrier: confirms every alive worker has drained all previously
    /// sent ingest traffic (per-link FIFO + a Ping round trip).
    ///
    /// # Errors
    ///
    /// Fails when a worker believed alive does not answer in time.
    pub fn flush(&self) -> Result<(), StcamError> {
        let targets = self.alive_workers();
        for (_, result) in self.scatter(&targets, |_| Request::Ping) {
            expect_ack(result?)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// All observations in `region` × `window`, merged across shards and
    /// sorted by id.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures (e.g. a worker crashing mid-query).
    pub fn range_query(
        &self,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Vec<Observation>, StcamError> {
        let targets: Vec<NodeId> = self
            .partition
            .workers_for_region(region)
            .into_iter()
            .filter(|w| self.alive.contains(w))
            .collect();
        let mut merged = Vec::new();
        for (_, result) in self.scatter(&targets, |_| Request::Range { region, window }) {
            merged.extend(expect_observations(result?)?);
        }
        merged.sort_by_key(|o| o.id);
        Ok(merged)
    }

    /// The `k` observations nearest to `at` within `window`, via two-phase
    /// pruned search: the owner of `at`'s cell answers first, its k-th
    /// distance bounds the disk that phase two scatters to.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn knn_query(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let first = self.route(at)?;
        let phase1 = expect_observations(self.call(
            first,
            Request::Knn { at, window, k: k as u32, max_distance: None },
        )?)?;
        let bound = if phase1.len() >= k {
            phase1.last().map(|o| at.distance(o.position))
        } else {
            None
        };
        let targets: Vec<NodeId> = match bound {
            Some(radius) => self
                .partition
                .workers_for_region(BBox::around(at, radius))
                .into_iter()
                .filter(|w| *w != first && self.alive.contains(w))
                .collect(),
            None => self
                .alive_workers()
                .into_iter()
                .filter(|w| *w != first)
                .collect(),
        };
        let mut merged = phase1;
        for (_, result) in self.scatter(&targets, |_| Request::Knn {
            at,
            window,
            k: k as u32,
            max_distance: bound,
        }) {
            merged.extend(expect_observations(result?)?);
        }
        sort_knn(&mut merged, at);
        merged.truncate(k);
        Ok(merged)
    }

    /// The naive kNN evaluation — broadcast to every worker with no
    /// pruning bound. Baseline for the kNN experiment.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn knn_broadcast(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        let targets = self.alive_workers();
        let mut merged = Vec::new();
        for (_, result) in self.scatter(&targets, |_| Request::Knn {
            at,
            window,
            k: k as u32,
            max_distance: None,
        }) {
            merged.extend(expect_observations(result?)?);
        }
        sort_knn(&mut merged, at);
        merged.truncate(k);
        Ok(merged)
    }

    /// Per-bucket observation counts with worker-side partial aggregation:
    /// each worker reduces its shard to a counts vector, the coordinator
    /// sums vectors.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn heatmap(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        let targets: Vec<NodeId> = self
            .partition
            .workers_for_region(buckets.extent())
            .into_iter()
            .filter(|w| self.alive.contains(w))
            .collect();
        let mut total = vec![0u64; buckets.cell_count() as usize];
        let msg = GridSpecMsg::from(*buckets);
        for (_, result) in self.scatter(&targets, |_| Request::Heatmap { buckets: msg, window }) {
            let counts = expect_counts(result?)?;
            if counts.len() != total.len() {
                return Err(StcamError::Remote("bucket count mismatch".into()));
            }
            for (t, c) in total.iter_mut().zip(counts) {
                *t += c;
            }
        }
        Ok(total)
    }

    /// The ship-all aggregate baseline: fetch every matching observation
    /// and bucket at the coordinator. Same result, far more bytes moved.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn heatmap_ship_all(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        let hits = self.range_query(buckets.extent(), window)?;
        let mut total = vec![0u64; buckets.cell_count() as usize];
        for obs in hits {
            if let Some(cell) = buckets.cell_of(obs.position) {
                total[cell.row as usize * buckets.cols() as usize + cell.col as usize] += 1;
            }
        }
        Ok(total)
    }

    /// Ages out observations older than `cutoff` everywhere.
    ///
    /// # Errors
    ///
    /// Propagates worker failures.
    pub fn evict_before(&self, cutoff: Timestamp) -> Result<(), StcamError> {
        let targets = self.alive_workers();
        for (_, result) in self.scatter(&targets, |_| Request::EvictBefore(cutoff)) {
            expect_ack(result?)?;
        }
        Ok(())
    }

    /// As [`range_query`](Self::range_query) with an entity-class filter
    /// pushed down to the workers ("trucks inside A").
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn range_query_filtered(
        &self,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Vec<Observation>, StcamError> {
        let targets: Vec<NodeId> = self
            .partition
            .workers_for_region(region)
            .into_iter()
            .filter(|w| self.alive.contains(w))
            .collect();
        let mut merged = Vec::new();
        for (_, result) in self.scatter(&targets, |_| Request::RangeFiltered {
            region,
            window,
            class: class.as_u8(),
        }) {
            merged.extend(expect_observations(result?)?);
        }
        merged.sort_by_key(|o| o.id);
        Ok(merged)
    }

    // ------------------------------------------------------------------
    // Online rebalancing
    // ------------------------------------------------------------------

    /// Re-partitions the cluster by *measured* per-cell load and migrates
    /// the affected shards: each moved macro-cell's contents are extracted
    /// from the old owner and adopted by the new one. Queries issued after
    /// this call observe the full data set under the new map.
    ///
    /// Intended for rebalance epochs when traffic has drifted from the
    /// distribution the current map was built for (see the load-balance
    /// and rebalance experiments).
    ///
    /// # Errors
    ///
    /// Returns [`StcamError::Unsupported`] when replication is enabled
    /// (replica logs are keyed by primary and are not rewritten by this
    /// version of migration), and propagates worker failures.
    ///
    /// # Caveats
    ///
    /// External [`Ingestor`](crate::Ingestor) handles hold partition-map
    /// snapshots; recreate them after a rebalance or their traffic will
    /// land on (and be served from) the old owners.
    pub fn rebalance(&mut self) -> Result<RebalanceReport, StcamError> {
        if self.replication > 0 {
            return Err(StcamError::Unsupported(
                "online rebalance requires replication factor 0",
            ));
        }
        // 1. Measure the load profile: all-time per-macro-cell counts.
        let grid = *self.partition.grid();
        let loads = self.heatmap(&grid, TimeInterval::ALL)?;
        let imbalance_before = self.partition.imbalance(&loads);
        // 2. Build the target map over the alive ring.
        let alive_ring: Vec<NodeId> = self
            .partition
            .workers()
            .iter()
            .copied()
            .filter(|w| self.alive.contains(w))
            .collect();
        if alive_ring.is_empty() {
            return Err(StcamError::NoQuorum);
        }
        let target = PartitionMap::load_aware(
            grid.extent(),
            grid.cell_size(),
            alive_ring,
            &loads,
        );
        // 3. Diff and migrate, batched per (old, new) owner pair.
        let mut moves: HashMap<(NodeId, NodeId), Vec<stcam_geo::CellId>> = HashMap::new();
        for cell in grid.all_cells() {
            let old = self.partition.owner_of_cell(cell);
            let new = target.owner_of_cell(cell);
            if old != new && self.alive.contains(&old) {
                moves.entry((old, new)).or_default().push(cell);
            }
        }
        let mut cells_moved = 0usize;
        let mut observations_moved = 0usize;
        for ((old, new), cells) in moves {
            let mut batch = Vec::new();
            for cell in cells {
                let region = self.partition.cell_routing_region(cell);
                let extracted =
                    expect_observations(self.call(old, Request::ExtractRegion { region })?)?;
                batch.extend(extracted);
                cells_moved += 1;
            }
            observations_moved += batch.len();
            if !batch.is_empty() {
                expect_ack(self.call(new, Request::Adopt(batch))?)?;
            }
        }
        // 4. Swap in the new map and make standing queries present at
        // their (possibly new) overlapping workers.
        self.partition = target;
        let notify = self.endpoint.id();
        let registrations: Vec<(ContinuousQueryId, Predicate)> =
            self.registrations.iter().map(|(&id, &p)| (id, p)).collect();
        for (id, predicate) in registrations {
            let targets: Vec<NodeId> = self
                .partition
                .workers_for_region(predicate.region)
                .into_iter()
                .filter(|w| self.alive.contains(w))
                .collect();
            for (_, result) in self.scatter(&targets, |_| Request::RegisterContinuous {
                id,
                predicate,
                notify,
            }) {
                expect_ack(result?)?;
            }
        }
        let imbalance_after = self.partition.imbalance(&loads);
        Ok(RebalanceReport {
            cells_moved,
            observations_moved,
            imbalance_before,
            imbalance_after,
        })
    }

    // ------------------------------------------------------------------
    // Continuous queries
    // ------------------------------------------------------------------

    /// Registers a standing query; matches will arrive via
    /// [`poll_notifications`](Self::poll_notifications).
    ///
    /// # Errors
    ///
    /// Fails when a shard worker cannot be reached.
    pub fn register_continuous(
        &mut self,
        predicate: Predicate,
    ) -> Result<ContinuousQueryId, StcamError> {
        let id = ContinuousQueryId(self.next_query_id);
        self.next_query_id += 1;
        let notify = self.endpoint.id();
        let targets: Vec<NodeId> = self
            .partition
            .workers_for_region(predicate.region)
            .into_iter()
            .filter(|w| self.alive.contains(w))
            .collect();
        for (_, result) in self.scatter(&targets, |_| Request::RegisterContinuous {
            id,
            predicate,
            notify,
        }) {
            expect_ack(result?)?;
        }
        self.registrations.insert(id, predicate);
        Ok(id)
    }

    /// Removes a standing query everywhere.
    ///
    /// # Errors
    ///
    /// Fails when a shard worker cannot be reached.
    pub fn unregister_continuous(&mut self, id: ContinuousQueryId) -> Result<(), StcamError> {
        self.registrations.remove(&id);
        let targets = self.alive_workers();
        for (_, result) in self.scatter(&targets, |_| Request::UnregisterContinuous(id)) {
            expect_ack(result?)?;
        }
        Ok(())
    }

    /// Drains match notifications that have arrived since the last poll,
    /// waiting up to `timeout` for the first one.
    pub fn poll_notifications(&self, timeout: StdDuration) -> Vec<Notification> {
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let Some(envelope) = self.endpoint.recv_timeout(remaining) else {
                break;
            };
            if let Ok(notification) = decode_from_slice::<Notification>(&envelope.payload) {
                out.push(notification);
            }
            if !out.is_empty() {
                // Drain whatever else is already queued, then return.
                while let Some(envelope) = self.endpoint.try_recv() {
                    if let Ok(n) = decode_from_slice::<Notification>(&envelope.payload) {
                        out.push(n);
                    }
                }
                break;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Membership and recovery
    // ------------------------------------------------------------------

    /// Probes every worker believed alive; for each failure, fails its
    /// shard over to the first alive ring successor (which holds the
    /// replica when the replication factor covers it), repairs the
    /// partition map, and re-registers standing queries there. Returns the
    /// failed workers.
    pub fn check_and_recover(&mut self) -> Vec<NodeId> {
        let targets = self.alive_workers();
        let mut failed = Vec::new();
        for (worker, result) in self.scatter_timeout(&targets, |_| Request::Ping, self.probe_timeout) {
            if result.is_err() {
                failed.push(worker);
            }
        }
        for &worker in &failed {
            self.alive.remove(&worker);
        }
        for &worker in &failed {
            self.fail_over(worker);
        }
        failed
    }

    fn fail_over(&mut self, failed: NodeId) {
        let chain = self
            .partition
            .successors(failed, self.partition.workers().len() - 1);
        let Some(successor) = chain.into_iter().find(|w| self.alive.contains(w)) else {
            return; // no quorum: nothing to repair onto
        };
        self.partition.reassign(failed, successor);
        if self.replication > 0 {
            // Absorb the replica log; data loss is bounded by in-flight
            // replication traffic at crash time.
            let _ = self
                .call(successor, Request::Promote { failed })
                .and_then(expect_ack);
        }
        // Standing queries whose region now overlaps the successor's
        // enlarged shard must be present there.
        let notify = self.endpoint.id();
        let registrations: Vec<(ContinuousQueryId, Predicate)> = self
            .registrations
            .iter()
            .map(|(&id, &p)| (id, p))
            .collect();
        for (id, predicate) in registrations {
            if self
                .partition
                .workers_for_region(predicate.region)
                .contains(&successor)
            {
                let _ = self.call(successor, Request::RegisterContinuous { id, predicate, notify });
            }
        }
    }

    /// Collects statistics from every alive worker.
    ///
    /// # Errors
    ///
    /// Fails when a worker believed alive does not answer.
    pub fn stats(&self) -> Result<ClusterStats, StcamError> {
        let targets = self.alive_workers();
        let mut workers = Vec::new();
        for (worker, result) in self.scatter(&targets, |_| Request::Stats) {
            match result? {
                Response::Stats(s) => workers.push((worker, s)),
                Response::Error(msg) => return Err(StcamError::Remote(msg)),
                _ => return Err(StcamError::Remote("unexpected stats response".into())),
            }
        }
        workers.sort_by_key(|(w, _)| *w);
        Ok(ClusterStats { workers })
    }

    // ------------------------------------------------------------------
    // RPC plumbing
    // ------------------------------------------------------------------

    fn call(&self, to: NodeId, request: Request) -> Result<Response, StcamError> {
        let bytes = self.endpoint.call(to, encode_to_vec(&request), self.rpc_timeout)?;
        Ok(decode_from_slice::<Response>(&bytes)?)
    }

    /// Issues `request_for(worker)` to every target in parallel and
    /// collects `(worker, result)` pairs in target order.
    fn scatter<F>(
        &self,
        targets: &[NodeId],
        request_for: F,
    ) -> Vec<(NodeId, Result<Response, StcamError>)>
    where
        F: Fn(NodeId) -> Request + Sync,
    {
        self.scatter_timeout(targets, request_for, self.rpc_timeout)
    }

    /// As [`scatter`](Self::scatter) with an explicit per-call timeout.
    fn scatter_timeout<F>(
        &self,
        targets: &[NodeId],
        request_for: F,
        timeout: StdDuration,
    ) -> Vec<(NodeId, Result<Response, StcamError>)>
    where
        F: Fn(NodeId) -> Request + Sync,
    {
        if targets.is_empty() {
            return Vec::new();
        }
        if targets.len() == 1 {
            let w = targets[0];
            let result = self
                .endpoint
                .call(w, encode_to_vec(&request_for(w)), timeout)
                .map_err(StcamError::from)
                .and_then(|bytes| {
                    decode_from_slice::<Response>(&bytes).map_err(StcamError::from)
                });
            return vec![(w, result)];
        }
        let endpoint = &self.endpoint;
        std::thread::scope(|scope| {
            let handles: Vec<_> = targets
                .iter()
                .map(|&worker| {
                    let request = request_for(worker);
                    scope.spawn(move || {
                        let result = endpoint
                            .call(worker, encode_to_vec(&request), timeout)
                            .map_err(StcamError::from)
                            .and_then(|bytes| {
                                decode_from_slice::<Response>(&bytes).map_err(StcamError::from)
                            });
                        (worker, result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter thread panicked"))
                .collect()
        })
    }
}

fn sort_knn(observations: &mut [Observation], at: Point) {
    observations.sort_by(|a, b| {
        let da = at.distance_sq(a.position);
        let db = at.distance_sq(b.position);
        da.partial_cmp(&db)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
}

fn expect_observations(resp: Response) -> Result<Vec<Observation>, StcamError> {
    match resp {
        Response::Observations(obs) => Ok(obs),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!("expected observations, got {other:?}"))),
    }
}

fn expect_counts(resp: Response) -> Result<Vec<u64>, StcamError> {
    match resp {
        Response::Counts(counts) => Ok(counts),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!("expected counts, got {other:?}"))),
    }
}

fn expect_ack(resp: Response) -> Result<(), StcamError> {
    match resp {
        Response::Ack => Ok(()),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!("expected ack, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(counts: &[u64]) -> ClusterStats {
        ClusterStats {
            workers: counts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    (
                        NodeId(i as u32 + 1),
                        WorkerStatsMsg { primary_observations: c, ..Default::default() },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn cluster_stats_totals_and_imbalance() {
        let s = stats_with(&[100, 100, 100, 100]);
        assert_eq!(s.total_primary(), 400);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        let skewed = stats_with(&[400, 0, 0, 0]);
        assert!((skewed.imbalance() - 4.0).abs() < 1e-12);
        // Degenerate cases fall back to 1.0.
        assert_eq!(stats_with(&[]).imbalance(), 1.0);
        assert_eq!(stats_with(&[0, 0]).imbalance(), 1.0);
    }

    #[test]
    fn rebalance_report_is_plain_data() {
        let r = RebalanceReport {
            cells_moved: 3,
            observations_moved: 42,
            imbalance_before: 2.5,
            imbalance_after: 1.1,
        };
        let s = format!("{r:?}");
        assert!(s.contains("cells_moved: 3"));
        assert!(r.imbalance_after < r.imbalance_before);
    }

    #[test]
    fn expect_helpers_map_remote_errors() {
        assert!(matches!(
            expect_ack(Response::Error("boom".into())),
            Err(StcamError::Remote(_))
        ));
        assert!(matches!(
            expect_observations(Response::Ack),
            Err(StcamError::Remote(_))
        ));
        assert!(matches!(
            expect_counts(Response::Ack),
            Err(StcamError::Remote(_))
        ));
        assert!(expect_ack(Response::Ack).is_ok());
        assert_eq!(expect_counts(Response::Counts(vec![1, 2])).unwrap(), vec![1, 2]);
    }

    #[test]
    fn sort_knn_orders_by_distance_then_id() {
        use stcam_camnet::{CameraId, ObservationId, Signature};
        use stcam_geo::Timestamp;
        use stcam_world::{EntityClass, EntityId};
        let mk = |seq: u64, x: f64| Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::ZERO,
            position: Point::new(x, 0.0),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        };
        let mut v = vec![mk(2, 5.0), mk(0, 10.0), mk(1, 5.0)];
        sort_knn(&mut v, Point::new(0.0, 0.0));
        let seqs: Vec<u64> = v.iter().map(|o| o.id.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 0]);
    }
}
