//! The coordinator: the mutex-guarded **control plane** — ingest
//! routing, membership, failover, rebalance, and continuous-query
//! bookkeeping — plus thin delegating wrappers over the lock-free
//! [`QueryPlane`](crate::QueryPlane).
//!
//! Every distributed operation is a [`DistributedOp`] value handed to an
//! [`Executor`]; this module contributes only what is not generic:
//! ingest routing, partition-map surgery during rebalance/failover, and
//! plan publication. Read composition (two-phase kNN, heat-maps, …)
//! lives in [`QueryPlane`] so it can run without this lock.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use stcam_camnet::Observation;
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, CellId, GridSpec, Point, TimeInterval, Timestamp};
use stcam_net::{Endpoint, NodeId};

use crate::continuous::{ContinuousQueryId, Notification, Predicate};
use crate::error::StcamError;
use crate::exec::{
    CellDigestOp, CopyRegionOp, Degraded, EvictOp, Executor, ExportSegmentsOp, ExtractRegionOp,
    FlushOp, InstallSegmentsOp, OpPolicy, OpStats, ProbeOp, PromoteOp, QueryMode,
    RegisterContinuousOp, RejoinOp, RepairOp, RouteUpdateOp, SegmentDigestOp, StatsOp,
    UnregisterContinuousOp,
};
use crate::ingest::ReliableSender;
use crate::partition::PartitionMap;
use crate::plane::{self, QueryPlane};
use crate::protocol::{DigestReport, GridSpecMsg, Request, SegmentDigestEntry, WorkerStatsMsg};
use crate::repair::{self, RepairBudget, RepairReport};

/// Aggregated statistics across the cluster.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-worker statistics (alive workers only).
    pub workers: Vec<(NodeId, WorkerStatsMsg)>,
    /// Per-operation executor telemetry, sorted by operation name.
    pub ops: Vec<(&'static str, OpStats)>,
    /// Distinct owned macro-cells currently missing at least one of their
    /// required replica copies (0 when replication is disabled or the
    /// anti-entropy invariant holds — see [`Coordinator::repair`]).
    pub under_replicated_cells: usize,
}

impl ClusterStats {
    /// Total observations held in primary shards.
    pub fn total_primary(&self) -> u64 {
        self.workers
            .iter()
            .map(|(_, s)| s.primary_observations)
            .sum()
    }

    /// Approximate bytes held in memory across all primary shards
    /// (mutable heads plus resident sealed-segment payloads).
    pub fn resident_bytes(&self) -> u64 {
        self.workers.iter().map(|(_, s)| s.resident_bytes).sum()
    }

    /// Sealed immutable segments held across all primary shards.
    pub fn sealed_segments(&self) -> u64 {
        self.workers.iter().map(|(_, s)| s.sealed_segments).sum()
    }

    /// Max ÷ mean of per-worker primary observation counts (1.0 = perfect
    /// balance). Returns 1.0 for an empty cluster.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_primary();
        if total == 0 || self.workers.is_empty() {
            return 1.0;
        }
        let max = self
            .workers
            .iter()
            .map(|(_, s)| s.primary_observations)
            .max()
            .unwrap_or(0);
        max as f64 / (total as f64 / self.workers.len() as f64)
    }

    /// Executor telemetry of one operation (zeros when never invoked).
    pub fn op(&self, name: &str) -> OpStats {
        self.ops
            .iter()
            .find(|(op, _)| *op == name)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }
}

/// Outcome of an online rebalance (see [`Coordinator::rebalance`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceReport {
    /// Macro-cells whose owner changed.
    pub cells_moved: usize,
    /// Observations migrated between workers.
    pub observations_moved: usize,
    /// Imbalance factor under the old map (max/mean of measured load).
    pub imbalance_before: f64,
    /// Imbalance factor of the same load under the new map.
    pub imbalance_after: f64,
}

/// The cluster's control plane and query router.
///
/// The coordinator is driven synchronously by the client thread: ingest
/// routing and failure recovery are plain method calls. Fan-out, retry,
/// and telemetry live in the [`Executor`]; read composition lives in the
/// [`QueryPlane`] (the query methods here are delegating wrappers, kept
/// so single-threaded callers need no second handle). After every
/// mutation of the partition map or alive set the coordinator publishes
/// a fresh [`QueryPlan`](crate::QueryPlan) so lock-free readers observe
/// it.
#[derive(Debug)]
pub struct Coordinator {
    exec: Executor,
    plane: Arc<QueryPlane>,
    sender: ReliableSender,
    partition: PartitionMap,
    replication: usize,
    alive: HashSet<NodeId>,
    /// Every worker ever admitted to the cluster, dead or alive.
    /// Rebalance drops dead members from the partition ring, so this is
    /// the set [`check_and_recover`](Self::check_and_recover) probes for
    /// restarts.
    known: HashSet<NodeId>,
    next_query_id: u64,
    /// Standing queries, kept for re-registration on failover.
    registrations: HashMap<ContinuousQueryId, Predicate>,
    /// Failover promotions that failed after retries (data recovery then
    /// falls to anti-entropy repair).
    promotion_failures: u64,
    /// Standing-query re-registrations that failed during failover.
    registration_failures: u64,
}

impl Coordinator {
    /// Creates a coordinator over an already-partitioned cluster.
    ///
    /// `endpoint` carries control-plane traffic (ingest, probes,
    /// migration, continuous-query notifications); `query_endpoints`
    /// become the query plane's pool — at least one is required.
    pub fn new(
        endpoint: Endpoint,
        query_endpoints: Vec<Endpoint>,
        partition: PartitionMap,
        replication: usize,
        rpc_timeout: StdDuration,
    ) -> Self {
        let alive: HashSet<NodeId> = partition.workers().iter().copied().collect();
        let exec = Executor::new(endpoint, OpPolicy::new(rpc_timeout));
        exec.set_replication(replication);
        // Probes are single-attempt: a timeout *is* the liveness signal.
        exec.set_policy(
            "probe",
            OpPolicy::no_retry(rpc_timeout.min(StdDuration::from_millis(250))),
        );
        // Pooled executors share the coordinator executor's account:
        // one telemetry registry, one policy table, one health view.
        let shared = exec.shared();
        let pool: Vec<Executor> = query_endpoints
            .into_iter()
            .map(|ep| Executor::with_shared(ep, Arc::clone(&shared)))
            .collect();
        let plane = Arc::new(QueryPlane::new(pool, partition.clone(), alive.clone()));
        let sender = ReliableSender::new(Arc::clone(&plane), replication, rpc_timeout);
        Coordinator {
            exec,
            plane,
            sender,
            known: alive.clone(),
            partition,
            replication,
            alive,
            next_query_id: 1,
            registrations: HashMap::new(),
            promotion_failures: 0,
            registration_failures: 0,
        }
    }

    /// The lock-free query plane fed by this coordinator's plan
    /// publications. Clone the `Arc` and issue reads from any thread
    /// without taking the control-plane lock.
    pub fn query_plane(&self) -> Arc<QueryPlane> {
        Arc::clone(&self.plane)
    }

    /// Publishes the current partition map and alive set as a new
    /// [`QueryPlan`](crate::QueryPlan) epoch. Called after every
    /// membership/partition mutation.
    fn publish_plan(&self) {
        self.plane
            .publish(self.partition.clone(), self.alive.clone());
    }

    /// The current partition map.
    pub fn partition(&self) -> &PartitionMap {
        &self.partition
    }

    /// Replication factor (replica count per shard, excluding the
    /// primary).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Overrides the liveness-probe timeout used by
    /// [`check_and_recover`](Self::check_and_recover) (default: the lesser
    /// of the RPC timeout and 250 ms). Shorter probes detect failures
    /// faster at the cost of more false positives under load.
    pub fn set_probe_timeout(&mut self, timeout: StdDuration) {
        self.exec.set_policy("probe", OpPolicy::no_retry(timeout));
    }

    /// Installs a timeout/retry policy override for the named operation.
    pub fn set_op_policy(&self, op: &'static str, policy: OpPolicy) {
        self.exec.set_policy(op, policy);
    }

    /// Per-operation executor telemetry, sorted by operation name.
    pub fn op_stats(&self) -> Vec<(&'static str, OpStats)> {
        self.exec.op_stats()
    }

    /// The workers currently believed alive.
    pub fn alive_workers(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.alive.iter().copied().collect();
        v.sort();
        v
    }

    /// Current per-node suspicion (consecutive failed RPCs since the
    /// last success), for every node with recorded history.
    pub fn suspicions(&self) -> Vec<(NodeId, u32)> {
        self.exec.health().snapshot()
    }

    /// Failover promotions that failed after retries. Non-zero means a
    /// successor could not absorb a dead worker's replica log when its
    /// shard was reassigned; the data is restored by the next
    /// [`repair`](Self::repair) sweep instead.
    pub fn promotion_failures(&self) -> u64 {
        self.promotion_failures
    }

    /// Standing-query re-registrations that failed during failover. The
    /// affected successor misses continuous-query matches until the next
    /// registration broadcast (rebalance or rejoin) reaches it.
    pub fn registration_failures(&self) -> u64 {
        self.registration_failures
    }

    // ------------------------------------------------------------------
    // Ingest path
    // ------------------------------------------------------------------

    /// Acknowledged ingest: routes each observation to its owning worker
    /// and that worker's alive ring replicas, retries lost traffic with
    /// backoff, and hands unacked batches off to ring successors when an
    /// owner stops answering. Returns the number of observations durably
    /// **accepted** — not merely routed; anything unaccepted is parked
    /// and re-driven by [`flush`](Self::flush).
    ///
    /// # Errors
    ///
    /// Fails on local problems (codec errors, fabric shutdown);
    /// unreachable workers park observations instead of erroring.
    pub fn ingest(&mut self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        // The coordinator's own plan is authoritative (it publishes
        // after every mutation), so sync the sender's snapshot first.
        self.sender.refresh_plan();
        self.sender.ingest(self.exec.endpoint(), batch)
    }

    /// Legacy fire-and-forget ingest: routes the batch with no
    /// acknowledgement and returns the number of observations *routed*.
    /// Lossy links or a dying destination silently drop traffic — use
    /// [`ingest`](Self::ingest) unless you are benchmarking the
    /// unreliable baseline.
    ///
    /// # Errors
    ///
    /// Fails only on transport-level problems; observations routed to a
    /// worker that died mid-flight are counted as routed (their fate is
    /// governed by the replication factor).
    pub fn ingest_unacked(&mut self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        let n = batch.len();
        // Owner → destination is resolved once per distinct owner, not
        // once per observation: the divert decision (alive-set lookup +
        // suspicion check) is identical for every observation an owner
        // receives, and a batch touches few distinct owners.
        let mut destination: HashMap<NodeId, NodeId> = HashMap::new();
        let mut groups: HashMap<NodeId, Vec<Observation>> = HashMap::new();
        for obs in batch {
            let owner = self.partition.owner_of(obs.position);
            let dest = match destination.get(&owner) {
                Some(&d) => d,
                None => {
                    let d = self.divert(owner)?;
                    destination.insert(owner, d);
                    d
                }
            };
            groups.entry(dest).or_default().push(obs);
        }
        for (dest, group) in groups {
            self.exec
                .endpoint()
                .send(dest, encode_to_vec(&Request::Ingest(group)))?;
        }
        Ok(n)
    }

    /// Resolves an owner to its traffic destination against the control
    /// plane's own (pre-publication) routing state.
    fn divert(&self, owner: NodeId) -> Result<NodeId, StcamError> {
        plane::route_owner(owner, &self.partition, &self.alive, self.exec.health())
    }

    /// Write barrier: first drains the acked sender's parked window
    /// (re-delivering unacknowledged observations under fresh routing),
    /// then confirms every alive worker has drained all previously sent
    /// ingest traffic (per-link FIFO + a Ping round trip).
    ///
    /// # Errors
    ///
    /// [`StcamError::PartialFailure`] when parked observations still
    /// cannot be acknowledged; transport errors when a worker believed
    /// alive does not answer in time.
    pub fn flush(&self) -> Result<(), StcamError> {
        self.sender.drain(self.exec.endpoint())?;
        self.exec.execute(FlushOp, &self.partition, &self.alive)
    }

    /// Pushes every alive worker its slice of the current routing plan
    /// (epoch + owned cell set), arming the misroute-NACK check that
    /// lets stale senders self-heal. Per-worker failures are ignored: a
    /// worker that misses an update keeps its previous (older-epoch)
    /// route and simply NACKs less precisely until the next broadcast.
    pub fn broadcast_routes(&self) {
        let op = RouteUpdateOp::from_plan(self.plane.epoch(), &self.partition);
        for (_, result) in self.exec.run(&op, &self.partition, &self.alive) {
            let _ = result;
        }
    }

    // ------------------------------------------------------------------
    // Queries — delegating wrappers over the lock-free query plane
    // ------------------------------------------------------------------
    //
    // Every read runs on the query plane against its current published
    // plan snapshot, on the executor's degraded path — per-shard replica
    // failover, then a merge over whatever survived. `QueryMode` decides
    // what an incomplete answer becomes: `Strict` converts it into
    // `StcamError::PartialFailure`, `BestEffort` hands it to the caller
    // with its `Completeness` account. The plain (mode-less) methods are
    // strict, preserving the historical all-or-nothing signature.
    //
    // Concurrent callers should clone [`query_plane`](Self::query_plane)
    // and bypass this struct (and whatever lock guards it) entirely.

    /// All observations in `region` × `window`, merged across shards and
    /// sorted by id.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] when a shard answered from neither
    /// its primary nor a replica.
    pub fn range_query_mode(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane.range_query_mode(mode, region, window)
    }

    /// Strict [`range_query_mode`](Self::range_query_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn range_query(
        &self,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Vec<Observation>, StcamError> {
        self.range_query_mode(QueryMode::Strict, region, window)
            .map(|d| d.value)
    }

    /// The `k` observations nearest to `at` within `window`, via two-phase
    /// pruned search — two composed ops: the owner of `at`'s cell answers
    /// first ([`KnnPhase1Op`]), its k-th distance bounds the disk that
    /// phase two scatters to ([`KnnPhase2Op`]). The completeness accounts
    /// of both phases are folded together; a degraded kNN is *not* a
    /// subset of the true answer (`subset = false`), since a lost shard
    /// can promote farther neighbours into the top-k.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards; [`StcamError::NoQuorum`]
    /// when no worker can anchor phase one.
    pub fn knn_query_mode(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane.knn_query_mode(mode, at, window, k)
    }

    /// Strict [`knn_query_mode`](Self::knn_query_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn knn_query(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        self.knn_query_mode(QueryMode::Strict, at, window, k)
            .map(|d| d.value)
    }

    /// The naive kNN evaluation — broadcast to every worker with no
    /// pruning bound. Baseline for the kNN experiment.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn knn_broadcast_mode(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane.knn_broadcast_mode(mode, at, window, k)
    }

    /// Strict [`knn_broadcast_mode`](Self::knn_broadcast_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn knn_broadcast(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        self.knn_broadcast_mode(QueryMode::Strict, at, window, k)
            .map(|d| d.value)
    }

    /// Per-bucket observation counts with worker-side partial aggregation:
    /// each worker reduces its shard to a counts vector, the merge sums
    /// vectors.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn heatmap_mode(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<u64>>, StcamError> {
        self.plane.heatmap_mode(mode, buckets, window)
    }

    /// Strict [`heatmap_mode`](Self::heatmap_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn heatmap(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        self.heatmap_mode(QueryMode::Strict, buckets, window)
            .map(|d| d.value)
    }

    /// The `k` densest buckets of `buckets` × `window`, ranked by count
    /// (ties by cell index). Workers ship only their occupied buckets, so
    /// sparse grids cost a fraction of a full [`heatmap`](Self::heatmap).
    /// A degraded ranking is not a subset of the true one (`subset =
    /// false`): a lost shard's counts can change which cells rank.
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn top_cells_mode(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<(CellId, u64)>>, StcamError> {
        self.plane.top_cells_mode(mode, buckets, window, k)
    }

    /// Strict [`top_cells_mode`](Self::top_cells_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn top_cells(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<(CellId, u64)>, StcamError> {
        self.top_cells_mode(QueryMode::Strict, buckets, window, k)
            .map(|d| d.value)
    }

    /// The ship-all aggregate baseline: fetch every matching observation
    /// and bucket at the coordinator. Same result, far more bytes moved.
    ///
    /// # Errors
    ///
    /// Propagates sub-query failures.
    pub fn heatmap_ship_all(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        self.plane.heatmap_ship_all(buckets, window)
    }

    /// Ages out observations older than `cutoff` everywhere.
    ///
    /// # Errors
    ///
    /// Propagates worker failures.
    pub fn evict_before(&self, cutoff: Timestamp) -> Result<(), StcamError> {
        self.exec
            .execute(EvictOp { cutoff }, &self.partition, &self.alive)
    }

    /// As [`range_query_mode`](Self::range_query_mode) with an
    /// entity-class filter pushed down to the workers ("trucks inside A").
    ///
    /// # Errors
    ///
    /// With [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] on lost shards.
    pub fn range_query_filtered_mode(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane
            .range_query_filtered_mode(mode, region, window, class)
    }

    /// Strict [`range_query_filtered_mode`](Self::range_query_filtered_mode).
    ///
    /// # Errors
    ///
    /// Fails with [`StcamError::PartialFailure`] on lost shards.
    pub fn range_query_filtered(
        &self,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Vec<Observation>, StcamError> {
        self.range_query_filtered_mode(QueryMode::Strict, region, window, class)
            .map(|d| d.value)
    }

    // ------------------------------------------------------------------
    // Online rebalancing
    // ------------------------------------------------------------------

    /// Re-partitions the cluster by *measured* per-cell load and migrates
    /// the affected shards with copy-then-cutover semantics: each moved
    /// macro-cell's contents are copied (idempotently, in bounded
    /// streaming batches) into the new owner, the new owner's replica
    /// chain is brought up to the configured factor by an anti-entropy
    /// sweep against the *target* map, and only then is the map cut over
    /// and the old copy evicted. Observations accepted by the old owner
    /// between the copy and the cutover are drained into the new owner by
    /// the eviction step, so acked data survives the move. Queries issued
    /// after this call observe the full data set under the new map.
    ///
    /// Intended for rebalance epochs when traffic has drifted from the
    /// distribution the current map was built for (see the load-balance
    /// and rebalance experiments).
    ///
    /// # Errors
    ///
    /// Propagates worker failures. A failure before the cutover leaves
    /// the old map in force (the partial copies are redundant and are
    /// garbage-collected by [`repair`](Self::repair)); a failure after
    /// the cutover leaves the new map in force with stale copies at old
    /// owners, cleaned up by re-running the rebalance.
    ///
    /// External [`Ingestor`](crate::Ingestor) handles hold routing
    /// snapshots, but heal themselves: the route broadcast after the
    /// swap arms the misroute NACK that makes their acked path refresh
    /// from the published plan (legacy
    /// [`ingest_unacked`](crate::Ingestor::ingest_unacked) traffic keeps
    /// landing on the old owners until then).
    pub fn rebalance(&mut self) -> Result<RebalanceReport, StcamError> {
        self.rebalance_with(RepairBudget::default())
    }

    /// As [`rebalance`](Self::rebalance) with an explicit budget bounding
    /// the migration's streaming chunk size and its replica-repair
    /// rounds.
    pub fn rebalance_with(&mut self, budget: RepairBudget) -> Result<RebalanceReport, StcamError> {
        // 1. Measure the load profile: all-time per-macro-cell counts.
        let grid = *self.partition.grid();
        let loads = self.heatmap(&grid, TimeInterval::ALL)?;
        let imbalance_before = self.partition.imbalance(&loads);
        // 2. Build the target map over the alive ring.
        let alive_ring: Vec<NodeId> = self
            .partition
            .workers()
            .iter()
            .copied()
            .filter(|w| self.alive.contains(w))
            .collect();
        if alive_ring.is_empty() {
            return Err(StcamError::NoQuorum);
        }
        let target = PartitionMap::load_aware(grid.extent(), grid.cell_size(), alive_ring, &loads);
        // 3. Copy phase: stream each moved cell from its old owner into
        // the new owner's primary shard. `Repair` with `primary ==
        // addressee` is an idempotent cell overwrite, so a retried or
        // re-run migration cannot duplicate observations the way the old
        // extract/adopt chain could.
        let moves: Vec<(CellId, NodeId, NodeId)> = grid
            .all_cells()
            .filter_map(|cell| {
                let old = self.partition.owner_of_cell(cell);
                let new = target.owner_of_cell(cell);
                (old != new && self.alive.contains(&old)).then_some((cell, old, new))
            })
            .collect();
        let gmsg = GridSpecMsg::from(grid);
        let cols = grid.cols();
        let mut observations_moved = 0usize;
        for &(cell, old, new) in &moves {
            let region = self.partition.cell_routing_region(cell);
            let contents = self.exec.execute(
                CopyRegionOp {
                    target: old,
                    region,
                },
                &self.partition,
                &self.alive,
            )?;
            observations_moved += contents.len();
            self.stream_cell(
                new,
                new,
                gmsg,
                cell.row * cols + cell.col,
                &contents,
                &budget,
            )?;
        }
        // 4. Cover phase: bring every moved cell's replica chain up to
        // the configured factor *under the target map* before any old
        // copy is dropped.
        if self.replication > 0 {
            self.repair_against(&target, budget, false);
        }
        // 5. Cutover: swap in the new map and publish it.
        self.partition = target;
        self.publish_plan();
        self.broadcast_routes();
        // 6. Evict the old copies, draining any stragglers accepted by
        // the old owner between the copy and the cutover into the new
        // owner (append without truncate: the rejoin-safe dedup on the
        // worker makes this idempotent against the copied prefix).
        for &(cell, old, new) in &moves {
            let region = self.partition.cell_routing_region(cell);
            let stragglers = self.exec.execute(
                ExtractRegionOp {
                    target: old,
                    region,
                },
                &self.partition,
                &self.alive,
            )?;
            if !stragglers.is_empty() {
                observations_moved += stragglers.len();
                let packed = cell.row * cols + cell.col;
                for chunk in stragglers.chunks(budget.chunk.max(1)) {
                    self.exec.execute(
                        RepairOp {
                            target: new,
                            primary: new,
                            grid: gmsg,
                            cell: packed,
                            truncate: false,
                            batch: chunk.to_vec(),
                        },
                        &self.partition,
                        &self.alive,
                    )?;
                }
            }
        }
        // 7. Make standing queries present at their (possibly new)
        // overlapping workers, and re-converge replica coverage for the
        // straggler drain.
        let notify = self.exec.endpoint().id();
        let registrations: Vec<(ContinuousQueryId, Predicate)> =
            self.registrations.iter().map(|(&id, &p)| (id, p)).collect();
        for (id, predicate) in registrations {
            self.exec.execute(
                RegisterContinuousOp {
                    id,
                    predicate,
                    notify,
                    only: None,
                },
                &self.partition,
                &self.alive,
            )?;
        }
        if self.replication > 0 {
            self.repair_with(budget);
        }
        let imbalance_after = self.partition.imbalance(&loads);
        Ok(RebalanceReport {
            cells_moved: moves.len(),
            observations_moved,
            imbalance_before,
            imbalance_after,
        })
    }

    /// Streams `contents` into `target`'s copy of packed cell `cell`
    /// (primary shard when `target == primary`, replica log otherwise) in
    /// bounded batches: the first chunk truncates the stale copy, the
    /// rest append. Empty contents degenerate to a pure truncation.
    fn stream_cell(
        &self,
        target: NodeId,
        primary: NodeId,
        grid: GridSpecMsg,
        cell: u32,
        contents: &[Observation],
        budget: &RepairBudget,
    ) -> Result<usize, StcamError> {
        let mut first = true;
        let mut streamed = 0usize;
        for chunk in contents.chunks(budget.chunk.max(1)) {
            self.exec.execute(
                RepairOp {
                    target,
                    primary,
                    grid,
                    cell,
                    truncate: first,
                    batch: chunk.to_vec(),
                },
                &self.partition,
                &self.alive,
            )?;
            first = false;
            streamed += chunk.len();
        }
        if first {
            self.exec.execute(
                RepairOp {
                    target,
                    primary,
                    grid,
                    cell,
                    truncate: true,
                    batch: Vec::new(),
                },
                &self.partition,
                &self.alive,
            )?;
        }
        Ok(streamed)
    }

    // ------------------------------------------------------------------
    // Anti-entropy repair
    // ------------------------------------------------------------------

    /// One anti-entropy repair pass under the default [`RepairBudget`]:
    /// sweeps per-cell digests from every alive worker, compares each
    /// owner's primary against the replica copies at its required ring
    /// successors, and streams the missing/diverged cells until the
    /// configured replication factor holds everywhere (or the budget runs
    /// out — re-invoke to continue; the sweep is idempotent).
    ///
    /// Individual worker failures during a pass are tolerated: the next
    /// round re-plans from fresh digests. The pass itself never fails.
    pub fn repair(&self) -> RepairReport {
        self.repair_with(RepairBudget::default())
    }

    /// As [`repair`](Self::repair) under an explicit [`RepairBudget`].
    pub fn repair_with(&self, budget: RepairBudget) -> RepairReport {
        self.repair_against(&self.partition.clone(), budget, true)
    }

    /// The digest-sweep/plan/stream loop behind [`repair`](Self::repair),
    /// parameterised by the partition map the invariant is judged against
    /// (rebalance repairs against its *target* map before cutover).
    ///
    /// `drain_strays` additionally reclaims primary copies of cells the
    /// map assigns elsewhere (a ceded cell whose evict was lost): each is
    /// drained into its assigned owner, then truncated. Pre-cutover
    /// callers pass `false` — against a not-yet-published target map the
    /// ceding owners still serve reads, so their copies are not stale.
    fn repair_against(
        &self,
        partition: &PartitionMap,
        budget: RepairBudget,
        drain_strays: bool,
    ) -> RepairReport {
        let mut report = RepairReport::default();
        if self.replication == 0 {
            report.converged = true;
            return report;
        }
        let grid = *partition.grid();
        let gmsg = GridSpecMsg::from(grid);
        let mut first_sweep = true;
        loop {
            let digests = self.sweep_digests(partition);
            let mut plan = repair::plan(&digests, partition, &self.alive, self.replication);
            if !drain_strays {
                plan.strays.clear();
                // Replica logs keyed by a ceding owner are not stale
                // against a not-yet-published map either: the ceding
                // owner still holds (and serves) the cell, so "stream
                // the empty truth" would fetch the still-present copy
                // and faithfully re-append it every round without ever
                // converging. Post-cutover repair reclaims these logs
                // together with the stray primary copies.
                let cols = grid.cols();
                plan.deficits.retain(|d| {
                    partition.owner_of_cell(CellId::new(d.cell % cols, d.cell / cols)) == d.owner
                });
            }
            if first_sweep {
                report.under_replicated_before = plan.under_replicated_cells;
                first_sweep = false;
            }
            report.under_replicated_after = plan.under_replicated_cells;
            if plan.is_converged() || report.rounds >= budget.max_rounds {
                report.converged = plan.is_converged();
                return report;
            }
            report.rounds += 1;
            let traffic_before = self.repair_traffic();
            // Stray primary copies of ceded cells: drain into the
            // assigned owner first (id dedup absorbs what already
            // landed), truncate the stale copy only once every chunk has
            // been accepted — a failed drain retries next round.
            for s in &plan.strays {
                let region = repair::cell_region(&grid, s.cell);
                let Ok(contents) = self.exec.execute(
                    CopyRegionOp {
                        target: s.holder,
                        region,
                    },
                    partition,
                    &self.alive,
                ) else {
                    continue;
                };
                let mut drained = true;
                for chunk in contents.chunks(budget.chunk.max(1)) {
                    let appended = self.exec.execute(
                        RepairOp {
                            target: s.owner,
                            primary: s.owner,
                            grid: gmsg,
                            cell: s.cell,
                            truncate: false,
                            batch: chunk.to_vec(),
                        },
                        partition,
                        &self.alive,
                    );
                    if appended.is_err() {
                        drained = false;
                        break;
                    }
                }
                if !drained {
                    continue;
                }
                let truncated = self.exec.execute(
                    RepairOp {
                        target: s.holder,
                        primary: s.holder,
                        grid: gmsg,
                        cell: s.cell,
                        truncate: true,
                        batch: Vec::new(),
                    },
                    partition,
                    &self.alive,
                );
                if truncated.is_ok() {
                    report.cells_repaired += 1;
                    report.observations_streamed += contents.len();
                }
            }
            // Stale copies outside the required successor sets: truncate
            // without restreaming (their alive primaries hold the data).
            for g in &plan.garbage {
                let cleaned = self.exec.execute(
                    RepairOp {
                        target: g.holder,
                        primary: g.owner,
                        grid: gmsg,
                        cell: g.cell,
                        truncate: true,
                        batch: Vec::new(),
                    },
                    partition,
                    &self.alive,
                );
                if cleaned.is_ok() {
                    report.cells_repaired += 1;
                }
            }
            // Deficits, grouped by (owner, cell) so each source copy is
            // fetched once however many holders need it.
            let mut groups: std::collections::BTreeMap<(NodeId, u32), Vec<NodeId>> =
                std::collections::BTreeMap::new();
            for d in &plan.deficits {
                groups.entry((d.owner, d.cell)).or_default().push(d.holder);
            }
            let mut budget_left = budget.max_observations_per_round;
            'groups: for ((owner, cell), holders) in groups {
                // Budget check *before* the fetch: once the round is out
                // of stream budget, fetching the remaining copies would
                // be pure waste (they are re-planned and re-fetched next
                // round anyway).
                if budget_left == 0 {
                    break 'groups;
                }
                let region = repair::cell_region(&grid, cell);
                let Ok(contents) = self.exec.execute(
                    CopyRegionOp {
                        target: owner,
                        region,
                    },
                    partition,
                    &self.alive,
                ) else {
                    continue; // owner unreachable this round: re-planned next round
                };
                for holder in holders {
                    if let Ok(n) = self.stream_cell(holder, owner, gmsg, cell, &contents, &budget) {
                        report.cells_repaired += 1;
                        report.observations_streamed += n;
                        budget_left = budget_left.saturating_sub(n);
                    }
                    if budget_left == 0 {
                        break 'groups;
                    }
                }
            }
            self.exec
                .note_repair(1, self.repair_traffic().saturating_sub(traffic_before));
        }
    }

    /// Wire bytes attributable to repair streaming so far: repair
    /// requests sent plus cell copies received.
    fn repair_traffic(&self) -> u64 {
        self.exec.stats_for("repair").bytes_sent + self.exec.stats_for("copy_region").bytes_received
    }

    /// One digest sweep over the alive workers; non-answering workers
    /// simply contribute nothing (the planner treats their copies as
    /// missing and retries next round).
    fn sweep_digests(&self, partition: &PartitionMap) -> Vec<(NodeId, DigestReport)> {
        let op = CellDigestOp {
            grid: GridSpecMsg::from(*partition.grid()),
            only: None,
        };
        self.exec
            .run(&op, partition, &self.alive)
            .into_iter()
            .filter_map(|(w, r)| r.ok().map(|d| (w, d)))
            .collect()
    }

    /// Distinct owned macro-cells currently missing at least one required
    /// replica copy, per a fresh digest sweep (0 with replication
    /// disabled). This is the convergence gauge [`repair`](Self::repair)
    /// drives to zero.
    pub fn under_replicated_cells(&self) -> usize {
        if self.replication == 0 {
            return 0;
        }
        let digests = self.sweep_digests(&self.partition);
        repair::plan(&digests, &self.partition, &self.alive, self.replication)
            .under_replicated_cells
    }

    // ------------------------------------------------------------------
    // Continuous queries
    // ------------------------------------------------------------------

    /// Registers a standing query; matches will arrive via
    /// [`poll_notifications`](Self::poll_notifications).
    ///
    /// # Errors
    ///
    /// Fails when a shard worker cannot be reached.
    pub fn register_continuous(
        &mut self,
        predicate: Predicate,
    ) -> Result<ContinuousQueryId, StcamError> {
        let id = ContinuousQueryId(self.next_query_id);
        self.next_query_id += 1;
        let notify = self.exec.endpoint().id();
        self.exec.execute(
            RegisterContinuousOp {
                id,
                predicate,
                notify,
                only: None,
            },
            &self.partition,
            &self.alive,
        )?;
        self.registrations.insert(id, predicate);
        Ok(id)
    }

    /// Removes a standing query everywhere.
    ///
    /// # Errors
    ///
    /// Fails when a shard worker cannot be reached.
    pub fn unregister_continuous(&mut self, id: ContinuousQueryId) -> Result<(), StcamError> {
        self.registrations.remove(&id);
        self.exec
            .execute(UnregisterContinuousOp { id }, &self.partition, &self.alive)
    }

    /// Drains match notifications that have arrived since the last poll,
    /// waiting up to `timeout` for the first one.
    pub fn poll_notifications(&self, timeout: StdDuration) -> Vec<Notification> {
        let endpoint = self.exec.endpoint();
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            let Some(envelope) = endpoint.recv_timeout(remaining) else {
                break;
            };
            if let Ok(notification) = decode_from_slice::<Notification>(&envelope.payload) {
                out.push(notification);
            }
            if !out.is_empty() {
                // Drain whatever else is already queued, then return.
                while let Some(envelope) = endpoint.try_recv() {
                    if let Ok(n) = decode_from_slice::<Notification>(&envelope.payload) {
                        out.push(n);
                    }
                }
                break;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Membership and recovery
    // ------------------------------------------------------------------

    /// Probes every worker believed alive; for each failure, fails its
    /// shard over to the first alive ring successor (which holds the
    /// replica when the replication factor covers it), repairs the
    /// partition map, and re-registers standing queries there. Then
    /// probes every worker believed *dead*: a restarted worker that
    /// answers is readmitted through the rejoin handshake — its state is
    /// reset, its target shard bulk-synced from the current owners, its
    /// epoch-stamped route and standing-query registrations re-installed,
    /// and the whole re-entry made visible by a single plan publication.
    /// Any membership change with replication enabled ends with an
    /// anti-entropy pass, so strict reads can rely on the ring-walked
    /// successors the new plan points them at. Returns the newly failed
    /// workers.
    pub fn check_and_recover(&mut self) -> Vec<NodeId> {
        let failed: Vec<NodeId> = self
            .exec
            .run(&ProbeOp, &self.partition, &self.alive)
            .into_iter()
            .filter_map(|(worker, result)| result.is_err().then_some(worker))
            .collect();
        for &worker in &failed {
            self.alive.remove(&worker);
        }
        for &worker in &failed {
            self.fail_over(worker);
        }
        if !failed.is_empty() {
            // One publication covering membership + every reassignment;
            // queries in flight finish on their old snapshot and are
            // caught by replica failover if they touch a dead worker.
            self.publish_plan();
            self.broadcast_routes();
        }
        let rejoined = self.try_rejoin();
        if (!failed.is_empty() || !rejoined.is_empty()) && self.replication > 0 {
            self.repair();
        }
        failed
    }

    fn fail_over(&mut self, failed: NodeId) {
        let chain = self
            .partition
            .successors(failed, self.partition.workers().len() - 1);
        let Some(successor) = chain.into_iter().find(|w| self.alive.contains(w)) else {
            return; // no quorum: nothing to repair onto
        };
        self.partition.reassign(failed, successor);
        // Absorb the replica log; data loss is bounded by in-flight
        // replication traffic at crash time. This runs even with
        // replication disabled, because hinted handoff parks acked
        // batches for a dead owner in its successor's replica log. A
        // failed promotion is counted, not swallowed: the executor has
        // already booked the failure into the "promote" telemetry and the
        // successor's suspicion, and the unabsorbed log is re-streamed by
        // the next anti-entropy pass.
        let promoted = self.exec.execute(
            PromoteOp {
                target: successor,
                failed,
            },
            &self.partition,
            &self.alive,
        );
        if promoted.is_err() {
            self.promotion_failures += 1;
        }
        // Standing queries whose region now overlaps the successor's
        // enlarged shard must be present there.
        let notify = self.exec.endpoint().id();
        let registrations: Vec<(ContinuousQueryId, Predicate)> =
            self.registrations.iter().map(|(&id, &p)| (id, p)).collect();
        for (id, predicate) in registrations {
            let registered = self.exec.execute(
                RegisterContinuousOp {
                    id,
                    predicate,
                    notify,
                    only: Some(successor),
                },
                &self.partition,
                &self.alive,
            );
            if registered.is_err() {
                self.registration_failures += 1;
            }
        }
    }

    /// Probes every known-but-dead worker and readmits the ones that
    /// answer (a restart brings the transport back with empty state).
    /// Returns the workers that completed the rejoin handshake.
    fn try_rejoin(&mut self) -> Vec<NodeId> {
        let dead: HashSet<NodeId> = self
            .known
            .iter()
            .copied()
            .filter(|w| !self.alive.contains(w))
            .collect();
        if dead.is_empty() {
            return Vec::new();
        }
        let responders: Vec<NodeId> = self
            .exec
            .run(&ProbeOp, &self.partition, &dead)
            .into_iter()
            .filter_map(|(worker, result)| result.is_ok().then_some(worker))
            .collect();
        let mut rejoined = Vec::new();
        for worker in responders {
            if self.rejoin(worker).is_ok() {
                rejoined.push(worker);
            }
        }
        rejoined
    }

    /// The rejoin handshake for one restarted worker: reset it, bulk-sync
    /// its target shard from the current owners, readmit it, and cut the
    /// plan over in a single publication. Fails (leaving the old plan in
    /// force and the worker out of the ring) only before any durable
    /// state moves; from the bulk-sync on, individual RPC failures are
    /// absorbed by the trailing anti-entropy pass.
    fn rejoin(&mut self, worker: NodeId) -> Result<(), StcamError> {
        let budget = RepairBudget::default();
        let grid = *self.partition.grid();
        let gmsg = GridSpecMsg::from(grid);
        let cols = grid.cols();
        // 1. Target map: minimal-churn admission — the rejoiner is
        // granted a fair share of the measured load carved from the most
        // loaded veterans, and every other assignment is preserved. A
        // from-scratch load-aware rebuild here would reshuffle ownership
        // across the whole keyspace and make the pre-cutover replica
        // covering (step 5) re-stream nearly every cell; carving keeps
        // the covering proportional to the share actually moved.
        let loads = self
            .heatmap_mode(QueryMode::BestEffort, &grid, TimeInterval::ALL)
            .map(|d| d.value)
            .unwrap_or_else(|_| vec![1; grid.cell_count() as usize]);
        let target = self.partition.admit(worker, &loads);
        let cells: Vec<u32> = target
            .cells_of(worker)
            .into_iter()
            .map(|c| c.row * cols + c.col)
            .collect();
        // 2. Handshake: reset the restarted worker's state and install
        // its route, stamped with the epoch the cutover below publishes.
        self.exec.execute(
            RejoinOp {
                target: worker,
                epoch: self.plane.epoch() + 1,
                grid: gmsg,
                cells: cells.clone(),
            },
            &self.partition,
            &self.alive,
        )?;
        // 3. Bulk-sync: ship every assigned cell from its current owner
        // into the rejoiner's primary shard as whole sealed segments
        // (split at cell boundaries, installed without row-by-row
        // re-indexing) plus the owner's loose mutable-head rows. The
        // digest skip list keeps a retried handshake cheap — segments the
        // rejoiner already holds are never re-exported — and the
        // deterministic split makes retried frames digest-identical, so
        // the dedup holds across retries.
        let moves: Vec<(u32, NodeId)> = cells
            .iter()
            .map(|&packed| {
                let cell = CellId::new(packed % cols, packed / cols);
                (packed, self.partition.owner_of_cell(cell))
            })
            .filter(|(_, old)| *old != worker && self.alive.contains(old))
            .collect();
        let mut installed: Vec<SegmentDigestEntry> = self
            .exec
            .execute(
                SegmentDigestOp { target: worker },
                &self.partition,
                &self.alive,
            )
            .unwrap_or_default();
        for &(packed, old) in &moves {
            let region = repair::cell_region(&grid, packed);
            let (frames, head) = self.exec.execute(
                ExportSegmentsOp {
                    target: old,
                    region,
                    skip: installed.clone(),
                },
                &self.partition,
                &self.alive,
            )?;
            installed.extend(frames.iter().map(|f| SegmentDigestEntry {
                number: f.number,
                count: f.count,
                checksum: f.checksum,
            }));
            let mut head_chunks = head.chunks(budget.chunk.max(1));
            let first = head_chunks.next().unwrap_or(&[]).to_vec();
            if !frames.is_empty() || !first.is_empty() {
                self.exec.execute(
                    InstallSegmentsOp {
                        target: worker,
                        frames,
                        head: first,
                    },
                    &self.partition,
                    &self.alive,
                )?;
            }
            for chunk in head_chunks {
                self.exec.execute(
                    InstallSegmentsOp {
                        target: worker,
                        frames: Vec::new(),
                        head: chunk.to_vec(),
                    },
                    &self.partition,
                    &self.alive,
                )?;
            }
        }
        // 4. Readmit: a fresh incarnation gets a fresh suspicion history
        // (the old one's accumulated failures must not demote it).
        self.alive.insert(worker);
        self.known.insert(worker);
        self.exec.health().forget(worker);
        // 5. Cover the rejoiner's cells at their required successors
        // under the target map before any old copy is dropped. The
        // covering is one-shot work proportional to the whole target
        // map (readmitting a worker shifts ring successors broadly), so
        // it runs under the bulk budget: one digest sweep and one copy
        // fetch per cell instead of a fresh sweep every 8 k rows.
        if self.replication > 0 {
            self.repair_against(&target, RepairBudget::bulk(), false);
        }
        // 6. Cutover: one publication atomically re-enters the worker.
        self.partition = target;
        self.publish_plan();
        self.broadcast_routes();
        // 7. Standing queries must be present at the fresh incarnation
        // (the reset dropped the old registrations).
        let notify = self.exec.endpoint().id();
        let registrations: Vec<(ContinuousQueryId, Predicate)> =
            self.registrations.iter().map(|(&id, &p)| (id, p)).collect();
        for (id, predicate) in registrations {
            let registered = self.exec.execute(
                RegisterContinuousOp {
                    id,
                    predicate,
                    notify,
                    only: Some(worker),
                },
                &self.partition,
                &self.alive,
            );
            if registered.is_err() {
                self.registration_failures += 1;
            }
        }
        // 8. Evict the ceded copies, draining stragglers accepted by the
        // old owners between the bulk-sync and the cutover into the
        // rejoiner (append without truncate: worker-side dedup makes the
        // overlap with the synced prefix harmless).
        for &(packed, old) in &moves {
            let region = repair::cell_region(&grid, packed);
            let Ok(stragglers) = self.exec.execute(
                ExtractRegionOp {
                    target: old,
                    region,
                },
                &self.partition,
                &self.alive,
            ) else {
                continue; // stale copy lingers; a rerun extracts it
            };
            if stragglers.is_empty() {
                continue;
            }
            for chunk in stragglers.chunks(budget.chunk.max(1)) {
                let _ = self.exec.execute(
                    RepairOp {
                        target: worker,
                        primary: worker,
                        grid: gmsg,
                        cell: packed,
                        truncate: false,
                        batch: chunk.to_vec(),
                    },
                    &self.partition,
                    &self.alive,
                );
            }
        }
        Ok(())
    }

    /// Collects statistics from every alive worker, plus the executor's
    /// per-operation telemetry and the live under-replication gauge (the
    /// latter costs one digest sweep when replication is enabled).
    ///
    /// # Errors
    ///
    /// Fails when a worker believed alive does not answer.
    pub fn stats(&self) -> Result<ClusterStats, StcamError> {
        let workers = self.exec.execute(StatsOp, &self.partition, &self.alive)?;
        Ok(ClusterStats {
            workers,
            ops: self.exec.op_stats(),
            under_replicated_cells: self.under_replicated_cells(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(counts: &[u64]) -> ClusterStats {
        ClusterStats {
            workers: counts
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    (
                        NodeId(i as u32 + 1),
                        WorkerStatsMsg {
                            primary_observations: c,
                            ..Default::default()
                        },
                    )
                })
                .collect(),
            ops: Vec::new(),
            under_replicated_cells: 0,
        }
    }

    #[test]
    fn cluster_stats_totals_and_imbalance() {
        let s = stats_with(&[100, 100, 100, 100]);
        assert_eq!(s.total_primary(), 400);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
        let skewed = stats_with(&[400, 0, 0, 0]);
        assert!((skewed.imbalance() - 4.0).abs() < 1e-12);
        // Degenerate cases fall back to 1.0.
        assert_eq!(stats_with(&[]).imbalance(), 1.0);
        assert_eq!(stats_with(&[0, 0]).imbalance(), 1.0);
    }

    #[test]
    fn cluster_stats_op_lookup() {
        let mut s = stats_with(&[1]);
        s.ops.push((
            "range",
            OpStats {
                invocations: 3,
                ..Default::default()
            },
        ));
        assert_eq!(s.op("range").invocations, 3);
        assert_eq!(s.op("heatmap"), OpStats::default());
    }

    #[test]
    fn rebalance_report_is_plain_data() {
        let r = RebalanceReport {
            cells_moved: 3,
            observations_moved: 42,
            imbalance_before: 2.5,
            imbalance_after: 1.1,
        };
        let s = format!("{r:?}");
        assert!(s.contains("cells_moved: 3"));
        assert!(r.imbalance_after < r.imbalance_before);
    }
}
