//! Anti-entropy repair: digests, deficit planning, and budgets.
//!
//! Replication in `stcam` is an ingest-time best effort: acked writes
//! certify the owner plus its first `replication` *alive* ring successors,
//! but failover, lossy links, restarts, and rebalancing all erode that
//! coverage afterwards. This module makes the configured factor a
//! **converging invariant** instead:
//!
//! 1. Every worker answers [`Request::CellDigest`] with a sparse per-cell
//!    summary — observation count plus an order-independent checksum —
//!    over both its primary shard and every replica log it holds
//!    ([`DigestReport`]).
//! 2. [`plan`] compares each alive owner's primary digest against the
//!    replica digests held by its required successors (the same
//!    ring-walking [`PartitionMap::alive_successors`] rule the write and
//!    read paths use) and emits the *deficits*: `(owner, holder, cell)`
//!    triples whose copies are missing or diverged, plus the *garbage*:
//!    replica log cells whose holder is no longer a required successor.
//! 3. The coordinator's sweeper (`Coordinator::repair`) drains the plan
//!    under a [`RepairBudget`]: per deficit it copies the cell's contents
//!    from the owner and streams them to the holder in bounded
//!    columnar-codec batches ([`Request::Repair`]), truncating the
//!    holder's stale copy first so the stream is idempotent.
//!
//! The checksum is an XOR fold of a 64-bit mix over each observation's id
//! and timestamp, so it is order-independent (replica logs are append
//! logs, the primary index is slice-ordered) and equal counts + equal
//! checksums certify equal cell contents up to the collision probability
//! of the mix.
//!
//! Dropping diverged replica data during repair is safe by the ack
//! contract: an acknowledged observation is always present at the current
//! owner (or was promoted along the failover chain into it), so anything
//! a replica log holds that the alive owner lacks is unacknowledged — and
//! unacknowledged data is re-delivered by the sender's redo window, never
//! by replica logs.
//!
//! [`Request::CellDigest`]: crate::Request::CellDigest
//! [`Request::Repair`]: crate::Request::Repair
//! [`DigestReport`]: crate::DigestReport
//! [`PartitionMap::alive_successors`]: crate::PartitionMap::alive_successors

use std::collections::{BTreeMap, HashMap, HashSet};

use stcam_camnet::Observation;
use stcam_geo::{BBox, CellId, GridSpec};
use stcam_net::NodeId;

use crate::partition::PartitionMap;
use crate::protocol::DigestReport;

/// The order-independent per-observation mix folded (by XOR) into a
/// cell's digest checksum. Covers the identity and the timestamp, so a
/// replica holding the right ids but corrupted times still diverges.
/// Defined in `stcam-index` (sealed-segment checksums fold the same mix,
/// so a whole-cell segment block and a live cell digest agree) and
/// re-exported here for the repair plane.
pub use stcam_index::observation_checksum;

/// The region of positions that bucket into packed cell `cell` under the
/// clamped assignment of `grid` (outside positions clamp to border
/// cells). Mirrors `PartitionMap::cell_routing_region`, but standalone so
/// workers — which hold only the grid, not the partition — can truncate a
/// cell's exact contents during [`Request::Repair`]. Delegates to
/// `stcam-index`'s [`cell_scope`](stcam_index::cell_scope), the same rule
/// sealed-segment scans use to copy whole blocks without decoding.
///
/// [`Request::Repair`]: crate::Request::Repair
pub fn cell_region(grid: &GridSpec, cell: u32) -> BBox {
    stcam_index::cell_scope(grid, cell)
}

/// Streaming builder of sparse per-cell digests: observations are folded
/// one at a time (bucketed by `grid` with clamping — the same assignment
/// ingest routing uses), so a digest sweep never materialises the shard.
#[derive(Debug)]
pub(crate) struct DigestAccumulator {
    grid: GridSpec,
    cells: BTreeMap<u32, (u32, u64)>,
}

impl DigestAccumulator {
    pub(crate) fn new(grid: &GridSpec) -> Self {
        DigestAccumulator {
            grid: grid.clone(),
            cells: BTreeMap::new(),
        }
    }

    /// Folds one observation into its cell's digest.
    pub(crate) fn add(&mut self, o: &Observation) {
        let cell = self.grid.cell_of_clamped(o.position);
        let packed = cell.row * self.grid.cols() + cell.col;
        let entry = self.cells.entry(packed).or_insert((0, 0));
        entry.0 += 1;
        entry.1 ^= observation_checksum(o);
    }

    /// The accumulated `(packed cell, count, checksum)` triples, sorted
    /// by cell.
    pub(crate) fn finish(self) -> Vec<(u32, u32, u64)> {
        self.cells
            .into_iter()
            .map(|(cell, (count, checksum))| (cell, count, checksum))
            .collect()
    }
}

/// Sparse per-cell digests (`(packed cell, count, checksum)`, sorted by
/// cell) over a set of observations. See [`DigestAccumulator`].
pub(crate) fn digest_observations<'a, I>(grid: &GridSpec, observations: I) -> Vec<(u32, u32, u64)>
where
    I: IntoIterator<Item = &'a Observation>,
{
    let mut acc = DigestAccumulator::new(grid);
    for o in observations {
        acc.add(o);
    }
    acc.finish()
}

/// Resource bounds for one `Coordinator::repair_with` invocation, so
/// repair traffic never starves foreground queries.
#[derive(Debug, Clone, Copy)]
pub struct RepairBudget {
    /// Ceiling on observations streamed per digest round; when reached
    /// the round ends and the next round re-plans from fresh digests.
    pub max_observations_per_round: usize,
    /// Ceiling on digest/stream rounds per invocation.
    pub max_rounds: usize,
    /// Observations per [`Request::Repair`] batch — the streaming unit,
    /// sized to the columnar codec's sweet spot.
    ///
    /// [`Request::Repair`]: crate::Request::Repair
    pub chunk: usize,
}

impl Default for RepairBudget {
    fn default() -> Self {
        RepairBudget {
            max_observations_per_round: 8_192,
            max_rounds: 32,
            chunk: 512,
        }
    }
}

impl RepairBudget {
    /// An effectively unbounded per-round budget for one-shot covering
    /// passes (rejoin and rebalance re-replicate a whole target map
    /// before cutover, with no foreground traffic to starve): every
    /// deficit streams in a single round instead of paying a fresh
    /// digest sweep and copy fetch per 8 k rows.
    pub fn bulk() -> Self {
        RepairBudget {
            max_observations_per_round: usize::MAX,
            ..RepairBudget::default()
        }
    }
}

/// The outcome of one repair invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Digest/stream rounds executed.
    pub rounds: usize,
    /// `(owner, holder, cell)` deficits repaired (including truncate-only
    /// cleanups of stale replica cells).
    pub cells_repaired: usize,
    /// Observations streamed into replica logs.
    pub observations_streamed: usize,
    /// Under-replicated cells seen by the first digest sweep.
    pub under_replicated_before: usize,
    /// Under-replicated cells remaining after the last sweep (0 iff the
    /// invocation converged within its budget).
    pub under_replicated_after: usize,
    /// Whether the final digest sweep found nothing left to do — no
    /// deficits, no garbage, no stray primary copies. `false` means the
    /// round budget ran out first; re-invoke to continue.
    pub converged: bool,
}

/// One missing, diverged, or stale replica copy: `holder`'s replica log
/// for `owner` disagrees with `owner`'s primary shard at `cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Deficit {
    /// The cell's current owner (the source of truth to stream from).
    pub owner: NodeId,
    /// The required successor whose copy diverges.
    pub holder: NodeId,
    /// Packed macro-cell index (`row * cols + col`).
    pub cell: u32,
}

/// What one digest sweep says must change to restore the invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct RepairPlan {
    /// Copies to (re)stream, in deterministic `(owner, cell, holder)`
    /// order. Includes truncate-only entries where the holder has data
    /// the owner lacks.
    pub deficits: Vec<Deficit>,
    /// Replica log cells held by nodes that are no longer required
    /// successors of their primary — truncated without restreaming.
    pub garbage: Vec<Deficit>,
    /// Primary-shard copies of cells the map assigns elsewhere — left
    /// behind when a post-cutover evict failed. `holder` is the stale
    /// node, `owner` the cell's assigned owner. Drained into the owner
    /// (id dedup absorbs what already landed) and then truncated; until
    /// then the stale rows double-count in region scans over the holder.
    pub strays: Vec<Deficit>,
    /// Distinct owned cells with at least one missing/diverged copy at a
    /// required successor.
    pub under_replicated_cells: usize,
}

impl RepairPlan {
    /// Whether the sweep found nothing to do.
    pub fn is_converged(&self) -> bool {
        self.deficits.is_empty() && self.garbage.is_empty() && self.strays.is_empty()
    }
}

/// Compares one digest sweep against the invariant "every cell an alive
/// owner holds is mirrored at its `replication` alive ring successors"
/// and plans the streams/truncations that restore it.
///
/// `digests` maps each responding worker to its report; workers that did
/// not answer the sweep simply contribute nothing — their missing replica
/// digests surface as deficits, and their primary truth is skipped (it
/// could not be fetched from this round anyway).
pub(crate) fn plan(
    digests: &[(NodeId, DigestReport)],
    partition: &PartitionMap,
    alive: &HashSet<NodeId>,
    replication: usize,
) -> RepairPlan {
    let by_node: HashMap<NodeId, &DigestReport> = digests.iter().map(|(n, r)| (*n, r)).collect();
    let mut out = RepairPlan::default();
    if replication == 0 {
        return out;
    }
    let mut under: HashSet<(NodeId, u32)> = HashSet::new();
    let cols = partition.grid().cols();
    for &owner in partition.workers() {
        if !alive.contains(&owner) {
            continue;
        }
        let Some(report) = by_node.get(&owner) else {
            continue;
        };
        // Truth: the owner's primary digest, restricted to cells the plan
        // actually assigns to it (mid-rebalance a worker transiently
        // holds cells it is ceding; those need no replica coverage here).
        let truth: BTreeMap<u32, (u32, u64)> = report
            .primary
            .iter()
            .filter(|e| partition.owner_of_cell(CellId::new(e.cell % cols, e.cell / cols)) == owner)
            .map(|e| (e.cell, (e.count, e.checksum)))
            .collect();
        for holder in partition.alive_successors(owner, replication, alive) {
            let held: BTreeMap<u32, (u32, u64)> = by_node
                .get(&holder)
                .map(|r| {
                    r.replicas
                        .iter()
                        .filter(|e| e.primary == owner)
                        .map(|e| (e.cell, (e.count, e.checksum)))
                        .collect()
                })
                .unwrap_or_default();
            for (&cell, &digest) in &truth {
                if held.get(&cell) != Some(&digest) {
                    out.deficits.push(Deficit {
                        owner,
                        holder,
                        cell,
                    });
                    under.insert((owner, cell));
                }
            }
            // Cells the holder replicates but the owner no longer holds:
            // stale (evicted or migrated away) — stream of the (empty)
            // truth truncates them.
            for &cell in held.keys() {
                if !truth.contains_key(&cell) {
                    out.deficits.push(Deficit {
                        owner,
                        holder,
                        cell,
                    });
                }
            }
        }
    }
    // Replica logs held outside the required successor set. Only logs of
    // *alive* primaries are collected: an alive primary provably holds
    // every acked observation, so its stray copies are redundant. Logs of
    // dead primaries are left alone — they may still feed a promotion.
    for (&holder, report) in &by_node {
        for e in &report.replicas {
            if !alive.contains(&e.primary) {
                continue;
            }
            let required = partition
                .alive_successors(e.primary, replication, alive)
                .contains(&holder);
            if !required {
                out.garbage.push(Deficit {
                    owner: e.primary,
                    holder,
                    cell: e.cell,
                });
            }
        }
    }
    // Primary copies of cells the map assigns to somebody else: a ceded
    // cell whose evict was lost. Only flagged when the assigned owner is
    // alive — the drain has somewhere safe to put rows the owner may
    // still be missing before the stale copy is truncated.
    for (&holder, report) in &by_node {
        for e in &report.primary {
            let owner = partition.owner_of_cell(CellId::new(e.cell % cols, e.cell / cols));
            if owner != holder && alive.contains(&owner) {
                out.strays.push(Deficit {
                    owner,
                    holder,
                    cell: e.cell,
                });
            }
        }
    }
    out.deficits.sort_by_key(|d| (d.owner, d.cell, d.holder));
    out.garbage.sort_by_key(|d| (d.owner, d.cell, d.holder));
    out.strays.sort_by_key(|d| (d.owner, d.cell, d.holder));
    out.under_replicated_cells = under.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DigestEntry, ReplicaDigestEntry};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_geo::{Point, Timestamp};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(800.0, 800.0))
    }

    #[test]
    fn checksum_is_order_independent_and_content_sensitive() {
        let a = obs(1, 100, 10.0, 10.0);
        let b = obs(2, 200, 20.0, 20.0);
        let fold_ab = observation_checksum(&a) ^ observation_checksum(&b);
        let fold_ba = observation_checksum(&b) ^ observation_checksum(&a);
        assert_eq!(fold_ab, fold_ba);
        // A changed timestamp diverges the checksum even with equal ids.
        let mut late = a.clone();
        late.time = Timestamp::from_millis(999);
        assert_ne!(observation_checksum(&a), observation_checksum(&late));
    }

    #[test]
    fn digest_buckets_with_clamping() {
        let grid = GridSpec::covering(extent(), 400.0); // 2x2
        let inside = obs(1, 0, 100.0, 100.0); // cell 0
        let outside = obs(2, 0, -500.0, -500.0); // clamps to cell 0
        let far = obs(3, 0, 700.0, 700.0); // cell 3
        let digests = digest_observations(&grid, [&inside, &outside, &far]);
        assert_eq!(digests.len(), 2);
        assert_eq!((digests[0].0, digests[0].1), (0, 2));
        assert_eq!((digests[1].0, digests[1].1), (3, 1));
        assert_eq!(
            digests[0].2,
            observation_checksum(&inside) ^ observation_checksum(&outside)
        );
    }

    #[test]
    fn cell_region_extends_border_cells() {
        let grid = GridSpec::covering(extent(), 400.0); // 2x2
                                                        // Border cell 0 swallows everything below/left of the extent.
        assert!(cell_region(&grid, 0).contains(Point::new(-9_000.0, -9_000.0)));
        assert!(!cell_region(&grid, 0).contains(Point::new(500.0, 100.0)));
        // Interior edges stay half-open: a point on the shared edge is in
        // exactly one region.
        let edge = Point::new(400.0, 100.0);
        let containing: Vec<u32> = (0..4)
            .filter(|&c| cell_region(&grid, c).contains(edge))
            .collect();
        assert_eq!(containing, vec![1]);
    }

    fn workers(n: u32) -> Vec<NodeId> {
        (1..=n).map(NodeId).collect()
    }

    fn entry(cell: u32, count: u32, checksum: u64) -> DigestEntry {
        DigestEntry {
            cell,
            count,
            checksum,
        }
    }

    fn replica(primary: NodeId, cell: u32, count: u32, checksum: u64) -> ReplicaDigestEntry {
        ReplicaDigestEntry {
            primary,
            cell,
            count,
            checksum,
        }
    }

    #[test]
    fn plan_flags_stray_primary_copies_of_ceded_cells() {
        let partition = PartitionMap::uniform(extent(), 400.0, workers(3));
        let alive: HashSet<NodeId> = partition.workers().iter().copied().collect();
        let owner = partition.owner_of_cell(CellId::new(0, 0));
        // The required successor doubles as the stale holder: its replica
        // copy matches, so the only finding is the stray primary copy of
        // cell 0 (its evict was lost). Nothing is missing anywhere.
        let stale = partition.alive_successors(owner, 1, &alive)[0];
        let digests = vec![
            (
                owner,
                DigestReport {
                    primary: vec![entry(0, 2, 7)],
                    replicas: vec![],
                },
            ),
            (
                stale,
                DigestReport {
                    primary: vec![entry(0, 2, 7)],
                    replicas: vec![replica(owner, 0, 2, 7)],
                },
            ),
        ];
        let plan = plan(&digests, &partition, &alive, 1);
        assert_eq!(
            plan.strays,
            vec![Deficit {
                owner,
                holder: stale,
                cell: 0
            }]
        );
        assert_eq!(plan.under_replicated_cells, 0, "no data is missing");
        assert!(!plan.is_converged(), "strays block convergence");
    }

    #[test]
    fn plan_flags_missing_and_diverged_copies() {
        let partition = PartitionMap::uniform(extent(), 400.0, workers(3));
        let alive: HashSet<NodeId> = partition.workers().iter().copied().collect();
        // Owner of each cell per the uniform map.
        let cell0_owner = partition.owner_of_cell(CellId::new(0, 0));
        let succ = partition.alive_successors(cell0_owner, 1, &alive);
        let holder = succ[0];
        // Owner holds cell 0 with checksum 7; holder's copy diverges.
        let digests = vec![
            (
                cell0_owner,
                DigestReport {
                    primary: vec![entry(0, 2, 7)],
                    replicas: vec![],
                },
            ),
            (
                holder,
                DigestReport {
                    primary: vec![],
                    replicas: vec![replica(cell0_owner, 0, 2, 99)],
                },
            ),
        ];
        let plan = plan(&digests, &partition, &alive, 1);
        assert_eq!(
            plan.deficits,
            vec![Deficit {
                owner: cell0_owner,
                holder,
                cell: 0
            }]
        );
        assert_eq!(plan.under_replicated_cells, 1);
        assert!(!plan.is_converged());
        // A matching copy converges.
        let digests = vec![
            (
                cell0_owner,
                DigestReport {
                    primary: vec![entry(0, 2, 7)],
                    replicas: vec![],
                },
            ),
            (
                holder,
                DigestReport {
                    primary: vec![],
                    replicas: vec![replica(cell0_owner, 0, 2, 7)],
                },
            ),
        ];
        let plan = super::plan(&digests, &partition, &alive, 1);
        assert!(plan.is_converged());
        assert_eq!(plan.under_replicated_cells, 0);
    }

    #[test]
    fn plan_truncates_stale_replica_cells_without_counting_them_under() {
        let partition = PartitionMap::uniform(extent(), 400.0, workers(2));
        let alive: HashSet<NodeId> = partition.workers().iter().copied().collect();
        let owner = partition.owner_of_cell(CellId::new(0, 0));
        let holder = partition.alive_successors(owner, 1, &alive)[0];
        // Holder replicates a cell the owner no longer holds at all.
        let digests = vec![
            (owner, DigestReport::default()),
            (
                holder,
                DigestReport {
                    primary: vec![],
                    replicas: vec![replica(owner, 0, 5, 123)],
                },
            ),
        ];
        let plan = plan(&digests, &partition, &alive, 1);
        assert_eq!(plan.deficits.len(), 1);
        assert_eq!(plan.under_replicated_cells, 0, "no data is missing");
    }

    #[test]
    fn plan_collects_garbage_only_for_alive_primaries() {
        let partition = PartitionMap::uniform(extent(), 400.0, workers(4));
        let mut alive: HashSet<NodeId> = partition.workers().iter().copied().collect();
        // NodeId(3) holds logs for primaries 1 and 4. With r=1 and
        // everyone alive, 3 is a required successor of neither (1's
        // successor is 2, 4's wraps to 1), so both logs are garbage.
        let digests = vec![
            (NodeId(1), DigestReport::default()),
            (NodeId(2), DigestReport::default()),
            (
                NodeId(3),
                DigestReport {
                    primary: vec![],
                    replicas: vec![replica(NodeId(1), 0, 1, 1), replica(NodeId(4), 1, 1, 1)],
                },
            ),
            (NodeId(4), DigestReport::default()),
        ];
        let plan1 = plan(&digests, &partition, &alive, 1);
        assert_eq!(
            plan1.garbage,
            vec![
                Deficit {
                    owner: NodeId(1),
                    holder: NodeId(3),
                    cell: 0
                },
                Deficit {
                    owner: NodeId(4),
                    holder: NodeId(3),
                    cell: 1
                }
            ]
        );
        // With 4 dead, its log at 3 must be preserved (promotion fodder);
        // only the alive primary's stray log remains collectable.
        alive.remove(&NodeId(4));
        let plan2 = plan(&digests, &partition, &alive, 1);
        assert_eq!(
            plan2.garbage,
            vec![Deficit {
                owner: NodeId(1),
                holder: NodeId(3),
                cell: 0
            }]
        );
    }

    #[test]
    fn plan_walks_ring_past_dead_successors() {
        let partition = PartitionMap::uniform(extent(), 400.0, workers(3));
        let mut alive: HashSet<NodeId> = partition.workers().iter().copied().collect();
        alive.remove(&NodeId(2));
        // Owner 1's required successor with r=1 is now 3 (walks past 2).
        // 3 holds nothing, so the cell is under-replicated.
        let digests = vec![
            (
                NodeId(1),
                DigestReport {
                    primary: vec![entry(0, 1, 42)],
                    replicas: vec![],
                },
            ),
            (NodeId(3), DigestReport::default()),
        ];
        // Only meaningful if 1 owns cell 0 under this map.
        if partition.owner_of_cell(CellId::new(0, 0)) != NodeId(1) {
            return;
        }
        let plan = plan(&digests, &partition, &alive, 1);
        assert_eq!(
            plan.deficits,
            vec![Deficit {
                owner: NodeId(1),
                holder: NodeId(3),
                cell: 0
            }]
        );
    }

    #[test]
    fn replication_zero_plans_nothing() {
        let partition = PartitionMap::uniform(extent(), 400.0, workers(3));
        let alive: HashSet<NodeId> = partition.workers().iter().copied().collect();
        let digests = vec![(
            NodeId(1),
            DigestReport {
                primary: vec![entry(0, 9, 9)],
                replicas: vec![replica(NodeId(2), 0, 1, 1)],
            },
        )];
        assert!(plan(&digests, &partition, &alive, 0).is_converged());
    }
}
