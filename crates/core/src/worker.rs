//! Worker nodes: shard storage and sub-query serving.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use stcam_camnet::{Observation, ObservationId};
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_index::{IndexConfig, StIndex};
use stcam_net::{Endpoint, Envelope, MessageKind, NodeId};

use crate::continuous::{ContinuousQueryId, Notification, Predicate};
use crate::protocol::{Request, Response, WorkerStatsMsg};

/// Per-sender sequence numbers remembered for retransmission dedup;
/// lowest are evicted beyond this. 256 far exceeds any sender's in-flight
/// window, so a live retransmission always hits the memory.
const SEQ_MEMORY: usize = 256;

/// The worker's slice of the routing plan: the macro grid plus the set of
/// cells (packed `row * cols + col`) this worker owns as of `epoch`.
/// Installed by [`Request::RouteUpdate`]; used to reject misrouted
/// sequenced ingest from stale senders.
#[derive(Debug)]
struct RouteInfo {
    epoch: u64,
    grid: stcam_geo::GridSpec,
    cells: HashSet<u32>,
}

impl RouteInfo {
    fn owns(&self, position: stcam_geo::Point) -> bool {
        let cell = self.grid.cell_of_clamped(position);
        self.cells
            .contains(&(cell.row * self.grid.cols() + cell.col))
    }
}

/// Remembered responses per sender, keyed by batch sequence number.
/// A retransmitted `(sender, seq)` is answered from here without being
/// re-applied — the idempotence half of reliable ingest.
#[derive(Debug, Default)]
struct SeqMemory {
    answered: HashMap<NodeId, BTreeMap<u64, Response>>,
}

impl SeqMemory {
    fn replay(&self, sender: NodeId, seq: u64) -> Option<Response> {
        self.answered.get(&sender)?.get(&seq).cloned()
    }

    fn remember(&mut self, sender: NodeId, seq: u64, response: Response) {
        let table = self.answered.entry(sender).or_default();
        table.insert(seq, response);
        while table.len() > SEQ_MEMORY {
            let oldest = *table.keys().next().expect("non-empty table");
            table.remove(&oldest);
        }
    }
}

/// Static configuration of one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Configuration of the local shard index.
    pub index: IndexConfig,
    /// Ring successors that receive replicas of this worker's ingest
    /// (empty disables replication).
    pub replicas: Vec<NodeId>,
}

/// A worker node: owns the local shard, answers sub-queries from the
/// coordinator, evaluates continuous-query predicates at ingest time, and
/// forwards replicas to its ring successors.
///
/// Normally driven via [`Worker::spawn`], which runs the serving loop on a
/// dedicated thread until [`WorkerHandle::shutdown`] (or fabric crash).
/// [`Worker::handle_request`] is public for deterministic single-threaded
/// tests.
#[derive(Debug)]
pub struct Worker {
    endpoint: Endpoint,
    config: WorkerConfig,
    index: StIndex,
    /// Append-only replica logs, one per primary this worker backs up.
    replica_logs: HashMap<NodeId, Vec<Observation>>,
    /// Ids present in each replica log, so sequenced replica writes and
    /// promote-time re-replication never append the same observation twice.
    replica_seen: HashMap<NodeId, HashSet<ObservationId>>,
    continuous: HashMap<ContinuousQueryId, (Predicate, NodeId)>,
    /// Routing slice installed by `RouteUpdate` (absent until the first
    /// update; an uninstalled route accepts everything, preserving legacy
    /// single-worker setups that never publish a plan).
    route: Option<RouteInfo>,
    /// Retransmission memory for `IngestSeq`, keyed `(sender, seq)`.
    ingest_seqs: SeqMemory,
    /// Retransmission memory for `ReplicateSeq` (separate namespace).
    replicate_seqs: SeqMemory,
    /// Ids ever inserted into the primary index via sequenced ingest or
    /// promotion — the second dedup line for batches that reach this
    /// worker under a *different* `(sender, seq)` after a failover.
    seen: HashSet<ObservationId>,
    ingested_total: u64,
    notifications_sent: u64,
    busy: std::time::Duration,
    /// Requests served, keyed by operation name.
    served: HashMap<&'static str, u64>,
}

/// One row of the dispatch table: an operation name and its handler.
type Handler = fn(&mut Worker, Request) -> Response;

/// The worker's dispatch table, keyed by [`Request::op_name`]. Adding a
/// request kind means adding exactly one row here plus its handler.
const DISPATCH: &[(&str, Handler)] = &[
    ("ping", Worker::serve_ping),
    ("ingest", Worker::serve_ingest),
    ("replicate", Worker::serve_replicate),
    ("range", Worker::serve_range),
    ("knn", Worker::serve_knn),
    ("heatmap", Worker::serve_heatmap),
    ("top_cells", Worker::serve_top_cells),
    ("register_continuous", Worker::serve_register_continuous),
    ("unregister_continuous", Worker::serve_unregister_continuous),
    ("snapshot_replica", Worker::serve_snapshot_replica),
    ("adopt", Worker::serve_adopt),
    ("promote", Worker::serve_promote),
    ("extract_region", Worker::serve_extract_region),
    ("range_filtered", Worker::serve_range_filtered),
    ("stats", Worker::serve_stats),
    ("evict_before", Worker::serve_evict_before),
    ("replica_read", Worker::serve_replica_read),
    ("ingest_seq", Worker::serve_ingest_seq),
    ("replicate_seq", Worker::serve_replicate_seq),
    ("route_update", Worker::serve_route_update),
    ("cell_digest", Worker::serve_cell_digest),
    ("repair", Worker::serve_repair),
    ("rejoin", Worker::serve_rejoin),
    ("segment_digest", Worker::serve_segment_digest),
    ("export_segments", Worker::serve_export_segments),
    ("install_segments", Worker::serve_install_segments),
];

impl Worker {
    /// Creates a worker serving on `endpoint`.
    pub fn new(endpoint: Endpoint, config: WorkerConfig) -> Self {
        let index = StIndex::new(config.index.clone());
        Worker {
            endpoint,
            config,
            index,
            replica_logs: HashMap::new(),
            replica_seen: HashMap::new(),
            continuous: HashMap::new(),
            route: None,
            ingest_seqs: SeqMemory::default(),
            replicate_seqs: SeqMemory::default(),
            seen: HashSet::new(),
            ingested_total: 0,
            notifications_sent: 0,
            busy: std::time::Duration::ZERO,
            served: HashMap::new(),
        }
    }

    /// This worker's node id.
    pub fn id(&self) -> NodeId {
        self.endpoint.id()
    }

    /// Spawns the serving loop on a new thread.
    pub fn spawn(endpoint: Endpoint, config: WorkerConfig) -> WorkerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_clone = Arc::clone(&stop);
        let id = endpoint.id();
        let join = std::thread::Builder::new()
            .name(format!("stcam-worker-{}", id.0))
            .spawn(move || {
                let mut worker = Worker::new(endpoint, config);
                worker.run(&stop_clone);
            })
            .expect("spawn worker thread");
        WorkerHandle {
            stop,
            join: Some(join),
        }
    }

    /// Serves requests until `stop` is set.
    pub fn run(&mut self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            let Some(envelope) = self.endpoint.recv_timeout(StdDuration::from_millis(20)) else {
                continue;
            };
            self.dispatch(envelope);
        }
    }

    fn dispatch(&mut self, envelope: Envelope) {
        let request = match decode_from_slice::<Request>(&envelope.payload) {
            Ok(r) => r,
            Err(e) => {
                if envelope.kind == MessageKind::Request {
                    let resp = Response::Error(format!("bad request: {e}"));
                    let _ = self.endpoint.reply(&envelope, encode_to_vec(&resp));
                }
                return;
            }
        };
        let started = std::time::Instant::now();
        let response = self.handle_request(request);
        self.busy += started.elapsed();
        if envelope.kind == MessageKind::Request {
            let _ = self.endpoint.reply(&envelope, encode_to_vec(&response));
        }
    }

    /// Executes one request against local state and produces the response.
    ///
    /// Dispatch is table-driven by [`Request::op_name`] over [`DISPATCH`];
    /// every served request increments that operation's serve counter.
    /// Side-effecting requests (`Ingest`, `Promote`, `Adopt`) also emit
    /// replica and notification traffic through the endpoint.
    pub fn handle_request(&mut self, request: Request) -> Response {
        let name = request.op_name();
        match DISPATCH.iter().find(|(op, _)| *op == name) {
            Some(&(op, handler)) => {
                *self.served.entry(op).or_insert(0) += 1;
                handler(self, request)
            }
            None => Response::Error(format!("no handler for operation {name}")),
        }
    }

    /// A request routed to the wrong handler — only reachable if the
    /// dispatch table and [`Request::op_name`] disagree.
    fn misrouted(request: &Request) -> Response {
        Response::Error(format!(
            "request {} misrouted in dispatch table",
            request.op_name()
        ))
    }

    fn serve_ping(&mut self, _request: Request) -> Response {
        Response::Ack
    }

    fn serve_ingest(&mut self, request: Request) -> Response {
        let Request::Ingest(batch) = request else {
            return Self::misrouted(&request);
        };
        self.ingest(batch);
        Response::Ack
    }

    fn serve_replicate(&mut self, request: Request) -> Response {
        let Request::Replicate { primary, batch } = request else {
            return Self::misrouted(&request);
        };
        self.append_replica(primary, batch);
        Response::Ack
    }

    /// Appends `batch` to the replica log held for `primary`, skipping
    /// observations already present (sender-side replication and
    /// promote-time re-replication may both deliver the same data).
    fn append_replica(&mut self, primary: NodeId, batch: Vec<Observation>) {
        let log = self.replica_logs.entry(primary).or_default();
        let ids = self.replica_seen.entry(primary).or_default();
        for obs in batch {
            if ids.insert(obs.id) {
                log.push(obs);
            }
        }
    }

    fn serve_ingest_seq(&mut self, request: Request) -> Response {
        let Request::IngestSeq {
            sender,
            seq,
            epoch,
            batch,
        } = request
        else {
            return Self::misrouted(&request);
        };
        // Retransmission of an already-answered batch: replay the stored
        // answer without re-applying (idempotent retry).
        if let Some(answer) = self.ingest_seqs.replay(sender, seq) {
            return answer;
        }
        // Partition the batch into observations this worker owns under
        // its installed routing slice and ones a stale sender misrouted.
        // A sender whose routing epoch is *newer* than the installed slice
        // is better informed (this worker missed a broadcast, e.g. on a
        // lossy link): accept permissively instead of NACKing writes the
        // newest plan really does route here, which would livelock the
        // sender's redo loop.
        let (owned, misrouted): (Vec<Observation>, Vec<Observation>) = match &self.route {
            Some(route) if route.epoch >= epoch => {
                batch.into_iter().partition(|o| route.owns(o.position))
            }
            _ => (batch, Vec::new()),
        };
        let accepted = owned.len() as u32;
        self.ingested_total += owned.len() as u64;
        self.notify_continuous(&owned);
        // No onward replication here: the *sender* replicates (via
        // `ReplicateSeq`) before counting the batch durable, so the ack
        // below certifies exactly this worker's copy.
        let fresh: Vec<Observation> = owned
            .into_iter()
            .filter(|o| self.seen.insert(o.id))
            .collect();
        self.index.insert_batch(fresh);
        let answer = if misrouted.is_empty() {
            Response::IngestAck { seq, accepted }
        } else {
            Response::IngestNack {
                seq,
                accepted,
                epoch: self.route.as_ref().map_or(0, |r| r.epoch),
                misrouted: misrouted.into_iter().map(|o| o.id).collect(),
            }
        };
        self.ingest_seqs.remember(sender, seq, answer.clone());
        answer
    }

    fn serve_replicate_seq(&mut self, request: Request) -> Response {
        let Request::ReplicateSeq {
            sender,
            seq,
            primary,
            batch,
        } = request
        else {
            return Self::misrouted(&request);
        };
        if let Some(answer) = self.replicate_seqs.replay(sender, seq) {
            return answer;
        }
        let accepted = batch.len() as u32;
        self.append_replica(primary, batch);
        let answer = Response::IngestAck { seq, accepted };
        self.replicate_seqs.remember(sender, seq, answer.clone());
        answer
    }

    fn serve_route_update(&mut self, request: Request) -> Response {
        let Request::RouteUpdate { epoch, grid, cells } = request else {
            return Self::misrouted(&request);
        };
        if self.route.as_ref().is_none_or(|r| epoch >= r.epoch) {
            self.route = Some(RouteInfo {
                epoch,
                grid: grid.to_grid(),
                cells: cells.into_iter().collect(),
            });
        }
        Response::Ack
    }

    /// Answers the anti-entropy sweep: sparse per-cell count/checksum
    /// digests over the primary shard and every held replica log,
    /// bucketed by the request's grid with clamping (the ingest routing
    /// rule), so the coordinator can compare copies without moving data.
    fn serve_cell_digest(&mut self, request: Request) -> Response {
        let Request::CellDigest { grid } = request else {
            return Self::misrouted(&request);
        };
        let grid = grid.to_grid();
        // Stream the shard through the accumulator instead of
        // materialising it: sealed segments decode block by block.
        let mut acc = crate::repair::DigestAccumulator::new(&grid);
        self.index.for_each(|o| acc.add(o));
        let primary = acc
            .finish()
            .into_iter()
            .map(|(cell, count, checksum)| crate::protocol::DigestEntry {
                cell,
                count,
                checksum,
            })
            .collect();
        let mut replicas: Vec<crate::protocol::ReplicaDigestEntry> = Vec::new();
        for (&of, log) in &self.replica_logs {
            replicas.extend(
                crate::repair::digest_observations(&grid, log.iter())
                    .into_iter()
                    .map(
                        |(cell, count, checksum)| crate::protocol::ReplicaDigestEntry {
                            primary: of,
                            cell,
                            count,
                            checksum,
                        },
                    ),
            );
        }
        replicas.sort_by_key(|e| (e.primary, e.cell));
        Response::Digests(crate::protocol::DigestReport { primary, replicas })
    }

    /// Applies one repair stream chunk. `truncate` first removes the
    /// cell's current contents (and their dedup ids), so a full stream is
    /// an idempotent overwrite; appends then pass through the id filter,
    /// making chunk retransmissions harmless. `primary == self` targets
    /// the primary shard (the rejoin/rebalance bulk-sync path); any other
    /// primary targets the replica log held for it.
    fn serve_repair(&mut self, request: Request) -> Response {
        let Request::Repair {
            primary,
            grid,
            cell,
            truncate,
            batch,
        } = request
        else {
            return Self::misrouted(&request);
        };
        let region = crate::repair::cell_region(&grid.to_grid(), cell);
        if primary == self.endpoint.id() {
            if truncate {
                for removed in self.index.extract_range(region) {
                    self.seen.remove(&removed.id);
                }
            }
            let fresh: Vec<Observation> = batch
                .into_iter()
                .filter(|o| self.seen.insert(o.id))
                .collect();
            self.index.insert_batch(fresh);
        } else {
            let log = self.replica_logs.entry(primary).or_default();
            let ids = self.replica_seen.entry(primary).or_default();
            if truncate {
                log.retain(|o| {
                    let stale = region.contains(o.position);
                    if stale {
                        ids.remove(&o.id);
                    }
                    !stale
                });
            }
            for o in batch {
                if ids.insert(o.id) {
                    log.push(o);
                }
            }
            // An emptied log reads as "nothing held for that primary",
            // matching a fresh worker.
            if log.is_empty() {
                self.replica_logs.remove(&primary);
                self.replica_seen.remove(&primary);
            }
        }
        Response::Ack
    }

    /// Readmission handshake for a restarted worker: drop **all** local
    /// state (the pre-crash incarnation's shard, replica logs, dedup and
    /// retransmission memory, standing queries) and install the new
    /// epoch-stamped routing slice. The coordinator then bulk-syncs the
    /// shard via [`Request::Repair`] and re-registers standing queries
    /// before publishing the plan that re-admits this node. Idempotent:
    /// re-clearing an empty worker and re-installing the same route are
    /// no-ops.
    fn serve_rejoin(&mut self, request: Request) -> Response {
        let Request::Rejoin { epoch, grid, cells } = request else {
            return Self::misrouted(&request);
        };
        self.index = StIndex::new(self.config.index.clone());
        self.replica_logs.clear();
        self.replica_seen.clear();
        self.seen.clear();
        self.continuous.clear();
        self.ingest_seqs = SeqMemory::default();
        self.replicate_seqs = SeqMemory::default();
        self.route = Some(RouteInfo {
            epoch,
            grid: grid.to_grid(),
            cells: cells.into_iter().collect(),
        });
        Response::Ack
    }

    /// Reports the digests of every sealed segment in the primary shard,
    /// so a bulk-sync peer can ask for only the segments it lacks.
    fn serve_segment_digest(&mut self, request: Request) -> Response {
        let Request::SegmentDigest = request else {
            return Self::misrouted(&request);
        };
        Response::SegmentDigests(
            self.index
                .segment_digests()
                .into_iter()
                .map(Into::into)
                .collect(),
        )
    }

    /// Exports the shard contents overlapping a region as whole sealed
    /// segment frames (split at cell boundaries, skipping digests the
    /// requester already holds) plus the loose mutable-head rows. The
    /// export reads without mutating, so it is safe to retry and the
    /// deterministic split keeps retried frames digest-identical.
    fn serve_export_segments(&mut self, request: Request) -> Response {
        let Request::ExportSegments { region, skip } = request else {
            return Self::misrouted(&request);
        };
        let skip: Vec<stcam_index::SegmentDigest> = skip
            .into_iter()
            .map(crate::protocol::SegmentDigestEntry::to_digest)
            .collect();
        let (frames, head) = self.index.export_segments(region, &skip);
        Response::Segments { frames, head }
    }

    /// Installs exported segments whole into the archive tier — the
    /// frames were verified during decode-time reconstruction, so no
    /// row-by-row re-indexing happens — and routes loose head rows
    /// through the normal deduplicated ingest. Duplicate frames (digest
    /// already held) and already-seen rows are dropped, making
    /// retransmission harmless.
    fn serve_install_segments(&mut self, request: Request) -> Response {
        let Request::InstallSegments { frames, head } = request else {
            return Self::misrouted(&request);
        };
        for frame in frames {
            let segment = match stcam_index::SealedSegment::from_frame(frame) {
                Ok(segment) => segment,
                Err(e) => return Response::Error(format!("bad segment frame: {e:?}")),
            };
            // The dedup filter must know the archived ids even though the
            // rows never pass through insert; decode once up front.
            let rows = segment.unseal();
            if self.index.install_segment(segment) {
                for o in &rows {
                    self.seen.insert(o.id);
                }
            }
        }
        let fresh: Vec<Observation> = head
            .into_iter()
            .filter(|o| self.seen.insert(o.id))
            .collect();
        self.index.insert_batch(fresh);
        Response::Ack
    }

    fn serve_range(&mut self, request: Request) -> Response {
        let Request::Range { region, window } = request else {
            return Self::misrouted(&request);
        };
        Response::Observations(self.index.range(region, window))
    }

    fn serve_knn(&mut self, request: Request) -> Response {
        let Request::Knn {
            at,
            window,
            k,
            max_distance,
        } = request
        else {
            return Self::misrouted(&request);
        };
        let mut hits: Vec<Observation> = self.index.knn(at, window, k as usize);
        if let Some(limit) = max_distance {
            hits.retain(|o| at.distance(o.position) <= limit);
        }
        Response::Observations(hits)
    }

    fn serve_heatmap(&mut self, request: Request) -> Response {
        let Request::Heatmap { buckets, window } = request else {
            return Self::misrouted(&request);
        };
        Response::Counts(self.index.heatmap(&buckets.to_grid(), window))
    }

    fn serve_top_cells(&mut self, request: Request) -> Response {
        let Request::TopCells { buckets, window } = request else {
            return Self::misrouted(&request);
        };
        // Sparse partial aggregate: only occupied buckets go on the wire.
        let cells = self
            .index
            .heatmap(&buckets.to_grid(), window)
            .into_iter()
            .enumerate()
            .filter(|&(_, count)| count > 0)
            .map(|(idx, count)| (idx as u32, count))
            .collect();
        Response::CellCounts(cells)
    }

    fn serve_register_continuous(&mut self, request: Request) -> Response {
        let Request::RegisterContinuous {
            id,
            predicate,
            notify,
        } = request
        else {
            return Self::misrouted(&request);
        };
        self.continuous.insert(id, (predicate, notify));
        Response::Ack
    }

    fn serve_unregister_continuous(&mut self, request: Request) -> Response {
        let Request::UnregisterContinuous(id) = request else {
            return Self::misrouted(&request);
        };
        self.continuous.remove(&id);
        Response::Ack
    }

    fn serve_snapshot_replica(&mut self, request: Request) -> Response {
        let Request::SnapshotReplica { of } = request else {
            return Self::misrouted(&request);
        };
        Response::Observations(self.replica_logs.get(&of).cloned().unwrap_or_default())
    }

    fn serve_adopt(&mut self, request: Request) -> Response {
        let Request::Adopt(batch) = request else {
            return Self::misrouted(&request);
        };
        self.index.insert_batch(batch);
        Response::Ack
    }

    fn serve_promote(&mut self, request: Request) -> Response {
        let Request::Promote { failed } = request else {
            return Self::misrouted(&request);
        };
        let log = self.replica_logs.remove(&failed).unwrap_or_default();
        self.replica_seen.remove(&failed);
        self.replicate(&log);
        // The same observations may already be primary here — a sender
        // whose ack from `failed` was lost retransmits to this worker
        // after failover. Promote through the seen-id filter so they
        // count once; a retried `Promote` is likewise a no-op (the log
        // was removed above).
        let fresh: Vec<Observation> = log.into_iter().filter(|o| self.seen.insert(o.id)).collect();
        self.index.insert_batch(fresh);
        Response::Ack
    }

    fn serve_extract_region(&mut self, request: Request) -> Response {
        let Request::ExtractRegion { region } = request else {
            return Self::misrouted(&request);
        };
        // Extraction cedes ownership of the data, so the extracted ids
        // must leave the dedup set too — if the cell migrates back here
        // later, the repair stream's appends have to be accepted again.
        let extracted = self.index.extract_range(region);
        for o in &extracted {
            self.seen.remove(&o.id);
        }
        Response::Observations(extracted)
    }

    fn serve_range_filtered(&mut self, request: Request) -> Response {
        let Request::RangeFiltered {
            region,
            window,
            class,
        } = request
        else {
            return Self::misrouted(&request);
        };
        match stcam_world::EntityClass::from_u8(class) {
            Some(class) => Response::Observations(
                self.index
                    .range(region, window)
                    .into_iter()
                    .filter(|o| o.class == class)
                    .collect(),
            ),
            None => Response::Error(format!("invalid class {class}")),
        }
    }

    /// Answers a read against the replica log held for an unreachable
    /// primary. The log is an unindexed append-only vector, so every
    /// replica read is a scan — acceptable for the degraded path, which
    /// only runs while the primary is down.
    fn serve_replica_read(&mut self, request: Request) -> Response {
        let Request::ReplicaRead { of, inner } = request else {
            return Self::misrouted(&request);
        };
        let log: &[Observation] = self.replica_logs.get(&of).map_or(&[], |v| v.as_slice());
        match *inner {
            Request::Range { region, window } => Response::Observations(
                log.iter()
                    .filter(|o| region.contains(o.position) && window.contains(o.time))
                    .cloned()
                    .collect(),
            ),
            Request::RangeFiltered {
                region,
                window,
                class,
            } => match stcam_world::EntityClass::from_u8(class) {
                Some(class) => Response::Observations(
                    log.iter()
                        .filter(|o| {
                            o.class == class
                                && region.contains(o.position)
                                && window.contains(o.time)
                        })
                        .cloned()
                        .collect(),
                ),
                None => Response::Error(format!("invalid class {class}")),
            },
            Request::Knn {
                at,
                window,
                k,
                max_distance,
            } => {
                let mut hits: Vec<Observation> = log
                    .iter()
                    .filter(|o| window.contains(o.time))
                    .cloned()
                    .collect();
                crate::exec::sort_knn(&mut hits, at);
                hits.truncate(k as usize);
                if let Some(limit) = max_distance {
                    hits.retain(|o| at.distance(o.position) <= limit);
                }
                Response::Observations(hits)
            }
            Request::Heatmap { buckets, window } => {
                Response::Counts(Self::log_heatmap(log, &buckets.to_grid(), window))
            }
            Request::TopCells { buckets, window } => Response::CellCounts(
                Self::log_heatmap(log, &buckets.to_grid(), window)
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, count)| count > 0)
                    .map(|(idx, count)| (idx as u32, count))
                    .collect(),
            ),
            other => Response::Error(format!("{} is not replica-readable", other.op_name())),
        }
    }

    /// Dense per-bucket counts over an unindexed replica log, matching the
    /// bucket flattening of `StIndex::heatmap` (row-major).
    fn log_heatmap(
        log: &[Observation],
        grid: &stcam_geo::GridSpec,
        window: stcam_geo::TimeInterval,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; grid.cell_count() as usize];
        for o in log {
            if !window.contains(o.time) {
                continue;
            }
            if let Some(cell) = grid.cell_of(o.position) {
                counts[cell.row as usize * grid.cols() as usize + cell.col as usize] += 1;
            }
        }
        counts
    }

    fn serve_stats(&mut self, _request: Request) -> Response {
        Response::Stats(self.stats())
    }

    fn serve_evict_before(&mut self, request: Request) -> Response {
        let Request::EvictBefore(cutoff) = request else {
            return Self::misrouted(&request);
        };
        self.index.evict_before(cutoff);
        for log in self.replica_logs.values_mut() {
            log.retain(|o| o.time >= cutoff);
        }
        Response::Ack
    }

    fn ingest(&mut self, batch: Vec<Observation>) {
        self.ingested_total += batch.len() as u64;
        self.notify_continuous(&batch);
        self.replicate(&batch);
        self.index.insert_batch(batch);
    }

    /// Forwards a copy of `batch` to every replica successor (one-way:
    /// ingest latency is not serialized behind replica acknowledgements;
    /// the window of loss this leaves open is measured by the recovery
    /// experiment).
    fn replicate(&mut self, batch: &[Observation]) {
        if batch.is_empty() || self.config.replicas.is_empty() {
            return;
        }
        let message = encode_to_vec(&Request::Replicate {
            primary: self.endpoint.id(),
            batch: batch.to_vec(),
        });
        for &replica in &self.config.replicas {
            let _ = self.endpoint.send(replica, message.clone());
        }
    }

    fn notify_continuous(&mut self, batch: &[Observation]) {
        if self.continuous.is_empty() {
            return;
        }
        // Group matches per query so each ingest batch costs at most one
        // notification message per matching query.
        let mut outgoing: Vec<(NodeId, Notification)> = Vec::new();
        for (&id, (predicate, notify)) in &self.continuous {
            let matches: Vec<Observation> = batch
                .iter()
                .filter(|o| predicate.matches(o))
                .cloned()
                .collect();
            if !matches.is_empty() {
                outgoing.push((*notify, Notification { query: id, matches }));
            }
        }
        for (notify, notification) in outgoing {
            if self
                .endpoint
                .send(notify, encode_to_vec(&notification))
                .is_ok()
            {
                self.notifications_sent += 1;
            }
        }
    }

    /// Local statistics.
    pub fn stats(&self) -> WorkerStatsMsg {
        let mut served: Vec<(String, u64)> = self
            .served
            .iter()
            .map(|(&op, &n)| (op.to_string(), n))
            .collect();
        served.sort();
        let index_stats = self.index.stats();
        WorkerStatsMsg {
            primary_observations: self.index.len() as u64,
            replica_observations: self.replica_logs.values().map(|v| v.len() as u64).sum(),
            ingested_total: self.ingested_total,
            notifications_sent: self.notifications_sent,
            continuous_queries: self.continuous.len() as u64,
            busy_micros: self.busy.as_micros() as u64,
            resident_bytes: index_stats.resident_bytes as u64,
            sealed_segments: index_stats.sealed_segments as u64,
            newest_ms: index_stats.newest.map(|t| t.as_millis()),
            served,
        }
    }

    /// Read access to the shard index (tests and embedded use).
    pub fn index(&self) -> &StIndex {
        &self.index
    }
}

/// Owner handle of a spawned worker thread.
#[derive(Debug)]
pub struct WorkerHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl WorkerHandle {
    /// Stops the serving loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
    use stcam_net::{Fabric, LinkModel};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn index_config() -> IndexConfig {
        IndexConfig::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            50.0,
            Duration::from_secs(10),
        )
    }

    fn lone_worker() -> (Fabric, Worker) {
        let fabric = Fabric::new(LinkModel::instant());
        let endpoint = fabric.register(NodeId(1));
        let worker = Worker::new(
            endpoint,
            WorkerConfig {
                index: index_config(),
                replicas: vec![],
            },
        );
        (fabric, worker)
    }

    fn window_all() -> TimeInterval {
        TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(1_000))
    }

    #[test]
    fn ingest_then_range() {
        let (_fabric, mut worker) = lone_worker();
        assert_eq!(
            worker.handle_request(Request::Ingest(vec![obs(0, 500, 10.0, 10.0)])),
            Response::Ack
        );
        let resp = worker.handle_request(Request::Range {
            region: BBox::around(Point::new(10.0, 10.0), 5.0),
            window: window_all(),
        });
        match resp {
            Response::Observations(hits) => assert_eq!(hits.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn knn_respects_max_distance() {
        let (_fabric, mut worker) = lone_worker();
        worker.handle_request(Request::Ingest(vec![
            obs(0, 0, 10.0, 0.0),
            obs(1, 0, 100.0, 0.0),
        ]));
        let resp = worker.handle_request(Request::Knn {
            at: Point::new(0.0, 0.0),
            window: window_all(),
            k: 5,
            max_distance: Some(50.0),
        });
        match resp {
            Response::Observations(hits) => {
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].id.seq(), 0);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn replication_reaches_successors() {
        let fabric = Fabric::new(LinkModel::instant());
        let primary_ep = fabric.register(NodeId(1));
        let replica_ep = fabric.register(NodeId(2));
        let mut primary = Worker::new(
            primary_ep,
            WorkerConfig {
                index: index_config(),
                replicas: vec![NodeId(2)],
            },
        );
        let mut replica = Worker::new(
            replica_ep,
            WorkerConfig {
                index: index_config(),
                replicas: vec![],
            },
        );
        primary.handle_request(Request::Ingest(vec![
            obs(0, 0, 1.0, 1.0),
            obs(1, 0, 2.0, 2.0),
        ]));
        // Deliver the replicate message by hand.
        let env = replica
            .endpoint
            .recv_timeout(StdDuration::from_secs(1))
            .unwrap();
        replica.dispatch(env);
        let stats = replica.stats();
        assert_eq!(stats.replica_observations, 2);
        assert_eq!(stats.primary_observations, 0);
        // Snapshot exports exactly the replica log.
        match replica.handle_request(Request::SnapshotReplica { of: NodeId(1) }) {
            Response::Observations(log) => assert_eq!(log.len(), 2),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn promote_moves_replica_log_into_index() {
        let fabric = Fabric::new(LinkModel::instant());
        let ep = fabric.register(NodeId(2));
        let _other = fabric.register(NodeId(3));
        let mut worker = Worker::new(
            ep,
            WorkerConfig {
                index: index_config(),
                replicas: vec![NodeId(3)],
            },
        );
        worker.handle_request(Request::Replicate {
            primary: NodeId(1),
            batch: vec![obs(0, 0, 5.0, 5.0)],
        });
        assert_eq!(
            worker.handle_request(Request::Promote { failed: NodeId(1) }),
            Response::Ack
        );
        let stats = worker.stats();
        assert_eq!(stats.primary_observations, 1);
        assert_eq!(stats.replica_observations, 0);
        // Promoting an unknown primary is a harmless no-op.
        assert_eq!(
            worker.handle_request(Request::Promote { failed: NodeId(9) }),
            Response::Ack
        );
    }

    #[test]
    fn continuous_query_notifies_on_match() {
        let fabric = Fabric::new(LinkModel::instant());
        let worker_ep = fabric.register(NodeId(1));
        let client = fabric.register(NodeId(0));
        let mut worker = Worker::new(
            worker_ep,
            WorkerConfig {
                index: index_config(),
                replicas: vec![],
            },
        );
        worker.handle_request(Request::RegisterContinuous {
            id: ContinuousQueryId(7),
            predicate: Predicate {
                region: BBox::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0)),
                class: Some(EntityClass::Car),
            },
            notify: NodeId(0),
        });
        worker.handle_request(Request::Ingest(vec![
            obs(0, 0, 10.0, 10.0),   // match
            obs(1, 0, 500.0, 500.0), // outside region
        ]));
        let env = client.recv_timeout(StdDuration::from_secs(1)).unwrap();
        let notification: Notification = decode_from_slice(&env.payload).unwrap();
        assert_eq!(notification.query, ContinuousQueryId(7));
        assert_eq!(notification.matches.len(), 1);
        assert_eq!(notification.matches[0].id.seq(), 0);
        // Unregister stops the stream.
        worker.handle_request(Request::UnregisterContinuous(ContinuousQueryId(7)));
        worker.handle_request(Request::Ingest(vec![obs(2, 0, 10.0, 10.0)]));
        assert!(client.recv_timeout(StdDuration::from_millis(50)).is_none());
    }

    #[test]
    fn eviction_trims_index_and_replica_logs() {
        let (_fabric, mut worker) = lone_worker();
        worker.handle_request(Request::Ingest(vec![obs(0, 1_000, 1.0, 1.0)]));
        worker.handle_request(Request::Replicate {
            primary: NodeId(9),
            batch: vec![obs(1, 1_000, 2.0, 2.0), obs(2, 90_000, 2.0, 2.0)],
        });
        worker.handle_request(Request::EvictBefore(Timestamp::from_secs(60)));
        let stats = worker.stats();
        assert_eq!(stats.primary_observations, 0);
        assert_eq!(stats.replica_observations, 1);
    }

    #[test]
    fn extract_region_removes_and_returns() {
        let (_fabric, mut worker) = lone_worker();
        worker.handle_request(Request::Ingest(vec![
            obs(0, 0, 100.0, 100.0),
            obs(1, 0, 900.0, 900.0),
        ]));
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(500.0, 500.0));
        match worker.handle_request(Request::ExtractRegion { region }) {
            Response::Observations(moved) => {
                assert_eq!(moved.len(), 1);
                assert_eq!(moved[0].id.seq(), 0);
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(worker.stats().primary_observations, 1);
        // Idempotent on an already-empty region.
        match worker.handle_request(Request::ExtractRegion { region }) {
            Response::Observations(moved) => assert!(moved.is_empty()),
            other => panic!("unexpected response {other:?}"),
        }
        // Extraction must also release the ids from the ingest dedup set:
        // if the cell migrates back here later, the same observation has
        // to be accepted again rather than silently dropped.
        worker.handle_request(Request::Ingest(vec![obs(0, 0, 100.0, 100.0)]));
        assert_eq!(worker.stats().primary_observations, 2);
    }

    #[test]
    fn range_filtered_applies_class_predicate() {
        let (_fabric, mut worker) = lone_worker();
        let mut truck = obs(0, 0, 100.0, 100.0);
        truck.class = EntityClass::Truck;
        worker.handle_request(Request::Ingest(vec![truck, obs(1, 0, 110.0, 110.0)]));
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(500.0, 500.0));
        match worker.handle_request(Request::RangeFiltered {
            region,
            window: window_all(),
            class: EntityClass::Truck.as_u8(),
        }) {
            Response::Observations(hits) => {
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].class, EntityClass::Truck);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Invalid class byte → application error, not a panic.
        match worker.handle_request(Request::RangeFiltered {
            region,
            window: window_all(),
            class: 200,
        }) {
            Response::Error(msg) => assert!(msg.contains("invalid class")),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn dispatch_table_covers_every_request_kind() {
        use crate::protocol::GridSpecMsg;
        let all = [
            Request::Ping,
            Request::Ingest(vec![]),
            Request::Replicate {
                primary: NodeId(1),
                batch: vec![],
            },
            Request::Range {
                region: BBox::around(Point::ORIGIN, 1.0),
                window: window_all(),
            },
            Request::Knn {
                at: Point::ORIGIN,
                window: window_all(),
                k: 1,
                max_distance: None,
            },
            Request::Heatmap {
                buckets: GridSpecMsg {
                    origin: Point::ORIGIN,
                    cell_size: 1.0,
                    cols: 1,
                    rows: 1,
                },
                window: window_all(),
            },
            Request::TopCells {
                buckets: GridSpecMsg {
                    origin: Point::ORIGIN,
                    cell_size: 1.0,
                    cols: 1,
                    rows: 1,
                },
                window: window_all(),
            },
            Request::RegisterContinuous {
                id: ContinuousQueryId(1),
                predicate: Predicate {
                    region: BBox::around(Point::ORIGIN, 1.0),
                    class: None,
                },
                notify: NodeId(0),
            },
            Request::UnregisterContinuous(ContinuousQueryId(1)),
            Request::SnapshotReplica { of: NodeId(1) },
            Request::Adopt(vec![]),
            Request::Promote { failed: NodeId(1) },
            Request::ExtractRegion {
                region: BBox::around(Point::ORIGIN, 1.0),
            },
            Request::RangeFiltered {
                region: BBox::around(Point::ORIGIN, 1.0),
                window: window_all(),
                class: EntityClass::Car.as_u8(),
            },
            Request::Stats,
            Request::EvictBefore(Timestamp::ZERO),
            Request::ReplicaRead {
                of: NodeId(1),
                inner: Box::new(Request::Range {
                    region: BBox::around(Point::ORIGIN, 1.0),
                    window: window_all(),
                }),
            },
            Request::IngestSeq {
                sender: NodeId(10_001),
                seq: 0,
                epoch: 1,
                batch: vec![],
            },
            Request::ReplicateSeq {
                sender: NodeId(10_001),
                seq: 0,
                primary: NodeId(1),
                batch: vec![],
            },
            Request::RouteUpdate {
                epoch: 1,
                grid: GridSpecMsg {
                    origin: Point::ORIGIN,
                    cell_size: 1.0,
                    cols: 1,
                    rows: 1,
                },
                cells: vec![],
            },
            Request::CellDigest {
                grid: GridSpecMsg {
                    origin: Point::ORIGIN,
                    cell_size: 1.0,
                    cols: 1,
                    rows: 1,
                },
            },
            Request::Repair {
                primary: NodeId(1),
                grid: GridSpecMsg {
                    origin: Point::ORIGIN,
                    cell_size: 1.0,
                    cols: 1,
                    rows: 1,
                },
                cell: 0,
                truncate: false,
                batch: vec![],
            },
            Request::Rejoin {
                epoch: 1,
                grid: GridSpecMsg {
                    origin: Point::ORIGIN,
                    cell_size: 1.0,
                    cols: 1,
                    rows: 1,
                },
                cells: vec![],
            },
            Request::SegmentDigest,
            Request::ExportSegments {
                region: BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                skip: vec![],
            },
            Request::InstallSegments {
                frames: vec![],
                head: vec![],
            },
        ];
        assert_eq!(
            all.len(),
            DISPATCH.len(),
            "dispatch table out of sync with Request"
        );
        for request in all {
            let name = request.op_name();
            assert!(
                DISPATCH.iter().any(|(op, _)| *op == name),
                "no dispatch row for {name}"
            );
        }
    }

    #[test]
    fn export_install_bulk_syncs_a_fresh_worker() {
        let (fabric, mut source) = lone_worker();
        // Spread across enough slices that the head seals some of them.
        let batch: Vec<Observation> = (0..200)
            .map(|i| {
                obs(
                    i,
                    (i * 250) % 50_000,
                    (i * 37 % 1000) as f64,
                    (i * 61 % 1000) as f64,
                )
            })
            .collect();
        assert_eq!(
            source.handle_request(Request::Ingest(batch.clone())),
            Response::Ack
        );
        let Response::SegmentDigests(digests) =
            source.handle_request(Request::SegmentDigest)
        else {
            panic!("expected segment digests");
        };
        assert!(!digests.is_empty(), "nothing sealed at the source");
        let everything = BBox::new(Point::new(-1e12, -1e12), Point::new(1e12, 1e12));
        let Response::Segments { frames, head } = source.handle_request(
            Request::ExportSegments {
                region: everything,
                skip: vec![],
            },
        ) else {
            panic!("expected segments");
        };
        assert_eq!(frames.len(), digests.len());
        assert_eq!(
            frames.iter().map(|f| f.count as usize).sum::<usize>() + head.len(),
            batch.len()
        );
        // Install into a fresh worker; answers must match the source's.
        let endpoint = fabric.register(NodeId(2));
        let mut target = Worker::new(
            endpoint,
            WorkerConfig {
                index: index_config(),
                replicas: vec![],
            },
        );
        assert_eq!(
            target.handle_request(Request::InstallSegments {
                frames: frames.clone(),
                head: head.clone(),
            }),
            Response::Ack
        );
        assert_eq!(target.stats().primary_observations, batch.len() as u64);
        assert_eq!(target.stats().sealed_segments, digests.len() as u64);
        let probe = Request::Range {
            region: BBox::new(Point::new(100.0, 100.0), Point::new(800.0, 800.0)),
            window: window_all(),
        };
        assert_eq!(
            source.handle_request(probe.clone()),
            target.handle_request(probe)
        );
        // Retransmission: digest dedup and the id filter drop everything.
        assert_eq!(
            target.handle_request(Request::InstallSegments { frames, head }),
            Response::Ack
        );
        assert_eq!(target.stats().primary_observations, batch.len() as u64);
        assert_eq!(target.stats().sealed_segments, digests.len() as u64);
        // A skip list naming everything held suppresses the re-export.
        let Response::Segments { frames, .. } = source.handle_request(
            Request::ExportSegments {
                region: everything,
                skip: digests,
            },
        ) else {
            panic!("expected segments");
        };
        assert!(frames.is_empty(), "skip list ignored");
    }

    #[test]
    fn duplicate_sequenced_batch_counts_once() {
        let (_fabric, mut worker) = lone_worker();
        let sender = NodeId(10_001);
        let batch = vec![obs(0, 500, 10.0, 10.0), obs(1, 500, 20.0, 20.0)];
        let first = worker.handle_request(Request::IngestSeq {
            sender,
            seq: 5,
            epoch: 1,
            batch: batch.clone(),
        });
        assert_eq!(
            first,
            Response::IngestAck {
                seq: 5,
                accepted: 2
            }
        );
        // Retransmission: answered from memory, applied exactly once.
        let replay = worker.handle_request(Request::IngestSeq {
            sender,
            seq: 5,
            epoch: 1,
            batch,
        });
        assert_eq!(replay, first);
        let stats = worker.stats();
        assert_eq!(stats.primary_observations, 2);
        assert_eq!(stats.ingested_total, 2);
    }

    #[test]
    fn same_observation_under_new_seq_inserts_once() {
        // After a failover the same batch can legitimately arrive under a
        // fresh (sender, seq); the id filter must still count it once.
        let (_fabric, mut worker) = lone_worker();
        let sender = NodeId(10_001);
        let batch = vec![obs(0, 500, 10.0, 10.0)];
        worker.handle_request(Request::IngestSeq {
            sender,
            seq: 1,
            epoch: 1,
            batch: batch.clone(),
        });
        let again = worker.handle_request(Request::IngestSeq {
            sender,
            seq: 2,
            epoch: 1,
            batch,
        });
        // Still a full ack — the data is present, which is what an ack
        // certifies.
        assert_eq!(
            again,
            Response::IngestAck {
                seq: 2,
                accepted: 1
            }
        );
        assert_eq!(worker.stats().primary_observations, 1);
    }

    #[test]
    fn misrouted_observations_are_nacked_with_epoch() {
        use crate::protocol::GridSpecMsg;
        let (_fabric, mut worker) = lone_worker();
        // Own only cell 0 of a 2×1 macro grid splitting x at 500.
        worker.handle_request(Request::RouteUpdate {
            epoch: 7,
            grid: GridSpecMsg {
                origin: Point::ORIGIN,
                cell_size: 500.0,
                cols: 2,
                rows: 1,
            },
            cells: vec![0],
        });
        let mine = obs(0, 500, 100.0, 100.0);
        let theirs = obs(1, 500, 900.0, 100.0);
        let theirs_id = theirs.id;
        let resp = worker.handle_request(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 1,
            epoch: 3,
            batch: vec![mine, theirs],
        });
        assert_eq!(
            resp,
            Response::IngestNack {
                seq: 1,
                accepted: 1,
                epoch: 7,
                misrouted: vec![theirs_id],
            }
        );
        // The owned observation was applied despite the nack.
        assert_eq!(worker.stats().primary_observations, 1);
    }

    #[test]
    fn route_update_ignores_older_epoch() {
        use crate::protocol::GridSpecMsg;
        let (_fabric, mut worker) = lone_worker();
        let grid = GridSpecMsg {
            origin: Point::ORIGIN,
            cell_size: 500.0,
            cols: 2,
            rows: 1,
        };
        worker.handle_request(Request::RouteUpdate {
            epoch: 9,
            grid,
            cells: vec![0],
        });
        // A stale update must not widen ownership back to cell 1.
        worker.handle_request(Request::RouteUpdate {
            epoch: 4,
            grid,
            cells: vec![0, 1],
        });
        let resp = worker.handle_request(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 1,
            epoch: 4,
            batch: vec![obs(0, 500, 900.0, 100.0)],
        });
        assert!(
            matches!(resp, Response::IngestNack { epoch: 9, .. }),
            "unexpected response {resp:?}"
        );
    }

    #[test]
    fn newer_sender_epoch_is_accepted_permissively() {
        use crate::protocol::GridSpecMsg;
        let (_fabric, mut worker) = lone_worker();
        // Installed slice (epoch 7) owns only cell 0 — but the sender
        // writes under epoch 9, so its plan post-dates this worker's and
        // the out-of-slice observation must be accepted, not NACKed.
        worker.handle_request(Request::RouteUpdate {
            epoch: 7,
            grid: GridSpecMsg {
                origin: Point::ORIGIN,
                cell_size: 500.0,
                cols: 2,
                rows: 1,
            },
            cells: vec![0],
        });
        let resp = worker.handle_request(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 1,
            epoch: 9,
            batch: vec![obs(0, 500, 900.0, 100.0)],
        });
        assert_eq!(
            resp,
            Response::IngestAck {
                seq: 1,
                accepted: 1
            }
        );
        assert_eq!(worker.stats().primary_observations, 1);
    }

    #[test]
    fn replicate_seq_is_idempotent_and_id_deduped() {
        let (_fabric, mut worker) = lone_worker();
        let sender = NodeId(10_001);
        let batch = vec![obs(0, 500, 10.0, 10.0), obs(1, 500, 20.0, 20.0)];
        let first = worker.handle_request(Request::ReplicateSeq {
            sender,
            seq: 1,
            primary: NodeId(4),
            batch: batch.clone(),
        });
        assert_eq!(
            first,
            Response::IngestAck {
                seq: 1,
                accepted: 2
            }
        );
        // Same seq: replayed. New seq, same ids: appended zero times.
        worker.handle_request(Request::ReplicateSeq {
            sender,
            seq: 1,
            primary: NodeId(4),
            batch: batch.clone(),
        });
        worker.handle_request(Request::ReplicateSeq {
            sender,
            seq: 2,
            primary: NodeId(4),
            batch,
        });
        assert_eq!(worker.stats().replica_observations, 2);
    }

    #[test]
    fn promote_skips_observations_already_primary() {
        let (_fabric, mut worker) = lone_worker();
        let shared = obs(0, 500, 10.0, 10.0);
        // Arrives once as a replica for a primary that will fail…
        worker.handle_request(Request::ReplicateSeq {
            sender: NodeId(10_001),
            seq: 1,
            primary: NodeId(4),
            batch: vec![shared.clone(), obs(1, 500, 20.0, 20.0)],
        });
        // …and once directly (sender retried to the successor).
        worker.handle_request(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 2,
            epoch: 1,
            batch: vec![shared],
        });
        worker.handle_request(Request::Promote { failed: NodeId(4) });
        let stats = worker.stats();
        assert_eq!(stats.primary_observations, 2);
        assert_eq!(stats.replica_observations, 0);
    }

    #[test]
    fn replica_read_answers_from_the_replica_log() {
        use crate::protocol::GridSpecMsg;
        let (_fabric, mut worker) = lone_worker();
        // Primary data must NOT leak into replica reads.
        worker.handle_request(Request::Ingest(vec![obs(90, 0, 500.0, 500.0)]));
        let mut truck = obs(1, 0, 20.0, 20.0);
        truck.class = EntityClass::Truck;
        worker.handle_request(Request::Replicate {
            primary: NodeId(7),
            batch: vec![obs(0, 0, 10.0, 10.0), truck, obs(2, 80_000, 30.0, 30.0)],
        });
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let replica_read = |inner: Request| Request::ReplicaRead {
            of: NodeId(7),
            inner: Box::new(inner),
        };
        match worker.handle_request(replica_read(Request::Range {
            region,
            window: window_all(),
        })) {
            Response::Observations(hits) => {
                let mut seqs: Vec<u64> = hits.iter().map(|o| o.id.seq()).collect();
                seqs.sort_unstable();
                assert_eq!(seqs, vec![0, 1, 2]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Time window and class filters apply on the log scan too.
        match worker.handle_request(replica_read(Request::RangeFiltered {
            region,
            window: TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60)),
            class: EntityClass::Truck.as_u8(),
        })) {
            Response::Observations(hits) => {
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].id.seq(), 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match worker.handle_request(replica_read(Request::Knn {
            at: Point::new(0.0, 0.0),
            window: window_all(),
            k: 2,
            max_distance: None,
        })) {
            Response::Observations(hits) => {
                assert_eq!(hits.len(), 2);
                assert_eq!(hits[0].id.seq(), 0);
                assert_eq!(hits[1].id.seq(), 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let buckets = GridSpecMsg {
            origin: Point::new(0.0, 0.0),
            cell_size: 100.0,
            cols: 10,
            rows: 10,
        };
        match worker.handle_request(replica_read(Request::Heatmap {
            buckets,
            window: window_all(),
        })) {
            Response::Counts(counts) => {
                assert_eq!(counts[0], 3);
                assert_eq!(counts.iter().sum::<u64>(), 3);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match worker.handle_request(replica_read(Request::TopCells {
            buckets,
            window: window_all(),
        })) {
            Response::CellCounts(cells) => assert_eq!(cells, vec![(0, 3)]),
            other => panic!("unexpected response {other:?}"),
        }
        // An unknown primary reads as an empty log, not an error.
        match worker.handle_request(Request::ReplicaRead {
            of: NodeId(42),
            inner: Box::new(Request::Range {
                region,
                window: window_all(),
            }),
        }) {
            Response::Observations(hits) => assert!(hits.is_empty()),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn non_read_requests_are_not_replica_readable() {
        let (_fabric, mut worker) = lone_worker();
        match worker.handle_request(Request::ReplicaRead {
            of: NodeId(7),
            inner: Box::new(Request::EvictBefore(Timestamp::ZERO)),
        }) {
            Response::Error(msg) => assert!(msg.contains("not replica-readable")),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn served_counters_track_per_op_traffic() {
        let (_fabric, mut worker) = lone_worker();
        worker.handle_request(Request::Ping);
        worker.handle_request(Request::Ping);
        worker.handle_request(Request::Ingest(vec![obs(0, 0, 10.0, 10.0)]));
        let stats = worker.stats();
        assert_eq!(stats.served_count("ping"), 2);
        assert_eq!(stats.served_count("ingest"), 1);
        assert_eq!(stats.served_count("range"), 0);
    }

    #[test]
    fn top_cells_reports_sparse_nonzero_buckets() {
        use crate::protocol::GridSpecMsg;
        let (_fabric, mut worker) = lone_worker();
        worker.handle_request(Request::Ingest(vec![
            obs(0, 0, 10.0, 10.0),   // cell (0, 0)
            obs(1, 0, 10.0, 15.0),   // cell (0, 0)
            obs(2, 0, 910.0, 910.0), // cell (9, 9)
        ]));
        let buckets = GridSpecMsg {
            origin: Point::new(0.0, 0.0),
            cell_size: 100.0,
            cols: 10,
            rows: 10,
        };
        match worker.handle_request(Request::TopCells {
            buckets,
            window: window_all(),
        }) {
            Response::CellCounts(cells) => {
                assert_eq!(cells, vec![(0, 2), (99, 1)]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    fn grid_2x2() -> crate::protocol::GridSpecMsg {
        crate::protocol::GridSpecMsg {
            origin: Point::ORIGIN,
            cell_size: 500.0,
            cols: 2,
            rows: 2,
        }
    }

    #[test]
    fn cell_digest_covers_primary_and_replica_logs() {
        use crate::repair::observation_checksum;
        let (_fabric, mut worker) = lone_worker();
        let a = obs(0, 100, 100.0, 100.0); // cell 0
        let b = obs(1, 200, 100.0, 150.0); // cell 0
        let c = obs(2, 300, 900.0, 900.0); // cell 3
        worker.handle_request(Request::Ingest(vec![a.clone(), b.clone()]));
        worker.handle_request(Request::Replicate {
            primary: NodeId(7),
            batch: vec![c.clone()],
        });
        match worker.handle_request(Request::CellDigest { grid: grid_2x2() }) {
            Response::Digests(report) => {
                assert_eq!(report.primary.len(), 1);
                assert_eq!(report.primary[0].cell, 0);
                assert_eq!(report.primary[0].count, 2);
                assert_eq!(
                    report.primary[0].checksum,
                    observation_checksum(&a) ^ observation_checksum(&b)
                );
                assert_eq!(report.replicas.len(), 1);
                assert_eq!(report.replicas[0].primary, NodeId(7));
                assert_eq!(report.replicas[0].cell, 3);
                assert_eq!(report.replicas[0].count, 1);
                assert_eq!(report.replicas[0].checksum, observation_checksum(&c));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn repair_overwrites_replica_log_cell_idempotently() {
        let (_fabric, mut worker) = lone_worker();
        // Stale copy in cell 0 of primary 4's log.
        worker.handle_request(Request::Replicate {
            primary: NodeId(4),
            batch: vec![obs(0, 100, 10.0, 10.0), obs(9, 100, 900.0, 900.0)],
        });
        // Stream the authoritative contents: truncate, then two chunks.
        let fresh = [obs(1, 100, 20.0, 20.0), obs(2, 100, 30.0, 30.0)];
        worker.handle_request(Request::Repair {
            primary: NodeId(4),
            grid: grid_2x2(),
            cell: 0,
            truncate: true,
            batch: vec![fresh[0].clone()],
        });
        worker.handle_request(Request::Repair {
            primary: NodeId(4),
            grid: grid_2x2(),
            cell: 0,
            truncate: false,
            batch: vec![fresh[1].clone()],
        });
        // A retransmitted chunk appends nothing (id dedup).
        worker.handle_request(Request::Repair {
            primary: NodeId(4),
            grid: grid_2x2(),
            cell: 0,
            truncate: false,
            batch: vec![fresh[1].clone()],
        });
        match worker.handle_request(Request::SnapshotReplica { of: NodeId(4) }) {
            Response::Observations(log) => {
                let mut seqs: Vec<u64> = log.iter().map(|o| o.id.seq()).collect();
                seqs.sort_unstable();
                // Cell 0 replaced (seq 0 gone, 1 and 2 in); cell 3
                // untouched (seq 9 kept).
                assert_eq!(seqs, vec![1, 2, 9]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Truncating the stale-id namespace re-admits the removed id.
        worker.handle_request(Request::Repair {
            primary: NodeId(4),
            grid: grid_2x2(),
            cell: 0,
            truncate: true,
            batch: vec![obs(0, 100, 10.0, 10.0)],
        });
        match worker.handle_request(Request::SnapshotReplica { of: NodeId(4) }) {
            Response::Observations(log) => {
                let mut seqs: Vec<u64> = log.iter().map(|o| o.id.seq()).collect();
                seqs.sort_unstable();
                assert_eq!(seqs, vec![0, 9]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn repair_to_self_overwrites_primary_cell() {
        let (_fabric, mut worker) = lone_worker();
        worker.handle_request(Request::Ingest(vec![
            obs(0, 100, 10.0, 10.0),   // cell 0 — to be replaced
            obs(9, 100, 900.0, 900.0), // cell 3 — untouched
        ]));
        worker.handle_request(Request::Repair {
            primary: NodeId(1), // == self: primary shard path
            grid: grid_2x2(),
            cell: 0,
            truncate: true,
            batch: vec![obs(1, 100, 20.0, 20.0)],
        });
        let resp = worker.handle_request(Request::Range {
            region: BBox::new(Point::ORIGIN, Point::new(1000.0, 1000.0)),
            window: window_all(),
        });
        match resp {
            Response::Observations(hits) => {
                let mut seqs: Vec<u64> = hits.iter().map(|o| o.id.seq()).collect();
                seqs.sort_unstable();
                assert_eq!(seqs, vec![1, 9]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The truncated id was released from the dedup filter: the same
        // observation can be streamed back (rebalance return trip).
        worker.handle_request(Request::Repair {
            primary: NodeId(1),
            grid: grid_2x2(),
            cell: 0,
            truncate: true,
            batch: vec![obs(0, 100, 10.0, 10.0)],
        });
        assert_eq!(worker.stats().primary_observations, 2);
    }

    #[test]
    fn rejoin_resets_all_state_and_installs_route() {
        let (_fabric, mut worker) = lone_worker();
        worker.handle_request(Request::Ingest(vec![obs(0, 100, 10.0, 10.0)]));
        worker.handle_request(Request::Replicate {
            primary: NodeId(4),
            batch: vec![obs(1, 100, 20.0, 20.0)],
        });
        worker.handle_request(Request::RegisterContinuous {
            id: ContinuousQueryId(7),
            predicate: Predicate {
                region: BBox::around(Point::new(10.0, 10.0), 50.0),
                class: None,
            },
            notify: NodeId(0),
        });
        worker.handle_request(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 5,
            epoch: 1,
            batch: vec![obs(2, 100, 30.0, 30.0)],
        });
        assert_eq!(
            worker.handle_request(Request::Rejoin {
                epoch: 9,
                grid: grid_2x2(),
                cells: vec![0],
            }),
            Response::Ack
        );
        let stats = worker.stats();
        assert_eq!(stats.primary_observations, 0);
        assert_eq!(stats.replica_observations, 0);
        assert_eq!(stats.continuous_queries, 0);
        // Retransmission memory cleared: the old (sender, seq) is
        // re-applied, not replayed from a forgotten answer.
        worker.handle_request(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 5,
            epoch: 9,
            batch: vec![obs(2, 100, 30.0, 30.0)],
        });
        assert_eq!(worker.stats().primary_observations, 1);
        // The installed route rejects cells outside the new slice.
        let resp = worker.handle_request(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 6,
            epoch: 9,
            batch: vec![obs(3, 100, 900.0, 900.0)],
        });
        assert!(
            matches!(resp, Response::IngestNack { epoch: 9, .. }),
            "unexpected response {resp:?}"
        );
    }

    #[test]
    fn busy_time_accumulates() {
        let fabric = Fabric::new(LinkModel::instant());
        let worker_ep = fabric.register(NodeId(1));
        let client = fabric.register(NodeId(0));
        let handle = Worker::spawn(
            worker_ep,
            WorkerConfig {
                index: index_config(),
                replicas: vec![],
            },
        );
        let big: Vec<Observation> = (0..5_000u64)
            .map(|i| {
                obs(
                    i,
                    (i % 60) * 1000,
                    (i as f64 * 7.0) % 1000.0,
                    (i as f64 * 13.0) % 1000.0,
                )
            })
            .collect();
        let resp = client
            .call(
                NodeId(1),
                encode_to_vec(&Request::Ingest(big)),
                StdDuration::from_secs(10),
            )
            .unwrap();
        assert_eq!(decode_from_slice::<Response>(&resp).unwrap(), Response::Ack);
        let stats_bytes = client
            .call(
                NodeId(1),
                encode_to_vec(&Request::Stats),
                StdDuration::from_secs(5),
            )
            .unwrap();
        match decode_from_slice::<Response>(&stats_bytes).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.primary_observations, 5_000);
                assert!(s.busy_micros > 0, "busy time not recorded");
            }
            other => panic!("unexpected response {other:?}"),
        }
        handle.shutdown();
    }

    #[test]
    fn spawned_worker_answers_rpc() {
        let fabric = Fabric::new(LinkModel::instant());
        let worker_ep = fabric.register(NodeId(1));
        let client = fabric.register(NodeId(0));
        let handle = Worker::spawn(
            worker_ep,
            WorkerConfig {
                index: index_config(),
                replicas: vec![],
            },
        );
        let resp_bytes = client
            .call(
                NodeId(1),
                encode_to_vec(&Request::Ping),
                StdDuration::from_secs(5),
            )
            .unwrap();
        assert_eq!(
            decode_from_slice::<Response>(&resp_bytes).unwrap(),
            Response::Ack
        );
        handle.shutdown();
    }

    #[test]
    fn malformed_request_yields_error_response() {
        let fabric = Fabric::new(LinkModel::instant());
        let worker_ep = fabric.register(NodeId(1));
        let client = fabric.register(NodeId(0));
        let handle = Worker::spawn(
            worker_ep,
            WorkerConfig {
                index: index_config(),
                replicas: vec![],
            },
        );
        let resp_bytes = client
            .call(NodeId(1), vec![250, 1, 2], StdDuration::from_secs(5))
            .unwrap();
        match decode_from_slice::<Response>(&resp_bytes).unwrap() {
            Response::Error(msg) => assert!(msg.contains("bad request")),
            other => panic!("unexpected response {other:?}"),
        }
        handle.shutdown();
    }
}
