//! Trajectory analysis: tracklet formation and cross-camera stitching.
//!
//! Cameras produce anonymous observations; recovering *who went where*
//! requires two steps:
//!
//! 1. **Tracklet formation** ([`build_tracklets`]) — within one camera,
//!    consecutive observations are linked into short tracks by temporal
//!    proximity, motion plausibility and appearance similarity.
//! 2. **Hand-off association** ([`stitch_handoff`]) — tracklets are linked
//!    *across* cameras. A link from tracklet A (ending at camera X) to
//!    tracklet B (starting at camera Y) is admissible when X and Y are
//!    adjacent in the camera graph, the gap matches the learned
//!    transition-time window for B's class, and the mean appearance
//!    signatures are close. Admissible links are taken greedily by
//!    appearance distance, each tracklet used at most once as predecessor
//!    and once as successor; chains of links form [`GlobalTrack`]s.
//!
//! [`stitch_greedy`] is the evaluation baseline: appearance-nearest
//! association with only a coarse time gap, no camera topology and no
//! transition gating. The accuracy experiment (Fig 9) sweeps signature
//! noise and compares the two.

use std::collections::HashMap;

use stcam_camnet::{
    CameraId, CameraNetwork, Observation, ObservationId, Signature, TransitionModel, SIGNATURE_DIM,
};
use stcam_geo::{BBox, Duration, TimeInterval, Timestamp};
use stcam_world::{EntityClass, EntityId};

use crate::cluster::Cluster;
use crate::error::StcamError;

/// Tunables for tracklet formation and stitching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchConfig {
    /// Maximum time between consecutive observations of one tracklet.
    pub max_frame_gap: Duration,
    /// Maximum plausible speed (m/s) when linking within a camera.
    pub max_speed: f64,
    /// Appearance gate for within-camera linking. Deliberately loose:
    /// two observations of one entity differ by ≈ σ·√(2·16) in signature
    /// space, so within a camera the spatial gate does the heavy lifting
    /// and appearance only breaks ties (the *nearest* signature wins).
    pub sig_threshold: f32,
    /// Appearance gate for cross-camera hand-off, applied to tracklet
    /// *mean* signatures (averaging divides the noise by √length).
    pub handoff_sig_threshold: f32,
    /// Maximum gap for a same-camera re-entry link.
    pub max_reentry_gap: Duration,
    /// Minimum observations a tracklet needs to participate in hand-off
    /// association; singleton tracklets are overwhelmingly detector
    /// clutter and may neither start nor extend a chain.
    pub min_support: usize,
}

impl Default for StitchConfig {
    fn default() -> Self {
        StitchConfig {
            max_frame_gap: Duration::from_millis(1_500),
            max_speed: 25.0,
            sig_threshold: 2.5,
            handoff_sig_threshold: 0.7,
            max_reentry_gap: Duration::from_secs(20),
            min_support: 2,
        }
    }
}

/// A contiguous single-camera track fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct Tracklet {
    /// The producing camera.
    pub camera: CameraId,
    /// Member observations, time-ordered.
    pub observations: Vec<Observation>,
}

impl Tracklet {
    /// First observation time.
    pub fn start(&self) -> Timestamp {
        self.observations
            .first()
            .expect("tracklets are non-empty")
            .time
    }

    /// Last observation time.
    pub fn end(&self) -> Timestamp {
        self.observations
            .last()
            .expect("tracklets are non-empty")
            .time
    }

    /// Component-wise mean of the member signatures.
    pub fn mean_signature(&self) -> Signature {
        let mut acc = [0f32; SIGNATURE_DIM];
        for obs in &self.observations {
            for (a, v) in acc.iter_mut().zip(obs.signature.values()) {
                *a += v;
            }
        }
        let n = self.observations.len() as f32;
        for a in &mut acc {
            *a /= n;
        }
        Signature::new(acc)
    }

    /// Majority class of the member observations.
    pub fn class(&self) -> EntityClass {
        let mut counts = [0usize; 4];
        for obs in &self.observations {
            counts[obs.class.as_u8() as usize] += 1;
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i as u8)
            .expect("four classes");
        EntityClass::from_u8(best).expect("class in range")
    }

    /// Majority ground-truth entity, or `None` when most members are
    /// false positives. Evaluation only.
    pub fn majority_truth(&self) -> Option<EntityId> {
        let mut counts: HashMap<Option<EntityId>, usize> = HashMap::new();
        for obs in &self.observations {
            *counts.entry(obs.truth).or_default() += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(truth, c)| (c, truth.map(|e| e.0)))
            .and_then(|(truth, _)| truth)
    }
}

/// A chain of tracklets believed to be one real-world entity, produced by
/// a stitcher. Indices refer into the tracklet slice passed to the
/// stitcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalTrack {
    /// Member tracklet indices, time-ordered.
    pub tracklets: Vec<usize>,
}

/// Groups observations into per-camera tracklets.
///
/// Observations are processed in time order per camera. Each observation
/// joins the open tracklet whose last member is (a) recent enough, (b)
/// reachable at `max_speed`, and (c) closest in appearance within
/// `sig_threshold`; otherwise it opens a new tracklet.
pub fn build_tracklets(observations: &[Observation], config: &StitchConfig) -> Vec<Tracklet> {
    let mut by_camera: HashMap<CameraId, Vec<&Observation>> = HashMap::new();
    for obs in observations {
        by_camera.entry(obs.camera).or_default().push(obs);
    }
    let mut cameras: Vec<CameraId> = by_camera.keys().copied().collect();
    cameras.sort(); // deterministic output order
    let mut tracklets: Vec<Tracklet> = Vec::new();
    for camera in cameras {
        let mut stream = by_camera.remove(&camera).expect("present");
        stream.sort_by_key(|o| (o.time, o.id));
        // Open tracklets for this camera: index into `tracklets`.
        let mut open: Vec<usize> = Vec::new();
        for obs in stream {
            // Close stale tracklets.
            open.retain(|&t| obs.time.abs_diff(tracklets[t].end()) <= config.max_frame_gap);
            let mut best: Option<(f32, usize)> = None;
            for &t in &open {
                let tracklet: &Tracklet = &tracklets[t];
                let last = tracklet.observations.last().expect("non-empty");
                let dt = obs.time.abs_diff(last.time).as_secs_f64();
                let reach = config.max_speed * dt + 3.0; // slack for noise
                if obs.position.distance(last.position) > reach {
                    continue;
                }
                let sig_d = obs.signature.distance(&last.signature);
                if sig_d > config.sig_threshold {
                    continue;
                }
                if best.is_none_or(|(d, _)| sig_d < d) {
                    best = Some((sig_d, t));
                }
            }
            match best {
                Some((_, t)) => tracklets[t].observations.push(obs.clone()),
                None => {
                    tracklets.push(Tracklet {
                        camera,
                        observations: vec![obs.clone()],
                    });
                    open.push(tracklets.len() - 1);
                }
            }
        }
    }
    tracklets
}

/// Candidate link between two tracklets.
#[derive(Debug, Clone, Copy)]
struct Link {
    from: usize,
    to: usize,
    score: f32,
}

/// Stitches tracklets across cameras using the adjacency graph and the
/// transition-time model (the framework's method).
pub fn stitch_handoff(
    tracklets: &[Tracklet],
    network: &CameraNetwork,
    transitions: &TransitionModel,
    config: &StitchConfig,
) -> Vec<GlobalTrack> {
    let sigs: Vec<Signature> = tracklets.iter().map(Tracklet::mean_signature).collect();
    let classes: Vec<EntityClass> = tracklets.iter().map(Tracklet::class).collect();
    let mut links = Vec::new();
    for (i, a) in tracklets.iter().enumerate() {
        if a.observations.len() < config.min_support {
            continue;
        }
        for (j, b) in tracklets.iter().enumerate() {
            if i == j || b.start() < a.end() || b.observations.len() < config.min_support {
                continue;
            }
            let dt = b.start() - a.end();
            let admissible = if a.camera == b.camera {
                dt <= config.max_reentry_gap
            } else if network.adjacent(a.camera).contains(&b.camera) {
                transitions.plausible(a.camera, b.camera, classes[j], dt)
            } else {
                false
            };
            if !admissible || classes[i] != classes[j] {
                continue;
            }
            let score = sigs[i].distance(&sigs[j]);
            if score <= config.handoff_sig_threshold {
                links.push(Link {
                    from: i,
                    to: j,
                    score,
                });
            }
        }
    }
    assemble(tracklets.len(), links)
}

/// The appearance-only baseline: links any pair of tracklets whose gap is
/// below `max_gap`, nearest appearance first, ignoring camera topology and
/// transition times.
pub fn stitch_greedy(
    tracklets: &[Tracklet],
    config: &StitchConfig,
    max_gap: Duration,
) -> Vec<GlobalTrack> {
    let sigs: Vec<Signature> = tracklets.iter().map(Tracklet::mean_signature).collect();
    let mut links = Vec::new();
    for (i, a) in tracklets.iter().enumerate() {
        if a.observations.len() < config.min_support {
            continue;
        }
        for (j, b) in tracklets.iter().enumerate() {
            if i == j || b.start() < a.end() || b.observations.len() < config.min_support {
                continue;
            }
            if b.start() - a.end() > max_gap {
                continue;
            }
            let score = sigs[i].distance(&sigs[j]);
            if score <= config.handoff_sig_threshold {
                links.push(Link {
                    from: i,
                    to: j,
                    score,
                });
            }
        }
    }
    assemble(tracklets.len(), links)
}

/// Greedy minimum-score matching followed by chain assembly.
fn assemble(n: usize, mut links: Vec<Link>) -> Vec<GlobalTrack> {
    links.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.from.cmp(&b.from))
            .then(a.to.cmp(&b.to))
    });
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut has_pred = vec![false; n];
    for link in links {
        if next[link.from].is_some() || has_pred[link.to] {
            continue;
        }
        // Avoid creating a cycle (can only happen via chains; check by
        // walking from `to`).
        let mut cur = link.to;
        let mut cycles = false;
        while let Some(nxt) = next[cur] {
            if nxt == link.from {
                cycles = true;
                break;
            }
            cur = nxt;
        }
        if cycles {
            continue;
        }
        next[link.from] = Some(link.to);
        has_pred[link.to] = true;
    }
    let mut tracks = Vec::new();
    for (start, &pred) in has_pred.iter().enumerate() {
        if pred {
            continue;
        }
        let mut chain = vec![start];
        let mut cur = start;
        while let Some(nxt) = next[cur] {
            chain.push(nxt);
            cur = nxt;
        }
        tracks.push(GlobalTrack { tracklets: chain });
    }
    tracks
}

/// The output of a distributed trajectory reconstruction (see
/// [`reconstruct`]).
#[derive(Debug)]
pub struct Reconstruction {
    /// The per-camera tracklets formed from the fetched observations.
    pub tracklets: Vec<Tracklet>,
    /// The stitched cross-camera tracks (indices into `tracklets`).
    pub tracks: Vec<GlobalTrack>,
}

impl Reconstruction {
    /// The global track containing the observation `seed`, if any —
    /// "follow this detection": the operator clicks one sighting and gets
    /// the whole journey.
    pub fn track_containing(&self, seed: ObservationId) -> Option<&GlobalTrack> {
        let tracklet_idx = self
            .tracklets
            .iter()
            .position(|t| t.observations.iter().any(|o| o.id == seed))?;
        self.tracks
            .iter()
            .find(|track| track.tracklets.contains(&tracklet_idx))
    }

    /// The time-ordered observations of `track`, flattened across its
    /// tracklets.
    pub fn observations_of<'a>(&'a self, track: &'a GlobalTrack) -> Vec<&'a Observation> {
        track
            .tracklets
            .iter()
            .flat_map(|&i| self.tracklets[i].observations.iter())
            .collect()
    }
}

/// Distributed trajectory reconstruction: fetches the observations of
/// `region` × `window` from the cluster, forms tracklets, and stitches
/// them across cameras with the topology-gated associator.
///
/// This is the framework's "where did everyone go" operation; use
/// [`Reconstruction::track_containing`] to read off a single target.
///
/// # Errors
///
/// Propagates query failures from the cluster.
pub fn reconstruct(
    cluster: &Cluster,
    region: BBox,
    window: TimeInterval,
    network: &CameraNetwork,
    transitions: &TransitionModel,
    config: &StitchConfig,
) -> Result<Reconstruction, StcamError> {
    let observations = cluster.range_query(region, window)?;
    let tracklets = build_tracklets(&observations, config);
    let tracks = stitch_handoff(&tracklets, network, transitions, config);
    Ok(Reconstruction { tracklets, tracks })
}

/// Link-level accuracy of a stitching result against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchScore {
    /// Predicted links that join two tracklets of the same true entity.
    pub correct_links: usize,
    /// Total predicted links.
    pub predicted_links: usize,
    /// Ground-truth links (consecutive same-entity tracklet pairs).
    pub true_links: usize,
}

impl StitchScore {
    /// Fraction of predicted links that are correct.
    pub fn precision(&self) -> f64 {
        if self.predicted_links == 0 {
            1.0
        } else {
            self.correct_links as f64 / self.predicted_links as f64
        }
    }

    /// Fraction of true links that were predicted (as a correct link).
    pub fn recall(&self) -> f64 {
        if self.true_links == 0 {
            1.0
        } else {
            self.correct_links as f64 / self.true_links as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Scores predicted global tracks against the ground-truth entity labels
/// carried by the observations.
pub fn score_links(tracklets: &[Tracklet], tracks: &[GlobalTrack]) -> StitchScore {
    let truths: Vec<Option<EntityId>> = tracklets.iter().map(Tracklet::majority_truth).collect();
    // Ground truth: per entity, time-ordered tracklets; consecutive pairs
    // are the links a perfect stitcher would predict.
    let mut by_entity: HashMap<EntityId, Vec<usize>> = HashMap::new();
    for (i, truth) in truths.iter().enumerate() {
        if let Some(e) = truth {
            by_entity.entry(*e).or_default().push(i);
        }
    }
    let mut true_links = 0;
    for members in by_entity.values_mut() {
        members.sort_by_key(|&i| (tracklets[i].start(), i));
        true_links += members.len().saturating_sub(1);
    }
    let mut predicted_links = 0;
    let mut correct_links = 0;
    for track in tracks {
        for pair in track.tracklets.windows(2) {
            predicted_links += 1;
            match (truths[pair[0]], truths[pair[1]]) {
                (Some(a), Some(b)) if a == b => correct_links += 1,
                _ => {}
            }
        }
    }
    StitchScore {
        correct_links,
        predicted_links,
        true_links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::ObservationId;
    use stcam_geo::Point;

    fn obs(camera: u32, seq: u64, t_ms: u64, x: f64, entity: u64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(camera), seq),
            camera: CameraId(camera),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, 0.0),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(entity),
            truth: Some(EntityId(entity)),
        }
    }

    #[test]
    fn single_entity_single_camera_one_tracklet() {
        let stream = vec![
            obs(0, 0, 0, 0.0, 1),
            obs(0, 1, 500, 5.0, 1),
            obs(0, 2, 1000, 10.0, 1),
        ];
        let tracklets = build_tracklets(&stream, &StitchConfig::default());
        assert_eq!(tracklets.len(), 1);
        assert_eq!(tracklets[0].observations.len(), 3);
        assert_eq!(tracklets[0].start(), Timestamp::ZERO);
        assert_eq!(tracklets[0].end(), Timestamp::from_secs(1));
    }

    #[test]
    fn two_entities_same_camera_two_tracklets() {
        let stream = vec![
            obs(0, 0, 0, 0.0, 1),
            obs(0, 1, 0, 100.0, 2),
            obs(0, 2, 500, 5.0, 1),
            obs(0, 3, 500, 95.0, 2),
        ];
        let tracklets = build_tracklets(&stream, &StitchConfig::default());
        assert_eq!(tracklets.len(), 2);
        for t in &tracklets {
            assert_eq!(t.observations.len(), 2);
            let truth = t.observations[0].truth;
            assert!(
                t.observations.iter().all(|o| o.truth == truth),
                "mixed tracklet"
            );
        }
    }

    #[test]
    fn time_gap_splits_tracklets() {
        let stream = vec![obs(0, 0, 0, 0.0, 1), obs(0, 1, 10_000, 5.0, 1)];
        let tracklets = build_tracklets(&stream, &StitchConfig::default());
        assert_eq!(tracklets.len(), 2);
    }

    #[test]
    fn implausible_speed_splits_tracklets() {
        // 500 m in 0.5 s = 1000 m/s: cannot be one object.
        let stream = vec![obs(0, 0, 0, 0.0, 1), obs(0, 1, 500, 500.0, 1)];
        let tracklets = build_tracklets(&stream, &StitchConfig::default());
        assert_eq!(tracklets.len(), 2);
    }

    #[test]
    fn mean_signature_and_majority() {
        let mut o1 = obs(0, 0, 0, 0.0, 1);
        let mut o2 = obs(0, 1, 500, 1.0, 1);
        o1.signature = Signature::new([0.0; SIGNATURE_DIM]);
        o2.signature = Signature::new([1.0; SIGNATURE_DIM]);
        o2.class = EntityClass::Truck;
        let t = Tracklet {
            camera: CameraId(0),
            observations: vec![o1, o2.clone(), o2],
        };
        assert!((t.mean_signature().values()[0] - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.class(), EntityClass::Truck);
        assert_eq!(t.majority_truth(), Some(EntityId(1)));
    }

    #[test]
    fn assemble_builds_chains_without_cycles() {
        let links = vec![
            Link {
                from: 0,
                to: 1,
                score: 0.1,
            },
            Link {
                from: 1,
                to: 2,
                score: 0.2,
            },
            Link {
                from: 2,
                to: 0,
                score: 0.05,
            }, // would close a cycle
        ];
        let tracks = assemble(3, links);
        // The cycle-closing link is cheapest and taken first (2→0), so the
        // final chain is 1 path plus whatever remains acyclic.
        let total: usize = tracks.iter().map(|t| t.tracklets.len()).sum();
        assert_eq!(total, 3, "every tracklet appears exactly once");
        for t in &tracks {
            // No repeated tracklet inside a chain.
            let mut seen = std::collections::HashSet::new();
            assert!(t.tracklets.iter().all(|&i| seen.insert(i)));
        }
    }

    #[test]
    fn greedy_baseline_links_same_signature() {
        let stream = vec![
            obs(0, 0, 0, 0.0, 1),
            obs(0, 1, 500, 5.0, 1),
            obs(1, 0, 10_000, 200.0, 1),
            obs(1, 1, 10_500, 205.0, 1),
        ];
        let config = StitchConfig::default();
        let tracklets = build_tracklets(&stream, &config);
        assert_eq!(tracklets.len(), 2);
        let tracks = stitch_greedy(&tracklets, &config, Duration::from_secs(60));
        assert_eq!(tracks.len(), 1, "both tracklets join one global track");
        let score = score_links(&tracklets, &tracks);
        assert_eq!(score.correct_links, 1);
        assert_eq!(score.true_links, 1);
        assert_eq!(score.f1(), 1.0);
    }

    #[test]
    fn score_counts_wrong_links() {
        let stream = vec![obs(0, 0, 0, 0.0, 1), obs(1, 0, 5_000, 10.0, 2)];
        let config = StitchConfig::default();
        let tracklets = build_tracklets(&stream, &config);
        // Force-link the two different entities.
        let tracks = vec![GlobalTrack {
            tracklets: vec![0, 1],
        }];
        let score = score_links(&tracklets, &tracks);
        assert_eq!(score.predicted_links, 1);
        assert_eq!(score.correct_links, 0);
        assert_eq!(score.true_links, 0);
        assert_eq!(score.precision(), 0.0);
        assert_eq!(score.recall(), 1.0);
    }

    #[test]
    fn perfect_score_is_one() {
        let s = StitchScore {
            correct_links: 5,
            predicted_links: 5,
            true_links: 5,
        };
        assert_eq!(s.f1(), 1.0);
        let empty = StitchScore {
            correct_links: 0,
            predicted_links: 0,
            true_links: 0,
        };
        assert_eq!(empty.f1(), 1.0);
    }
}
