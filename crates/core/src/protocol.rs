//! The coordinator ↔ worker wire protocol.
//!
//! Every message is a [`Request`] or [`Response`] encoded with
//! `stcam-codec`. Discriminants are explicit single bytes so the format is
//! stable and the communication-cost experiment's byte counts are
//! meaningful.

use bytes::{Buf, BufMut};
use stcam_camnet::{batch, Observation, ObservationId};
use stcam_codec::{DecodeError, Wire};
use stcam_geo::{BBox, GridSpec, Point, TimeInterval};
use stcam_net::NodeId;

use crate::continuous::{ContinuousQueryId, Predicate};

/// A wire-encodable stand-in for [`GridSpec`] (which keeps its fields
/// private in `stcam-geo`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpecMsg {
    /// Grid origin.
    pub origin: Point,
    /// Cell side, metres.
    pub cell_size: f64,
    /// Columns.
    pub cols: u32,
    /// Rows.
    pub rows: u32,
}

impl From<GridSpec> for GridSpecMsg {
    fn from(g: GridSpec) -> Self {
        GridSpecMsg {
            origin: g.origin(),
            cell_size: g.cell_size(),
            cols: g.cols(),
            rows: g.rows(),
        }
    }
}

impl GridSpecMsg {
    /// Reconstructs the grid.
    pub fn to_grid(self) -> GridSpec {
        GridSpec::new(self.origin, self.cell_size, self.cols, self.rows)
    }
}

impl Wire for GridSpecMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.origin.encode(buf);
        self.cell_size.encode(buf);
        self.cols.encode(buf);
        self.rows.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let origin = Point::decode(buf)?;
        let cell_size = f64::decode(buf)?;
        let cols = u32::decode(buf)?;
        let rows = u32::decode(buf)?;
        if cell_size <= 0.0 || !cell_size.is_finite() || cols == 0 || rows == 0 {
            return Err(DecodeError::InvalidValue {
                reason: "degenerate grid spec",
            });
        }
        Ok(GridSpecMsg {
            origin,
            cell_size,
            cols,
            rows,
        })
    }
}

/// A request sent to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store these observations as shard primary (and replicate them).
    Ingest(Vec<Observation>),
    /// Store these observations as a replica for primary `primary`.
    Replicate {
        /// The worker whose shard these observations belong to.
        primary: NodeId,
        /// The replicated observations.
        batch: Vec<Observation>,
    },
    /// Sequenced, acknowledged ingest: the reliable mirror of `Ingest`.
    ///
    /// The `(sender, seq)` pair identifies the batch for retransmission
    /// dedup: the worker remembers recent sequence numbers per sender and
    /// answers a retransmitted batch from that memory without re-applying
    /// it. `epoch` is the routing-plan epoch the sender routed under; a
    /// worker whose own plan disagrees about ownership answers with
    /// [`Response::IngestNack`] naming the misrouted observations. Unlike
    /// `Ingest`, the worker does **not** replicate onward — the sender
    /// performs replication itself (via `ReplicateSeq`) so that an ack
    /// can certify durability.
    IngestSeq {
        /// The ingesting endpoint (an ingestor or the coordinator).
        sender: NodeId,
        /// Per-sender monotonically increasing batch sequence number.
        seq: u64,
        /// The routing-plan epoch the sender routed this batch under.
        epoch: u64,
        /// The observations, all believed owned by the addressee.
        batch: Vec<Observation>,
    },
    /// Sequenced, acknowledged replica write: the reliable mirror of
    /// `Replicate`, sent by the *ingesting* endpoint (not the primary) to
    /// each ring successor of `primary` before the batch is acknowledged.
    /// Deduplicated by `(sender, seq)` exactly like `IngestSeq`, and
    /// answered with [`Response::IngestAck`].
    ReplicateSeq {
        /// The ingesting endpoint performing sender-side replication.
        sender: NodeId,
        /// Per-sender monotonically increasing batch sequence number
        /// (a namespace separate from `IngestSeq` sequence numbers).
        seq: u64,
        /// The worker whose shard these observations belong to.
        primary: NodeId,
        /// The replicated observations.
        batch: Vec<Observation>,
    },
    /// Installs the addressee's slice of the routing plan: the set of
    /// grid cells it owns as of `epoch`. Workers use it to detect
    /// misrouted `IngestSeq` batches from stale senders; updates with an
    /// epoch older than the installed one are ignored.
    RouteUpdate {
        /// The routing-plan epoch this cell set belongs to.
        epoch: u64,
        /// The macro grid the cell indices refer to.
        grid: GridSpecMsg,
        /// Owned cells, packed as `row * grid_cols + col`.
        cells: Vec<u32>,
    },
    /// Return observations in `region` × `window` from the local shard.
    Range {
        /// Spatial predicate.
        region: BBox,
        /// Temporal predicate.
        window: TimeInterval,
    },
    /// Return the local k nearest observations to `at` within `window`,
    /// optionally only those within `max_distance` of `at`.
    Knn {
        /// Query point.
        at: Point,
        /// Temporal predicate.
        window: TimeInterval,
        /// Result size bound.
        k: u32,
        /// Prune radius from a previous phase, if any.
        max_distance: Option<f64>,
    },
    /// Return per-bucket counts over the local shard.
    Heatmap {
        /// Aggregation buckets.
        buckets: GridSpecMsg,
        /// Temporal predicate.
        window: TimeInterval,
    },
    /// Register a standing continuous query; matches stream to `notify`.
    RegisterContinuous {
        /// Query id (cluster-unique).
        id: ContinuousQueryId,
        /// Match predicate.
        predicate: Predicate,
        /// Node to notify on match.
        notify: NodeId,
    },
    /// Remove a standing query.
    UnregisterContinuous(ContinuousQueryId),
    /// Return every observation this worker holds as primary (failover
    /// export) — the answering worker is the *replica*, `of` the failed
    /// primary.
    SnapshotReplica {
        /// The failed primary whose replicated data is requested.
        of: NodeId,
    },
    /// Adopt these observations into the local primary shard (failover
    /// import). Unlike `Ingest` this does not re-replicate.
    Adopt(Vec<Observation>),
    /// Report local statistics.
    Stats,
    /// Drop observations older than the timestamp (retention sweep).
    EvictBefore(stcam_geo::Timestamp),
    /// Failover: absorb the local replica log held for `failed` into the
    /// primary shard and re-replicate it onward. The reply is `Ack`.
    Promote {
        /// The failed worker being taken over.
        failed: NodeId,
    },
    /// Shard migration: remove and return every observation positioned in
    /// `region` (all retained time). The coordinator ships the result to
    /// the region's new owner via `Adopt` during online rebalancing.
    ExtractRegion {
        /// The spatial region being migrated away.
        region: BBox,
    },
    /// As `Range` with an additional entity-class filter — predicate
    /// pushdown for typed queries ("trucks inside A").
    RangeFiltered {
        /// Spatial predicate.
        region: BBox,
        /// Temporal predicate.
        window: TimeInterval,
        /// Required class, as `EntityClass::as_u8`.
        class: u8,
    },
    /// Return the *non-zero* per-bucket counts over the local shard, as
    /// sparse `(bucket index, count)` pairs. The coordinator sums them
    /// and keeps the densest `k` ("hot cell" ranking). The sparse reply
    /// keeps the wire cost proportional to occupied cells, not grid size.
    TopCells {
        /// Aggregation buckets.
        buckets: GridSpecMsg,
        /// Temporal predicate.
        window: TimeInterval,
    },
    /// Answer `inner` from the replica log this worker holds for primary
    /// `of`, instead of from the local primary shard. This is the
    /// replica-failover read path: when a shard's primary is unreachable,
    /// the executor re-issues the shard's sub-query to a ring successor
    /// wrapped in this envelope. Only read requests are replica-readable;
    /// anything else (including a nested `ReplicaRead`) is answered with
    /// an application error.
    ReplicaRead {
        /// The unreachable primary whose replicated shard is queried.
        of: NodeId,
        /// The read to evaluate against that replica log.
        inner: Box<Request>,
    },
    /// Anti-entropy digest request: report, per macro cell of `grid`, the
    /// observation count and an order-independent checksum — once over
    /// the local primary shard, and once per replica log held for other
    /// primaries. The coordinator's repair sweeper compares primary and
    /// replica digests to find under-replicated or diverged cells without
    /// moving any observation data.
    CellDigest {
        /// The macro grid cells are reported against (packed
        /// `row * cols + col`, positions bucketed by `cell_of_clamped`).
        grid: GridSpecMsg,
    },
    /// Idempotent cell overwrite, the repair streamer's write primitive.
    ///
    /// When `primary` names *another* worker, the batch is applied to the
    /// replica log held for that primary; when it names the addressee
    /// itself, the batch is applied to the local primary shard (the
    /// rejoin/rebalance bulk-sync path). With `truncate` set the cell's
    /// current contents (under `grid`'s clamped bucketing) are removed
    /// first — including their dedup ids — so a repair round converges to
    /// exactly the primary's content even when the target holds stale or
    /// hinted extras. Chunked streams set `truncate` only on the first
    /// chunk; appends deduplicate by observation id, so a retransmitted
    /// chunk is harmless.
    Repair {
        /// The primary whose shard the cell belongs to (the addressee
        /// itself for primary-shard bulk sync).
        primary: NodeId,
        /// The macro grid `cell` refers to.
        grid: GridSpecMsg,
        /// The cell being overwritten, packed `row * cols + col`.
        cell: u32,
        /// Remove the cell's current contents before appending.
        truncate: bool,
        /// The authoritative observations for the cell (one chunk of).
        batch: Vec<Observation>,
    },
    /// Readmission handshake for a restarted worker: drop *all* local
    /// state (primary index, replica logs, dedup memories, standing
    /// queries) and install the given route. The coordinator then
    /// bulk-syncs the worker's shard via `Repair` and re-enters it into
    /// the plan; resetting first makes the whole handshake idempotent —
    /// a worker that answers `Rejoin` twice just starts over.
    Rejoin {
        /// The routing-plan epoch of the installed route.
        epoch: u64,
        /// The macro grid the cell indices refer to.
        grid: GridSpecMsg,
        /// The cells this worker will own, packed `row * cols + col`.
        cells: Vec<u32>,
    },
    /// Report the digests of every sealed segment held by the primary
    /// shard ([`Response::SegmentDigests`]). The rejoin bulk-sync path
    /// asks both sides for these and ships only the segments the receiver
    /// lacks.
    SegmentDigest,
    /// Export the primary shard's contents overlapping `region` as whole
    /// sealed segments (split at cell boundaries against the segments'
    /// own grid) plus the not-yet-sealed head rows, skipping any segment
    /// whose digest appears in `skip` ([`Response::Segments`]). The
    /// export is non-destructive and deterministic, so a retried transfer
    /// produces byte-identical frames and the receiver's dedup holds.
    ExportSegments {
        /// The region whose contents to export (routing region of the
        /// moving cells).
        region: BBox,
        /// Digests the requester already holds; matching segments are
        /// omitted from the reply.
        skip: Vec<SegmentDigestEntry>,
    },
    /// Install exported segments into the primary shard: each frame is
    /// verified (counts, checksums, window bounds) and archived whole —
    /// no row-by-row re-indexing — and `head` rows go through normal
    /// deduplicated ingest. Re-delivery is harmless: frames matching an
    /// already-held digest and rows already seen are dropped.
    InstallSegments {
        /// Verified-on-receipt sealed segment frames.
        frames: Vec<stcam_codec::SegmentFrame>,
        /// Rows that were still in the exporter's mutable head.
        head: Vec<Observation>,
    },
}

impl Request {
    /// The stable operation name of this request, used as the dispatch
    /// key in the worker's handler table and as the label of per-op serve
    /// counters. One name per variant.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Ingest(_) => "ingest",
            Request::Replicate { .. } => "replicate",
            Request::IngestSeq { .. } => "ingest_seq",
            Request::ReplicateSeq { .. } => "replicate_seq",
            Request::RouteUpdate { .. } => "route_update",
            Request::Range { .. } => "range",
            Request::Knn { .. } => "knn",
            Request::Heatmap { .. } => "heatmap",
            Request::RegisterContinuous { .. } => "register_continuous",
            Request::UnregisterContinuous(_) => "unregister_continuous",
            Request::SnapshotReplica { .. } => "snapshot_replica",
            Request::Adopt(_) => "adopt",
            Request::Stats => "stats",
            Request::EvictBefore(_) => "evict_before",
            Request::Promote { .. } => "promote",
            Request::ExtractRegion { .. } => "extract_region",
            Request::RangeFiltered { .. } => "range_filtered",
            Request::TopCells { .. } => "top_cells",
            Request::ReplicaRead { .. } => "replica_read",
            Request::CellDigest { .. } => "cell_digest",
            Request::Repair { .. } => "repair",
            Request::Rejoin { .. } => "rejoin",
            Request::SegmentDigest => "segment_digest",
            Request::ExportSegments { .. } => "export_segments",
            Request::InstallSegments { .. } => "install_segments",
        }
    }
}

/// The identity of one sealed segment: slice number, row count, and the
/// XOR-folded content checksum. Equal digests certify equal contents (up
/// to mix collisions), so rejoin and rebalance compare digest lists and
/// move only missing segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentDigestEntry {
    /// The time-slice number the segment covers.
    pub number: u64,
    /// Rows in the segment.
    pub count: u64,
    /// XOR fold of the per-observation mix over all rows.
    pub checksum: u64,
}

impl Wire for SegmentDigestEntry {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.number.encode(buf);
        self.count.encode(buf);
        self.checksum.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(SegmentDigestEntry {
            number: u64::decode(buf)?,
            count: u64::decode(buf)?,
            checksum: u64::decode(buf)?,
        })
    }
}

impl From<stcam_index::SegmentDigest> for SegmentDigestEntry {
    fn from(d: stcam_index::SegmentDigest) -> Self {
        SegmentDigestEntry {
            number: d.number,
            count: d.count,
            checksum: d.checksum,
        }
    }
}

impl SegmentDigestEntry {
    /// The index-side digest this entry mirrors.
    pub fn to_digest(self) -> stcam_index::SegmentDigest {
        stcam_index::SegmentDigest {
            number: self.number,
            count: self.count,
            checksum: self.checksum,
        }
    }
}

/// One cell's digest over a worker's primary shard: observation count
/// plus an order-independent checksum of the cell's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestEntry {
    /// The macro cell, packed `row * cols + col`.
    pub cell: u32,
    /// Observations positioned in the cell.
    pub count: u32,
    /// XOR-folded per-observation mix of id and timestamp (see
    /// [`observation_checksum`](crate::repair::observation_checksum)) —
    /// insertion-order independent, so two holders of the same set agree
    /// regardless of arrival order.
    pub checksum: u64,
}

impl Wire for DigestEntry {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.cell.encode(buf);
        self.count.encode(buf);
        self.checksum.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(DigestEntry {
            cell: u32::decode(buf)?,
            count: u32::decode(buf)?,
            checksum: u64::decode(buf)?,
        })
    }
}

/// One cell's digest over a replica log: as [`DigestEntry`], keyed by the
/// primary the log is held for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaDigestEntry {
    /// The primary whose replica log the entry describes.
    pub primary: NodeId,
    /// The macro cell, packed `row * cols + col`.
    pub cell: u32,
    /// Observations positioned in the cell.
    pub count: u32,
    /// Order-independent content checksum (same mix as [`DigestEntry`]).
    pub checksum: u64,
}

impl Wire for ReplicaDigestEntry {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.primary.0.encode(buf);
        self.cell.encode(buf);
        self.count.encode(buf);
        self.checksum.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(ReplicaDigestEntry {
            primary: NodeId(u32::decode(buf)?),
            cell: u32::decode(buf)?,
            count: u32::decode(buf)?,
            checksum: u64::decode(buf)?,
        })
    }
}

/// A worker's answer to [`Request::CellDigest`]: sparse per-cell digests
/// of its primary shard and of every replica log it holds. Cells with no
/// observations are omitted, so the wire cost tracks occupancy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DigestReport {
    /// Occupied cells of the primary shard, sorted by cell.
    pub primary: Vec<DigestEntry>,
    /// Occupied cells of each held replica log, sorted by
    /// `(primary, cell)`.
    pub replicas: Vec<ReplicaDigestEntry>,
}

impl Wire for DigestReport {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.primary.encode(buf);
        self.replicas.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(DigestReport {
            primary: Vec::decode(buf)?,
            replicas: Vec::decode(buf)?,
        })
    }
}

/// Statistics reported by a worker.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerStatsMsg {
    /// Observations in the primary shard index.
    pub primary_observations: u64,
    /// Observations held as replicas for other workers.
    pub replica_observations: u64,
    /// Total observations ever ingested as primary.
    pub ingested_total: u64,
    /// Continuous-query notifications sent.
    pub notifications_sent: u64,
    /// Standing continuous queries registered.
    pub continuous_queries: u64,
    /// Cumulative microseconds this worker has spent executing requests
    /// (its "busy time"). On a single-core host, wall-clock numbers do
    /// not show parallel speedup; the evaluation instead reports the
    /// critical path — the busiest shard's busy time — which is what a
    /// multi-machine deployment's latency would track.
    pub busy_micros: u64,
    /// Approximate bytes the primary shard keeps in memory: mutable-head
    /// rows plus resident (non-spilled) sealed-segment payloads and
    /// footers. The archive-scale experiment reads this to show the
    /// memory ceiling staying flat as the sealed tier grows.
    pub resident_bytes: u64,
    /// Sealed immutable segments held by the primary shard.
    pub sealed_segments: u64,
    /// End of the newest retained index slice, in milliseconds, if any
    /// data is held. Drives cluster-wide retention sweeps.
    pub newest_ms: Option<u64>,
    /// Requests served, per operation name (see [`Request::op_name`]),
    /// sorted by name. Only operations served at least once appear.
    pub served: Vec<(String, u64)>,
}

impl WorkerStatsMsg {
    /// Requests served under operation name `op` (0 when never served).
    pub fn served_count(&self, op: &str) -> u64 {
        self.served
            .iter()
            .find(|(name, _)| name == op)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

impl Wire for WorkerStatsMsg {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.primary_observations.encode(buf);
        self.replica_observations.encode(buf);
        self.ingested_total.encode(buf);
        self.notifications_sent.encode(buf);
        self.continuous_queries.encode(buf);
        self.busy_micros.encode(buf);
        self.resident_bytes.encode(buf);
        self.sealed_segments.encode(buf);
        self.newest_ms.encode(buf);
        self.served.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(WorkerStatsMsg {
            primary_observations: u64::decode(buf)?,
            replica_observations: u64::decode(buf)?,
            ingested_total: u64::decode(buf)?,
            notifications_sent: u64::decode(buf)?,
            continuous_queries: u64::decode(buf)?,
            busy_micros: u64::decode(buf)?,
            resident_bytes: u64::decode(buf)?,
            sealed_segments: u64::decode(buf)?,
            newest_ms: Option::decode(buf)?,
            served: Vec::decode(buf)?,
        })
    }
}

/// A worker's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success without data.
    Ack,
    /// Matching observations.
    Observations(Vec<Observation>),
    /// Dense per-bucket counts.
    Counts(Vec<u64>),
    /// Worker statistics.
    Stats(WorkerStatsMsg),
    /// Application-level failure.
    Error(String),
    /// Sparse per-bucket counts: `(bucket index, count)` for occupied
    /// buckets only (answer to [`Request::TopCells`]).
    CellCounts(Vec<(u32, u64)>),
    /// Positive acknowledgement of an `IngestSeq`/`ReplicateSeq` batch:
    /// every observation in the batch is owned by the addressee and is
    /// now applied (`accepted` counts them, including ones already
    /// present from an earlier transmission of the same batch).
    IngestAck {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Observations applied (or already present) at the addressee.
        accepted: u32,
    },
    /// Negative acknowledgement of an `IngestSeq` batch: the addressee
    /// applied the observations it owns (`accepted` of them) but rejects
    /// `misrouted` — observations its routing plan assigns elsewhere.
    /// `epoch` is the addressee's plan epoch, so a stale sender can tell
    /// whether *it* must refresh (its epoch is older) before re-routing.
    IngestNack {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Observations applied (or already present) at the addressee.
        accepted: u32,
        /// The addressee's routing-plan epoch.
        epoch: u64,
        /// Ids of the observations the addressee refuses to own.
        misrouted: Vec<ObservationId>,
    },
    /// Per-cell anti-entropy digests (answer to [`Request::CellDigest`]).
    Digests(DigestReport),
    /// Digests of every sealed segment held (answer to
    /// [`Request::SegmentDigest`]), ascending by `(number, digest)`.
    SegmentDigests(Vec<SegmentDigestEntry>),
    /// Sealed segment frames plus loose head rows (answer to
    /// [`Request::ExportSegments`]).
    Segments {
        /// Whole sealed segments overlapping the requested region.
        frames: Vec<stcam_codec::SegmentFrame>,
        /// Rows from the exporter's mutable head, sorted by id.
        head: Vec<Observation>,
    },
}

const REQ_PING: u8 = 0;
const REQ_INGEST: u8 = 1;
const REQ_REPLICATE: u8 = 2;
const REQ_RANGE: u8 = 3;
const REQ_KNN: u8 = 4;
const REQ_HEATMAP: u8 = 5;
const REQ_REGISTER: u8 = 6;
const REQ_UNREGISTER: u8 = 7;
const REQ_SNAPSHOT: u8 = 8;
const REQ_ADOPT: u8 = 9;
const REQ_STATS: u8 = 10;
const REQ_EVICT: u8 = 11;
const REQ_PROMOTE: u8 = 12;
const REQ_EXTRACT: u8 = 13;
const REQ_RANGE_FILTERED: u8 = 14;
const REQ_TOP_CELLS: u8 = 15;
const REQ_REPLICA_READ: u8 = 16;
const REQ_INGEST_SEQ: u8 = 17;
const REQ_REPLICATE_SEQ: u8 = 18;
const REQ_ROUTE_UPDATE: u8 = 19;
const REQ_CELL_DIGEST: u8 = 20;
const REQ_REPAIR: u8 = 21;
const REQ_REJOIN: u8 = 22;
const REQ_SEGMENT_DIGEST: u8 = 23;
const REQ_EXPORT_SEGMENTS: u8 = 24;
const REQ_INSTALL_SEGMENTS: u8 = 25;

impl Wire for Request {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Request::Ping => buf.put_u8(REQ_PING),
            Request::Ingest(batch) => {
                buf.put_u8(REQ_INGEST);
                batch::encode_batch(batch, buf);
            }
            Request::Replicate { primary, batch } => {
                buf.put_u8(REQ_REPLICATE);
                primary.0.encode(buf);
                batch::encode_batch(batch, buf);
            }
            Request::Range { region, window } => {
                buf.put_u8(REQ_RANGE);
                region.encode(buf);
                window.encode(buf);
            }
            Request::Knn {
                at,
                window,
                k,
                max_distance,
            } => {
                buf.put_u8(REQ_KNN);
                at.encode(buf);
                window.encode(buf);
                k.encode(buf);
                max_distance.encode(buf);
            }
            Request::Heatmap { buckets, window } => {
                buf.put_u8(REQ_HEATMAP);
                buckets.encode(buf);
                window.encode(buf);
            }
            Request::RegisterContinuous {
                id,
                predicate,
                notify,
            } => {
                buf.put_u8(REQ_REGISTER);
                id.0.encode(buf);
                predicate.encode(buf);
                notify.0.encode(buf);
            }
            Request::UnregisterContinuous(id) => {
                buf.put_u8(REQ_UNREGISTER);
                id.0.encode(buf);
            }
            Request::SnapshotReplica { of } => {
                buf.put_u8(REQ_SNAPSHOT);
                of.0.encode(buf);
            }
            Request::Adopt(batch) => {
                buf.put_u8(REQ_ADOPT);
                batch::encode_batch(batch, buf);
            }
            Request::Stats => buf.put_u8(REQ_STATS),
            Request::EvictBefore(t) => {
                buf.put_u8(REQ_EVICT);
                t.encode(buf);
            }
            Request::Promote { failed } => {
                buf.put_u8(REQ_PROMOTE);
                failed.0.encode(buf);
            }
            Request::ExtractRegion { region } => {
                buf.put_u8(REQ_EXTRACT);
                region.encode(buf);
            }
            Request::RangeFiltered {
                region,
                window,
                class,
            } => {
                buf.put_u8(REQ_RANGE_FILTERED);
                region.encode(buf);
                window.encode(buf);
                class.encode(buf);
            }
            Request::TopCells { buckets, window } => {
                buf.put_u8(REQ_TOP_CELLS);
                buckets.encode(buf);
                window.encode(buf);
            }
            Request::ReplicaRead { of, inner } => {
                buf.put_u8(REQ_REPLICA_READ);
                of.0.encode(buf);
                inner.encode(buf);
            }
            Request::IngestSeq {
                sender,
                seq,
                epoch,
                batch,
            } => {
                buf.put_u8(REQ_INGEST_SEQ);
                sender.0.encode(buf);
                seq.encode(buf);
                epoch.encode(buf);
                batch::encode_batch(batch, buf);
            }
            Request::ReplicateSeq {
                sender,
                seq,
                primary,
                batch,
            } => {
                buf.put_u8(REQ_REPLICATE_SEQ);
                sender.0.encode(buf);
                seq.encode(buf);
                primary.0.encode(buf);
                batch::encode_batch(batch, buf);
            }
            Request::RouteUpdate { epoch, grid, cells } => {
                buf.put_u8(REQ_ROUTE_UPDATE);
                epoch.encode(buf);
                grid.encode(buf);
                cells.encode(buf);
            }
            Request::CellDigest { grid } => {
                buf.put_u8(REQ_CELL_DIGEST);
                grid.encode(buf);
            }
            Request::Repair {
                primary,
                grid,
                cell,
                truncate,
                batch,
            } => {
                buf.put_u8(REQ_REPAIR);
                primary.0.encode(buf);
                grid.encode(buf);
                cell.encode(buf);
                truncate.encode(buf);
                batch::encode_batch(batch, buf);
            }
            Request::Rejoin { epoch, grid, cells } => {
                buf.put_u8(REQ_REJOIN);
                epoch.encode(buf);
                grid.encode(buf);
                cells.encode(buf);
            }
            Request::SegmentDigest => buf.put_u8(REQ_SEGMENT_DIGEST),
            Request::ExportSegments { region, skip } => {
                buf.put_u8(REQ_EXPORT_SEGMENTS);
                region.encode(buf);
                skip.encode(buf);
            }
            Request::InstallSegments { frames, head } => {
                buf.put_u8(REQ_INSTALL_SEGMENTS);
                frames.encode(buf);
                batch::encode_batch(head, buf);
            }
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let tag = u8::decode(buf)?;
        Self::decode_tagged(tag, buf)
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            Request::Ingest(batch) | Request::Adopt(batch) => batch::batch_size_hint(batch),
            Request::Replicate { batch, .. } => 5 + batch::batch_size_hint(batch),
            Request::IngestSeq { batch, .. } => 23 + batch::batch_size_hint(batch),
            Request::ReplicateSeq { batch, .. } => 28 + batch::batch_size_hint(batch),
            Request::RouteUpdate { cells, .. } => 41 + cells.size_hint(),
            Request::ReplicaRead { inner, .. } => 5 + inner.size_hint(),
            Request::Repair { batch, .. } => 42 + batch::batch_size_hint(batch),
            Request::Rejoin { cells, .. } => 41 + cells.size_hint(),
            Request::ExportSegments { skip, .. } => 32 + skip.size_hint(),
            Request::InstallSegments { frames, head } => {
                frames.size_hint() + batch::batch_size_hint(head)
            }
            _ => 48,
        }
    }
}

impl Request {
    /// Decodes the request body for an already-read discriminant byte.
    fn decode_tagged<B: Buf>(tag: u8, buf: &mut B) -> Result<Self, DecodeError> {
        Ok(match tag {
            REQ_PING => Request::Ping,
            REQ_INGEST => Request::Ingest(batch::decode_batch(buf)?),
            REQ_REPLICATE => Request::Replicate {
                primary: NodeId(u32::decode(buf)?),
                batch: batch::decode_batch(buf)?,
            },
            REQ_RANGE => Request::Range {
                region: BBox::decode(buf)?,
                window: TimeInterval::decode(buf)?,
            },
            REQ_KNN => Request::Knn {
                at: Point::decode(buf)?,
                window: TimeInterval::decode(buf)?,
                k: u32::decode(buf)?,
                max_distance: Option::decode(buf)?,
            },
            REQ_HEATMAP => Request::Heatmap {
                buckets: GridSpecMsg::decode(buf)?,
                window: TimeInterval::decode(buf)?,
            },
            REQ_REGISTER => Request::RegisterContinuous {
                id: ContinuousQueryId(u64::decode(buf)?),
                predicate: Predicate::decode(buf)?,
                notify: NodeId(u32::decode(buf)?),
            },
            REQ_UNREGISTER => Request::UnregisterContinuous(ContinuousQueryId(u64::decode(buf)?)),
            REQ_SNAPSHOT => Request::SnapshotReplica {
                of: NodeId(u32::decode(buf)?),
            },
            REQ_ADOPT => Request::Adopt(batch::decode_batch(buf)?),
            REQ_STATS => Request::Stats,
            REQ_EVICT => Request::EvictBefore(stcam_geo::Timestamp::decode(buf)?),
            REQ_PROMOTE => Request::Promote {
                failed: NodeId(u32::decode(buf)?),
            },
            REQ_EXTRACT => Request::ExtractRegion {
                region: BBox::decode(buf)?,
            },
            REQ_RANGE_FILTERED => Request::RangeFiltered {
                region: BBox::decode(buf)?,
                window: TimeInterval::decode(buf)?,
                class: u8::decode(buf)?,
            },
            REQ_TOP_CELLS => Request::TopCells {
                buckets: GridSpecMsg::decode(buf)?,
                window: TimeInterval::decode(buf)?,
            },
            REQ_REPLICA_READ => {
                let of = NodeId(u32::decode(buf)?);
                let inner_tag = u8::decode(buf)?;
                // Reject nesting *before* recursing: the decoder depth on
                // hostile input stays bounded at two.
                if inner_tag == REQ_REPLICA_READ {
                    return Err(DecodeError::InvalidValue {
                        reason: "nested replica read",
                    });
                }
                Request::ReplicaRead {
                    of,
                    inner: Box::new(Self::decode_tagged(inner_tag, buf)?),
                }
            }
            REQ_INGEST_SEQ => Request::IngestSeq {
                sender: NodeId(u32::decode(buf)?),
                seq: u64::decode(buf)?,
                epoch: u64::decode(buf)?,
                batch: batch::decode_batch(buf)?,
            },
            REQ_REPLICATE_SEQ => Request::ReplicateSeq {
                sender: NodeId(u32::decode(buf)?),
                seq: u64::decode(buf)?,
                primary: NodeId(u32::decode(buf)?),
                batch: batch::decode_batch(buf)?,
            },
            REQ_ROUTE_UPDATE => Request::RouteUpdate {
                epoch: u64::decode(buf)?,
                grid: GridSpecMsg::decode(buf)?,
                cells: Vec::decode(buf)?,
            },
            REQ_CELL_DIGEST => Request::CellDigest {
                grid: GridSpecMsg::decode(buf)?,
            },
            REQ_REPAIR => Request::Repair {
                primary: NodeId(u32::decode(buf)?),
                grid: GridSpecMsg::decode(buf)?,
                cell: u32::decode(buf)?,
                truncate: bool::decode(buf)?,
                batch: batch::decode_batch(buf)?,
            },
            REQ_REJOIN => Request::Rejoin {
                epoch: u64::decode(buf)?,
                grid: GridSpecMsg::decode(buf)?,
                cells: Vec::decode(buf)?,
            },
            REQ_SEGMENT_DIGEST => Request::SegmentDigest,
            REQ_EXPORT_SEGMENTS => Request::ExportSegments {
                region: BBox::decode(buf)?,
                skip: Vec::decode(buf)?,
            },
            REQ_INSTALL_SEGMENTS => Request::InstallSegments {
                frames: Vec::decode(buf)?,
                head: batch::decode_batch(buf)?,
            },
            other => {
                return Err(DecodeError::InvalidDiscriminant {
                    type_name: "Request",
                    value: other as u64,
                })
            }
        })
    }
}

const RESP_ACK: u8 = 0;
const RESP_OBSERVATIONS: u8 = 1;
const RESP_COUNTS: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_CELL_COUNTS: u8 = 5;
const RESP_INGEST_ACK: u8 = 6;
const RESP_INGEST_NACK: u8 = 7;
const RESP_DIGESTS: u8 = 8;
const RESP_SEGMENT_DIGESTS: u8 = 9;
const RESP_SEGMENTS: u8 = 10;

impl Wire for Response {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Response::Ack => buf.put_u8(RESP_ACK),
            Response::Observations(obs) => {
                buf.put_u8(RESP_OBSERVATIONS);
                batch::encode_batch(obs, buf);
            }
            Response::Counts(counts) => {
                buf.put_u8(RESP_COUNTS);
                counts.encode(buf);
            }
            Response::Stats(stats) => {
                buf.put_u8(RESP_STATS);
                stats.encode(buf);
            }
            Response::Error(msg) => {
                buf.put_u8(RESP_ERROR);
                msg.encode(buf);
            }
            Response::CellCounts(cells) => {
                buf.put_u8(RESP_CELL_COUNTS);
                cells.encode(buf);
            }
            Response::IngestAck { seq, accepted } => {
                buf.put_u8(RESP_INGEST_ACK);
                seq.encode(buf);
                accepted.encode(buf);
            }
            Response::IngestNack {
                seq,
                accepted,
                epoch,
                misrouted,
            } => {
                buf.put_u8(RESP_INGEST_NACK);
                seq.encode(buf);
                accepted.encode(buf);
                epoch.encode(buf);
                misrouted.encode(buf);
            }
            Response::Digests(report) => {
                buf.put_u8(RESP_DIGESTS);
                report.encode(buf);
            }
            Response::SegmentDigests(digests) => {
                buf.put_u8(RESP_SEGMENT_DIGESTS);
                digests.encode(buf);
            }
            Response::Segments { frames, head } => {
                buf.put_u8(RESP_SEGMENTS);
                frames.encode(buf);
                batch::encode_batch(head, buf);
            }
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            RESP_ACK => Response::Ack,
            RESP_OBSERVATIONS => Response::Observations(batch::decode_batch(buf)?),
            RESP_COUNTS => Response::Counts(Vec::decode(buf)?),
            RESP_STATS => Response::Stats(WorkerStatsMsg::decode(buf)?),
            RESP_ERROR => Response::Error(String::decode(buf)?),
            RESP_CELL_COUNTS => Response::CellCounts(Vec::decode(buf)?),
            RESP_INGEST_ACK => Response::IngestAck {
                seq: u64::decode(buf)?,
                accepted: u32::decode(buf)?,
            },
            RESP_INGEST_NACK => Response::IngestNack {
                seq: u64::decode(buf)?,
                accepted: u32::decode(buf)?,
                epoch: u64::decode(buf)?,
                misrouted: Vec::decode(buf)?,
            },
            RESP_DIGESTS => Response::Digests(DigestReport::decode(buf)?),
            RESP_SEGMENT_DIGESTS => Response::SegmentDigests(Vec::decode(buf)?),
            RESP_SEGMENTS => Response::Segments {
                frames: Vec::decode(buf)?,
                head: batch::decode_batch(buf)?,
            },
            other => {
                return Err(DecodeError::InvalidDiscriminant {
                    type_name: "Response",
                    value: other as u64,
                })
            }
        })
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            Response::Observations(obs) => batch::batch_size_hint(obs),
            Response::Counts(counts) => counts.size_hint(),
            Response::CellCounts(cells) => cells.size_hint(),
            Response::Error(msg) => msg.size_hint(),
            Response::IngestNack { misrouted, .. } => 21 + misrouted.size_hint(),
            Response::Digests(report) => {
                16 * report.primary.len() + 20 * report.replicas.len() + 20
            }
            Response::SegmentDigests(digests) => digests.size_hint(),
            Response::Segments { frames, head } => {
                frames.size_hint() + batch::batch_size_hint(head)
            }
            _ => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_codec::{decode_from_slice, encode_to_vec};
    use stcam_geo::Timestamp;
    use stcam_world::{EntityClass, EntityId};

    fn obs() -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(1), 7),
            camera: CameraId(1),
            time: Timestamp::from_secs(3),
            position: Point::new(10.0, 20.0),
            class: EntityClass::Pedestrian,
            signature: Signature::latent_for_entity(5),
            truth: Some(EntityId(5)),
        }
    }

    fn round_trip_req(r: Request) {
        let bytes = encode_to_vec(&r);
        assert_eq!(decode_from_slice::<Request>(&bytes).unwrap(), r);
    }

    fn round_trip_resp(r: Response) {
        let bytes = encode_to_vec(&r);
        assert_eq!(decode_from_slice::<Response>(&bytes).unwrap(), r);
    }

    #[test]
    fn all_requests_round_trip() {
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10));
        round_trip_req(Request::Ping);
        round_trip_req(Request::Ingest(vec![obs(), obs()]));
        round_trip_req(Request::Replicate {
            primary: NodeId(3),
            batch: vec![obs()],
        });
        round_trip_req(Request::Range {
            region: BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)),
            window,
        });
        round_trip_req(Request::Knn {
            at: Point::new(1.0, 2.0),
            window,
            k: 16,
            max_distance: Some(120.5),
        });
        round_trip_req(Request::Knn {
            at: Point::new(1.0, 2.0),
            window,
            k: 1,
            max_distance: None,
        });
        round_trip_req(Request::Heatmap {
            buckets: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 100.0,
                cols: 8,
                rows: 8,
            },
            window,
        });
        round_trip_req(Request::RegisterContinuous {
            id: ContinuousQueryId(9),
            predicate: Predicate {
                region: BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
                class: Some(EntityClass::Truck),
            },
            notify: NodeId(0),
        });
        round_trip_req(Request::UnregisterContinuous(ContinuousQueryId(9)));
        round_trip_req(Request::SnapshotReplica { of: NodeId(2) });
        round_trip_req(Request::Adopt(vec![obs()]));
        round_trip_req(Request::Stats);
        round_trip_req(Request::EvictBefore(Timestamp::from_secs(100)));
        round_trip_req(Request::Promote { failed: NodeId(7) });
        round_trip_req(Request::ExtractRegion {
            region: BBox::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0)),
        });
        round_trip_req(Request::RangeFiltered {
            region: BBox::new(Point::new(0.0, 0.0), Point::new(9.0, 9.0)),
            window,
            class: 3,
        });
        round_trip_req(Request::TopCells {
            buckets: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 50.0,
                cols: 16,
                rows: 16,
            },
            window,
        });
        round_trip_req(Request::ReplicaRead {
            of: NodeId(5),
            inner: Box::new(Request::Range {
                region: BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)),
                window,
            }),
        });
        round_trip_req(Request::IngestSeq {
            sender: NodeId(10_001),
            seq: 42,
            epoch: 3,
            batch: vec![obs(), obs()],
        });
        round_trip_req(Request::ReplicateSeq {
            sender: NodeId(10_001),
            seq: 43,
            primary: NodeId(2),
            batch: vec![obs()],
        });
        round_trip_req(Request::RouteUpdate {
            epoch: 4,
            grid: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 200.0,
                cols: 8,
                rows: 8,
            },
            cells: vec![0, 7, 63],
        });
        round_trip_req(Request::CellDigest {
            grid: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 100.0,
                cols: 4,
                rows: 4,
            },
        });
        round_trip_req(Request::Repair {
            primary: NodeId(3),
            grid: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 100.0,
                cols: 4,
                rows: 4,
            },
            cell: 9,
            truncate: true,
            batch: vec![obs(), obs()],
        });
        round_trip_req(Request::Repair {
            primary: NodeId(4),
            grid: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 100.0,
                cols: 4,
                rows: 4,
            },
            cell: 0,
            truncate: false,
            batch: vec![],
        });
        round_trip_req(Request::Rejoin {
            epoch: 9,
            grid: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 100.0,
                cols: 4,
                rows: 4,
            },
            cells: vec![1, 2, 14],
        });
        round_trip_req(Request::SegmentDigest);
        round_trip_req(Request::ExportSegments {
            region: BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)),
            skip: vec![
                SegmentDigestEntry {
                    number: 3,
                    count: 12,
                    checksum: 0xFEED,
                },
                SegmentDigestEntry {
                    number: 4,
                    count: 1,
                    checksum: u64::MAX,
                },
            ],
        });
        round_trip_req(Request::InstallSegments {
            frames: vec![segment_frame()],
            head: vec![obs(), obs()],
        });
        round_trip_req(Request::InstallSegments {
            frames: vec![],
            head: vec![],
        });
    }

    /// A real sealed-segment frame: seal one observation, export it.
    fn segment_frame() -> stcam_codec::SegmentFrame {
        let mut index = stcam_index::StIndex::new(
            stcam_index::IndexConfig::new(
                BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
                50.0,
                stcam_geo::Duration::from_secs(10),
            )
            .with_head_slices(1),
        );
        index.insert(obs());
        index.seal_all();
        let everything = BBox::new(Point::new(-1e12, -1e12), Point::new(1e12, 1e12));
        let (frames, _) = index.export_segments(everything, &[]);
        assert_eq!(frames.len(), 1);
        frames.into_iter().next().unwrap()
    }

    #[test]
    fn nested_replica_read_rejected() {
        let evil = Request::ReplicaRead {
            of: NodeId(1),
            inner: Box::new(Request::ReplicaRead {
                of: NodeId(2),
                inner: Box::new(Request::Ping),
            }),
        };
        let bytes = encode_to_vec(&evil);
        assert!(matches!(
            decode_from_slice::<Request>(&bytes),
            Err(DecodeError::InvalidValue {
                reason: "nested replica read"
            })
        ));
    }

    #[test]
    fn all_responses_round_trip() {
        round_trip_resp(Response::Ack);
        round_trip_resp(Response::Observations(vec![obs()]));
        round_trip_resp(Response::Counts(vec![0, 5, 17]));
        round_trip_resp(Response::Stats(WorkerStatsMsg {
            primary_observations: 10,
            replica_observations: 3,
            ingested_total: 100,
            notifications_sent: 4,
            continuous_queries: 1,
            busy_micros: 1234,
            resident_bytes: 4_096,
            sealed_segments: 7,
            newest_ms: Some(99_000),
            served: vec![("ping".into(), 3), ("range".into(), 12)],
        }));
        round_trip_resp(Response::Error("shard unavailable".into()));
        round_trip_resp(Response::CellCounts(vec![(0, 9), (17, 1), (250, 3)]));
        round_trip_resp(Response::IngestAck {
            seq: 42,
            accepted: 17,
        });
        round_trip_resp(Response::IngestNack {
            seq: 43,
            accepted: 2,
            epoch: 5,
            misrouted: vec![
                ObservationId::compose(CameraId(1), 7),
                ObservationId::compose(CameraId(2), 9),
            ],
        });
        round_trip_resp(Response::Digests(DigestReport::default()));
        round_trip_resp(Response::Digests(DigestReport {
            primary: vec![
                DigestEntry {
                    cell: 0,
                    count: 3,
                    checksum: 0xDEAD_BEEF,
                },
                DigestEntry {
                    cell: 7,
                    count: 1,
                    checksum: 42,
                },
            ],
            replicas: vec![ReplicaDigestEntry {
                primary: NodeId(2),
                cell: 5,
                count: 9,
                checksum: u64::MAX,
            }],
        }));
        round_trip_resp(Response::SegmentDigests(vec![]));
        round_trip_resp(Response::SegmentDigests(vec![
            SegmentDigestEntry {
                number: 0,
                count: 1000,
                checksum: 7,
            },
            SegmentDigestEntry {
                number: 5,
                count: 1,
                checksum: 0xABCD,
            },
        ]));
        round_trip_resp(Response::Segments {
            frames: vec![segment_frame()],
            head: vec![obs()],
        });
        round_trip_resp(Response::Segments {
            frames: vec![],
            head: vec![],
        });
    }

    #[test]
    fn op_names_are_unique_and_stable() {
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(1));
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let grid = GridSpecMsg {
            origin: Point::new(0.0, 0.0),
            cell_size: 1.0,
            cols: 1,
            rows: 1,
        };
        let all = [
            Request::Ping,
            Request::Ingest(vec![]),
            Request::Replicate {
                primary: NodeId(1),
                batch: vec![],
            },
            Request::Range { region, window },
            Request::Knn {
                at: Point::new(0.0, 0.0),
                window,
                k: 1,
                max_distance: None,
            },
            Request::Heatmap {
                buckets: grid,
                window,
            },
            Request::RegisterContinuous {
                id: ContinuousQueryId(1),
                predicate: Predicate {
                    region,
                    class: None,
                },
                notify: NodeId(0),
            },
            Request::UnregisterContinuous(ContinuousQueryId(1)),
            Request::SnapshotReplica { of: NodeId(1) },
            Request::Adopt(vec![]),
            Request::Stats,
            Request::EvictBefore(Timestamp::ZERO),
            Request::Promote { failed: NodeId(1) },
            Request::ExtractRegion { region },
            Request::RangeFiltered {
                region,
                window,
                class: 0,
            },
            Request::TopCells {
                buckets: grid,
                window,
            },
            Request::ReplicaRead {
                of: NodeId(1),
                inner: Box::new(Request::Range { region, window }),
            },
            Request::IngestSeq {
                sender: NodeId(0),
                seq: 0,
                epoch: 1,
                batch: vec![],
            },
            Request::ReplicateSeq {
                sender: NodeId(0),
                seq: 0,
                primary: NodeId(1),
                batch: vec![],
            },
            Request::RouteUpdate {
                epoch: 1,
                grid,
                cells: vec![],
            },
            Request::CellDigest { grid },
            Request::Repair {
                primary: NodeId(1),
                grid,
                cell: 0,
                truncate: false,
                batch: vec![],
            },
            Request::Rejoin {
                epoch: 1,
                grid,
                cells: vec![],
            },
            Request::SegmentDigest,
            Request::ExportSegments {
                region,
                skip: vec![],
            },
            Request::InstallSegments {
                frames: vec![],
                head: vec![],
            },
        ];
        let names: std::collections::HashSet<&str> = all.iter().map(|r| r.op_name()).collect();
        assert_eq!(names.len(), all.len(), "duplicate op names");
    }

    #[test]
    fn served_count_lookup() {
        let stats = WorkerStatsMsg {
            served: vec![("ping".into(), 2), ("range".into(), 7)],
            ..Default::default()
        };
        assert_eq!(stats.served_count("range"), 7);
        assert_eq!(stats.served_count("knn"), 0);
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            decode_from_slice::<Request>(&[200]),
            Err(DecodeError::InvalidDiscriminant { .. })
        ));
        assert!(matches!(
            decode_from_slice::<Response>(&[200]),
            Err(DecodeError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn grid_spec_msg_round_trips_through_grid() {
        let g = GridSpec::new(Point::new(5.0, 5.0), 25.0, 4, 8);
        let msg = GridSpecMsg::from(g);
        let g2 = msg.to_grid();
        assert_eq!(g, g2);
    }

    #[test]
    fn degenerate_grid_rejected() {
        let bad = GridSpecMsg {
            origin: Point::ORIGIN,
            cell_size: 0.0,
            cols: 4,
            rows: 4,
        };
        let bytes = encode_to_vec(&bad);
        assert!(matches!(
            decode_from_slice::<GridSpecMsg>(&bytes),
            Err(DecodeError::InvalidValue { .. })
        ));
    }
}
