//! The embeddable cluster facade.

use std::time::Duration as StdDuration;

use parking_lot::Mutex;
use stcam_camnet::Observation;
use stcam_geo::{BBox, Duration, GridSpec, Point, TimeInterval, Timestamp};
use stcam_index::IndexConfig;
use stcam_net::{Fabric, FabricStats, LinkModel, NodeId};

use crate::continuous::{ContinuousQueryId, Notification, Predicate};
use crate::coordinator::{ClusterStats, Coordinator, RebalanceReport};
use crate::error::StcamError;
use crate::exec::{Degraded, QueryMode};
use crate::ingest::Ingestor;
use crate::partition::{PartitionMap, PartitionPolicy};
use crate::plane::QueryPlane;
use crate::repair::{RepairBudget, RepairReport};
use crate::worker::{Worker, WorkerConfig, WorkerHandle};

/// Configuration of a whole cluster, with builder-style adjustment.
///
/// # Example
///
/// ```
/// use stcam::{ClusterConfig, PartitionPolicy};
/// use stcam_geo::{BBox, Point};
///
/// let extent = BBox::new(Point::new(0.0, 0.0), Point::new(4000.0, 4000.0));
/// let config = ClusterConfig::new(extent, 8)
///     .with_replication(2)
///     .with_partition_policy(PartitionPolicy::UniformHash);
/// assert_eq!(config.workers, 8);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Deployment extent.
    pub extent: BBox,
    /// Number of worker nodes.
    pub workers: usize,
    /// Replicas per shard (excluding the primary); 0 disables replication.
    pub replication: usize,
    /// Cell-to-worker assignment policy.
    pub partition_policy: PartitionPolicy,
    /// Macro (partitioning) cell size, metres.
    pub macro_cell_size: f64,
    /// Worker-local index cell size, metres.
    pub index_cell_size: f64,
    /// Worker-local index slice length.
    pub slice_len: Duration,
    /// Per-worker retention budget in observations (0 = unbounded).
    pub max_observations_per_worker: usize,
    /// Link model of the simulated network.
    pub link: LinkModel,
    /// RPC timeout for coordinator → worker calls.
    pub rpc_timeout: StdDuration,
    /// Per-macro-cell load estimates for
    /// [`PartitionPolicy::LoadAware`] (row-major over the macro grid).
    pub load_profile: Option<Vec<u64>>,
    /// Fabric endpoints in the query plane's pool (minimum 1). Each
    /// concurrent read borrows one round-robin; endpoints support
    /// concurrent calls, so this bounds contention, not parallelism.
    pub query_concurrency: usize,
}

impl ClusterConfig {
    /// A sensible default deployment over `extent` with `workers` nodes:
    /// replication 1, uniform partitioning, macro cells 1/16 of the
    /// extent's width, index cells 1/80, 10-second slices, LAN links.
    ///
    /// # Panics
    ///
    /// Panics when `extent` is empty or `workers` is zero.
    pub fn new(extent: BBox, workers: usize) -> Self {
        assert!(!extent.is_empty(), "extent must be non-empty");
        assert!(workers > 0, "need at least one worker");
        let width = extent.width().max(extent.height());
        ClusterConfig {
            extent,
            workers,
            replication: 1,
            partition_policy: PartitionPolicy::UniformHash,
            macro_cell_size: width / 16.0,
            index_cell_size: width / 80.0,
            slice_len: Duration::from_secs(10),
            max_observations_per_worker: 0,
            link: LinkModel::lan(),
            rpc_timeout: StdDuration::from_secs(5),
            load_profile: None,
            query_concurrency: 8,
        }
    }

    /// Replaces the replication factor.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Replaces the partition policy.
    pub fn with_partition_policy(mut self, policy: PartitionPolicy) -> Self {
        self.partition_policy = policy;
        self
    }

    /// Supplies the per-macro-cell load profile for load-aware
    /// partitioning.
    pub fn with_load_profile(mut self, loads: Vec<u64>) -> Self {
        self.load_profile = Some(loads);
        self
    }

    /// Replaces the link model.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Replaces the macro cell size.
    pub fn with_macro_cell_size(mut self, size: f64) -> Self {
        self.macro_cell_size = size;
        self
    }

    /// Replaces the per-worker retention budget.
    pub fn with_max_observations_per_worker(mut self, max: usize) -> Self {
        self.max_observations_per_worker = max;
        self
    }

    /// Replaces the coordinator → worker RPC timeout. Chaos and failover
    /// tests lower this so dead-node sub-queries fail fast.
    pub fn with_rpc_timeout(mut self, timeout: StdDuration) -> Self {
        self.rpc_timeout = timeout;
        self
    }

    /// Replaces the query-plane endpoint pool size (clamped to ≥ 1).
    pub fn with_query_concurrency(mut self, endpoints: usize) -> Self {
        self.query_concurrency = endpoints.max(1);
        self
    }

    /// The macro grid this configuration induces (useful for building a
    /// load profile).
    pub fn macro_grid(&self) -> GridSpec {
        GridSpec::covering(self.extent, self.macro_cell_size)
    }
}

/// A running cluster: a fabric, `N` worker threads and a coordinator,
/// behind plain method calls.
///
/// All methods are `&self` (internally synchronised), so a `Cluster` can
/// be shared across client threads. Reads (range/kNN/heat-map/top-cells
/// and their `_with` variants, plus telemetry accessors) go straight to
/// the lock-free [`QueryPlane`] and never touch the coordinator mutex;
/// writes and control actions (ingest, flush, rebalance, recovery,
/// continuous queries) serialise on the coordinator as before.
#[derive(Debug)]
pub struct Cluster {
    fabric: Fabric,
    coordinator: std::sync::Arc<Mutex<Coordinator>>,
    plane: std::sync::Arc<QueryPlane>,
    workers: Mutex<Option<Vec<WorkerHandle>>>,
    config: ClusterConfig,
    next_ingestor: std::sync::atomic::AtomicU32,
    monitor: Mutex<Option<MonitorHandle>>,
    retention: Mutex<Option<MonitorHandle>>,
}

/// A periodic background thread with interruptible sleep: the tick runs
/// once immediately on spawn, then every `interval`, and [`stop`]
/// (`Self::stop`) wakes the thread mid-wait instead of letting a long
/// interval delay shutdown.
#[derive(Debug)]
struct MonitorHandle {
    signal: std::sync::Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    join: std::thread::JoinHandle<()>,
}

impl MonitorHandle {
    fn spawn(name: &str, interval: StdDuration, mut tick: impl FnMut() + Send + 'static) -> Self {
        let signal = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let signal_thread = std::sync::Arc::clone(&signal);
        let join = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || {
                let (stopped, wake) = &*signal_thread;
                loop {
                    tick();
                    let deadline = std::time::Instant::now() + interval;
                    let mut stopped = stopped.lock().expect("monitor mutex poisoned");
                    // Deadline-based wait so spurious wakeups re-arm with
                    // the remaining time rather than a fresh interval.
                    loop {
                        if *stopped {
                            return;
                        }
                        let now = std::time::Instant::now();
                        if now >= deadline {
                            break;
                        }
                        stopped = wake
                            .wait_timeout(stopped, deadline - now)
                            .expect("monitor mutex poisoned")
                            .0;
                    }
                }
            })
            .expect("spawn cluster monitor");
        MonitorHandle { signal, join }
    }

    fn stop(self) {
        let (stopped, wake) = &*self.signal;
        *stopped.lock().expect("monitor mutex poisoned") = true;
        wake.notify_all();
        let _ = self.join.join();
    }
}

impl Cluster {
    /// Boots a cluster per `config`.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (all setup is local); the
    /// `Result` reserves room for resource limits.
    pub fn launch(config: ClusterConfig) -> Result<Self, StcamError> {
        let fabric = Fabric::new(config.link);
        let worker_ids: Vec<NodeId> = (1..=config.workers as u32).map(NodeId).collect();
        let partition = PartitionMap::build(
            config.partition_policy,
            config.extent,
            config.macro_cell_size,
            worker_ids.clone(),
            config.load_profile.as_deref(),
        );
        let index_config =
            IndexConfig::new(config.extent, config.index_cell_size, config.slice_len)
                .with_max_observations(config.max_observations_per_worker);
        let mut handles = Vec::with_capacity(config.workers);
        for &id in &worker_ids {
            let endpoint = fabric.register(id);
            let replicas = partition.successors(id, config.replication);
            handles.push(Worker::spawn(
                endpoint,
                WorkerConfig {
                    index: index_config.clone(),
                    replicas,
                },
            ));
        }
        let coordinator_endpoint = fabric.register(NodeId(0));
        // Query-plane endpoints live in their own id range (20 000+),
        // clear of workers (1..), the coordinator (0) and ingestors
        // (10 000+).
        let query_endpoints = (0..config.query_concurrency.max(1) as u32)
            .map(|k| fabric.register(NodeId(20_000 + k)))
            .collect();
        let coordinator = Coordinator::new(
            coordinator_endpoint,
            query_endpoints,
            partition,
            config.replication,
            config.rpc_timeout,
        );
        // Arm the workers' misroute check from the start, so stale
        // senders are NACKed (and self-heal) after the first recovery
        // or rebalance instead of silently feeding old owners.
        coordinator.broadcast_routes();
        let plane = coordinator.query_plane();
        Ok(Cluster {
            fabric,
            coordinator: std::sync::Arc::new(Mutex::new(coordinator)),
            plane,
            workers: Mutex::new(Some(handles)),
            config,
            next_ingestor: std::sync::atomic::AtomicU32::new(10_000),
            monitor: Mutex::new(None),
            retention: Mutex::new(None),
        })
    }

    /// The lock-free query plane. Clone the `Arc` to issue reads from
    /// many threads without any shared locking; the facade's own query
    /// methods use the same plane.
    pub fn query_plane(&self) -> std::sync::Arc<QueryPlane> {
        std::sync::Arc::clone(&self.plane)
    }

    /// The configuration this cluster was launched with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Acknowledged ingest: routes observations to their owning workers
    /// and replicas, returning the number durably accepted (see
    /// [`Coordinator::ingest`]).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::ingest`].
    pub fn ingest(&self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        self.coordinator.lock().ingest(batch)
    }

    /// Legacy fire-and-forget ingest: no acknowledgement, returns the
    /// number *routed* (see [`Coordinator::ingest_unacked`]).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::ingest_unacked`].
    pub fn ingest_unacked(&self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        self.coordinator.lock().ingest_unacked(batch)
    }

    /// Barrier: returns once all previously ingested traffic is indexed.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::flush`].
    pub fn flush(&self) -> Result<(), StcamError> {
        self.coordinator.lock().flush()
    }

    /// Creates a direct-ingest handle with its own fabric endpoint (see
    /// [`Ingestor`]); many may ingest concurrently. The handle caches a
    /// routing snapshot and refreshes it by itself on NACKs and
    /// timeouts, so it survives recoveries and rebalances without being
    /// recreated.
    pub fn create_ingestor(&self) -> Ingestor {
        let id = NodeId(
            self.next_ingestor
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        let endpoint = self.fabric.register(id);
        Ingestor::new(
            endpoint,
            self.query_plane(),
            self.config.replication,
            self.config.rpc_timeout,
        )
    }

    /// Spatio-temporal range query (lock-free: runs on the
    /// [`QueryPlane`]).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::range_query`].
    pub fn range_query(
        &self,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Vec<Observation>, StcamError> {
        self.plane
            .range_query_mode(QueryMode::Strict, region, window)
            .map(|d| d.value)
    }

    /// Two-phase pruned k-nearest-neighbour query (lock-free).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::knn_query`].
    pub fn knn_query(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        self.plane
            .knn_query_mode(QueryMode::Strict, at, window, k)
            .map(|d| d.value)
    }

    /// Naive broadcast kNN (evaluation baseline; lock-free).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::knn_broadcast`].
    pub fn knn_broadcast(
        &self,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<Observation>, StcamError> {
        self.plane
            .knn_broadcast_mode(QueryMode::Strict, at, window, k)
            .map(|d| d.value)
    }

    /// Aggregate heat-map with worker-side partial aggregation
    /// (lock-free).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::heatmap`].
    pub fn heatmap(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        self.plane
            .heatmap_mode(QueryMode::Strict, buckets, window)
            .map(|d| d.value)
    }

    /// The `k` densest heat-map buckets, via sparse worker-side partial
    /// aggregation (lock-free).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::top_cells`].
    pub fn top_cells(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
        k: usize,
    ) -> Result<Vec<(stcam_geo::CellId, u64)>, StcamError> {
        self.plane
            .top_cells_mode(QueryMode::Strict, buckets, window, k)
            .map(|d| d.value)
    }

    /// Ship-all aggregate baseline (lock-free).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::heatmap_ship_all`].
    pub fn heatmap_ship_all(
        &self,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Vec<u64>, StcamError> {
        self.plane.heatmap_ship_all(buckets, window)
    }

    /// Registers a standing continuous query.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::register_continuous`].
    pub fn register_continuous(
        &self,
        predicate: Predicate,
    ) -> Result<ContinuousQueryId, StcamError> {
        self.coordinator.lock().register_continuous(predicate)
    }

    /// Unregisters a standing query.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::unregister_continuous`].
    pub fn unregister_continuous(&self, id: ContinuousQueryId) -> Result<(), StcamError> {
        self.coordinator.lock().unregister_continuous(id)
    }

    /// Drains pending continuous-query notifications, waiting up to
    /// `timeout` for the first.
    pub fn poll_notifications(&self, timeout: StdDuration) -> Vec<Notification> {
        self.coordinator.lock().poll_notifications(timeout)
    }

    /// Ages out observations older than `cutoff`.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::evict_before`].
    pub fn evict_before(&self, cutoff: Timestamp) -> Result<(), StcamError> {
        self.coordinator.lock().evict_before(cutoff)
    }

    /// Cluster-wide statistics.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::stats`].
    pub fn stats(&self) -> Result<ClusterStats, StcamError> {
        self.coordinator.lock().stats()
    }

    /// Simulated network traffic counters.
    pub fn fabric_stats(&self) -> FabricStats {
        self.fabric.stats()
    }

    /// Per-operation executor telemetry (sub-queries, retries, wire
    /// bytes, scatter/merge latency), sorted by operation name. One
    /// account across the control plane and every query-plane endpoint;
    /// reading it takes no cluster-wide lock.
    pub fn op_stats(&self) -> Vec<(&'static str, crate::exec::OpStats)> {
        self.plane.op_stats()
    }

    /// Installs a timeout/retry policy override for one operation class
    /// (see [`crate::exec::OpPolicy`]).
    pub fn set_op_policy(&self, op: &'static str, policy: crate::exec::OpPolicy) {
        self.coordinator.lock().set_op_policy(op, policy);
    }

    /// A snapshot of the partition map (from the current published
    /// query plan; lock-free).
    pub fn partition(&self) -> PartitionMap {
        self.plane.plan().partition.clone()
    }

    /// As [`range_query`](Self::range_query) with an entity-class filter
    /// pushed down to the workers.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::range_query_filtered`].
    pub fn range_query_filtered(
        &self,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Vec<Observation>, StcamError> {
        self.plane
            .range_query_filtered_mode(QueryMode::Strict, region, window, class)
            .map(|d| d.value)
    }

    /// As [`range_query`](Self::range_query) with an explicit
    /// [`QueryMode`] and per-shard [completeness](crate::Completeness)
    /// accounting.
    ///
    /// # Errors
    ///
    /// In [`QueryMode::Strict`], fails with
    /// [`StcamError::PartialFailure`] when any shard stays unanswered
    /// after replica failover. In [`QueryMode::BestEffort`] the only
    /// errors are local (e.g. routing with an empty ring).
    pub fn range_query_with(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane.range_query_mode(mode, region, window)
    }

    /// As [`knn_query`](Self::knn_query) with an explicit [`QueryMode`].
    /// A degraded kNN answer is *not* guaranteed to be a subset of the
    /// true answer (a lost shard may promote farther neighbours into the
    /// top `k`), which the returned completeness records as
    /// `subset == false`.
    ///
    /// # Errors
    ///
    /// See [`range_query_with`](Self::range_query_with).
    pub fn knn_query_with(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane.knn_query_mode(mode, at, window, k)
    }

    /// As [`knn_broadcast`](Self::knn_broadcast) with an explicit
    /// [`QueryMode`].
    ///
    /// # Errors
    ///
    /// See [`range_query_with`](Self::range_query_with).
    pub fn knn_broadcast_with(
        &self,
        mode: QueryMode,
        at: Point,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane.knn_broadcast_mode(mode, at, window, k)
    }

    /// As [`heatmap`](Self::heatmap) with an explicit [`QueryMode`]. A
    /// degraded heat-map undercounts only the missing shards' cells (a
    /// strict per-cell subset).
    ///
    /// # Errors
    ///
    /// See [`range_query_with`](Self::range_query_with).
    pub fn heatmap_with(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
    ) -> Result<Degraded<Vec<u64>>, StcamError> {
        self.plane.heatmap_mode(mode, buckets, window)
    }

    /// As [`top_cells`](Self::top_cells) with an explicit [`QueryMode`].
    /// Like kNN, a degraded ranking may include cells that a complete
    /// answer would have displaced (`subset == false`).
    ///
    /// # Errors
    ///
    /// See [`range_query_with`](Self::range_query_with).
    pub fn top_cells_with(
        &self,
        mode: QueryMode,
        buckets: &GridSpec,
        window: TimeInterval,
        k: usize,
    ) -> Result<Degraded<Vec<(stcam_geo::CellId, u64)>>, StcamError> {
        self.plane.top_cells_mode(mode, buckets, window, k)
    }

    /// As [`range_query_filtered`](Self::range_query_filtered) with an
    /// explicit [`QueryMode`].
    ///
    /// # Errors
    ///
    /// See [`range_query_with`](Self::range_query_with).
    pub fn range_query_filtered_with(
        &self,
        mode: QueryMode,
        region: BBox,
        window: TimeInterval,
        class: stcam_world::EntityClass,
    ) -> Result<Degraded<Vec<Observation>>, StcamError> {
        self.plane
            .range_query_filtered_mode(mode, region, window, class)
    }

    /// Re-partitions by measured load and migrates the moved shards (see
    /// [`Coordinator::rebalance`]). Recreate any [`Ingestor`]s afterwards.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::rebalance`].
    pub fn rebalance(&self) -> Result<RebalanceReport, StcamError> {
        self.coordinator.lock().rebalance()
    }

    /// Failure injection: crashes `worker` at the fabric level. Pair with
    /// [`check_and_recover`](Self::check_and_recover).
    pub fn kill_worker(&self, worker: NodeId) {
        self.fabric.crash(worker);
    }

    /// Failure injection: restarts a previously killed worker's
    /// transport. The worker thread never exited — the fabric only
    /// dropped its traffic — so it answers probes again immediately, but
    /// its shard is stale. The next
    /// [`check_and_recover`](Self::check_and_recover) tick detects the
    /// restart and readmits the worker through the rejoin handshake:
    /// state reset, shard bulk-synced from the current owners, routes and
    /// standing queries re-installed, and the ring re-entered under a
    /// fresh plan epoch.
    pub fn restart_worker(&self, worker: NodeId) {
        self.fabric.restart(worker);
    }

    /// Detects failed workers and fails their shards over to replicas;
    /// detects restarted workers and rejoins them (see
    /// [`Coordinator::check_and_recover`]). Returns the newly failed
    /// workers.
    pub fn check_and_recover(&self) -> Vec<NodeId> {
        self.coordinator.lock().check_and_recover()
    }

    /// One anti-entropy repair pass under the default [`RepairBudget`]:
    /// restores every cell's replica copies at its required ring
    /// successors (see [`Coordinator::repair`]). Idempotent; re-invoke
    /// until [`under_replicated_cells`](Self::under_replicated_cells)
    /// reaches zero if a pass exhausts its budget.
    pub fn repair(&self) -> RepairReport {
        self.coordinator.lock().repair()
    }

    /// As [`repair`](Self::repair) under an explicit [`RepairBudget`].
    pub fn repair_with(&self, budget: RepairBudget) -> RepairReport {
        self.coordinator.lock().repair_with(budget)
    }

    /// Distinct owned macro-cells currently missing at least one required
    /// replica copy (0 when replication is disabled or the anti-entropy
    /// invariant holds). Costs one digest sweep.
    pub fn under_replicated_cells(&self) -> usize {
        self.coordinator.lock().under_replicated_cells()
    }

    /// Per-node suspicion counters from the shared
    /// [`HealthView`](crate::HealthView) (consecutive failed RPCs since
    /// the node's last success), sorted by node id. Lock-free.
    pub fn suspicions(&self) -> Vec<(NodeId, u32)> {
        self.plane.health().snapshot()
    }

    /// Replica-log promotions that failed (after retries) during
    /// failover. Non-zero means a dead shard's replica data could not be
    /// absorbed and recovery fell to anti-entropy
    /// [`repair`](Self::repair).
    pub fn promotion_failures(&self) -> u64 {
        self.coordinator.lock().promotion_failures()
    }

    /// Standing-query re-registrations that failed during failover or
    /// rejoin; affected workers miss notifications until the next
    /// recovery tick re-registers them.
    pub fn registration_failures(&self) -> u64 {
        self.coordinator.lock().registration_failures()
    }

    /// Starts a background liveness monitor that runs
    /// [`check_and_recover`](Self::check_and_recover) once immediately and
    /// then every `interval` until shutdown; stopping interrupts the wait,
    /// so a long interval never delays [`shutdown`](Self::shutdown).
    /// Calling it again replaces the previous monitor.
    pub fn enable_auto_recovery(&self, interval: StdDuration) {
        let coordinator = std::sync::Arc::clone(&self.coordinator);
        let handle = MonitorHandle::spawn("stcam-recovery-monitor", interval, move || {
            let _ = coordinator.lock().check_and_recover();
        });
        if let Some(prev) = self.monitor.lock().replace(handle) {
            prev.stop();
        }
    }

    /// Starts a background retention sweeper: once immediately and then
    /// every `interval` it reads the newest stored timestamp across the
    /// cluster and evicts everything older than `horizon` before it; the
    /// wait is interruptible like the recovery monitor's. Calling it
    /// again replaces the previous sweeper.
    pub fn enable_retention(&self, horizon: Duration, interval: StdDuration) {
        let coordinator = std::sync::Arc::clone(&self.coordinator);
        let handle = MonitorHandle::spawn("stcam-retention-sweeper", interval, move || {
            let coordinator = coordinator.lock();
            let Ok(stats) = coordinator.stats() else {
                return;
            };
            let newest = stats.workers.iter().filter_map(|(_, s)| s.newest_ms).max();
            if let Some(newest_ms) = newest {
                let cutoff = Timestamp::from_millis(newest_ms).saturating_sub(horizon);
                let _ = coordinator.evict_before(cutoff);
            }
        });
        if let Some(prev) = self.retention.lock().replace(handle) {
            prev.stop();
        }
    }

    /// Failure injection: splits the fabric into isolated groups (nodes
    /// not listed stay in the default group, including the coordinator
    /// and ingestors). Messages across groups are silently dropped until
    /// [`heal_network`](Self::heal_network).
    pub fn partition_network(&self, groups: &[&[NodeId]]) {
        self.fabric.partition(groups);
    }

    /// Removes all injected network partitions.
    pub fn heal_network(&self) {
        self.fabric.heal_partition();
    }

    /// Failure injection: replaces the fabric-wide message drop
    /// probability at runtime (`0.0` restores a reliable network). The
    /// acked ingest path retransmits through the loss; the legacy
    /// [`ingest_unacked`](Self::ingest_unacked) path loses traffic.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0.0, 1.0]`.
    pub fn set_drop_probability(&self, p: f64) {
        self.fabric.set_drop_probability(p);
    }

    /// Stops all worker threads. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        for slot in [&self.monitor, &self.retention] {
            if let Some(monitor) = slot.lock().take() {
                monitor.stop();
            }
        }
        if let Some(handles) = self.workers.lock().take() {
            for handle in handles {
                handle.shutdown();
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_world::{EntityClass, EntityId};

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1600.0, 1600.0))
    }

    fn test_config(workers: usize) -> ClusterConfig {
        ClusterConfig::new(extent(), workers).with_link(LinkModel::instant())
    }

    fn obs(seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn window_all() -> TimeInterval {
        TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10_000))
    }

    #[test]
    fn ingest_flush_query_round_trip() {
        let cluster = Cluster::launch(test_config(4)).unwrap();
        let batch: Vec<Observation> = (0..200)
            .map(|i| {
                obs(
                    i,
                    i * 100,
                    (i as f64 * 37.0) % 1600.0,
                    (i as f64 * 53.0) % 1600.0,
                )
            })
            .collect();
        cluster.ingest(batch.clone()).unwrap();
        cluster.flush().unwrap();
        let all = cluster.range_query(extent(), window_all()).unwrap();
        assert_eq!(all.len(), 200);
        // Data is actually distributed.
        let stats = cluster.stats().unwrap();
        let populated = stats
            .workers
            .iter()
            .filter(|(_, s)| s.primary_observations > 0)
            .count();
        assert!(populated >= 3, "only {populated} workers hold data");
        cluster.shutdown();
    }

    #[test]
    fn knn_agrees_with_broadcast() {
        let cluster = Cluster::launch(test_config(4)).unwrap();
        let batch: Vec<Observation> = (0..300)
            .map(|i| obs(i, 0, (i as f64 * 41.0) % 1600.0, (i as f64 * 29.0) % 1600.0))
            .collect();
        cluster.ingest(batch).unwrap();
        cluster.flush().unwrap();
        for (x, y, k) in [(800.0, 800.0, 10), (10.0, 10.0, 5), (1590.0, 900.0, 25)] {
            let at = Point::new(x, y);
            let fast = cluster.knn_query(at, window_all(), k).unwrap();
            let slow = cluster.knn_broadcast(at, window_all(), k).unwrap();
            let fast_ids: Vec<_> = fast.iter().map(|o| o.id).collect();
            let slow_ids: Vec<_> = slow.iter().map(|o| o.id).collect();
            assert_eq!(fast_ids, slow_ids, "knn mismatch at {at} k={k}");
        }
        cluster.shutdown();
    }

    #[test]
    fn heatmap_partial_equals_ship_all() {
        let cluster = Cluster::launch(test_config(3)).unwrap();
        let batch: Vec<Observation> = (0..400)
            .map(|i| obs(i, 0, (i as f64 * 13.0) % 1600.0, (i as f64 * 7.0) % 1600.0))
            .collect();
        cluster.ingest(batch).unwrap();
        cluster.flush().unwrap();
        let buckets = GridSpec::covering(extent(), 200.0);
        let fast = cluster.heatmap(&buckets, window_all()).unwrap();
        let slow = cluster.heatmap_ship_all(&buckets, window_all()).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.iter().sum::<u64>(), 400);
        cluster.shutdown();
    }

    #[test]
    fn continuous_query_end_to_end() {
        let cluster = Cluster::launch(test_config(4)).unwrap();
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(400.0, 400.0));
        let id = cluster
            .register_continuous(Predicate {
                region,
                class: None,
            })
            .unwrap();
        cluster
            .ingest(vec![obs(0, 0, 100.0, 100.0), obs(1, 0, 1000.0, 1000.0)])
            .unwrap();
        let notifications = cluster.poll_notifications(StdDuration::from_secs(5));
        let matches: usize = notifications
            .iter()
            .filter(|n| n.query == id)
            .map(|n| n.matches.len())
            .sum();
        assert_eq!(matches, 1);
        cluster.unregister_continuous(id).unwrap();
        cluster.ingest(vec![obs(2, 0, 100.0, 100.0)]).unwrap();
        assert!(cluster
            .poll_notifications(StdDuration::from_millis(100))
            .is_empty());
        cluster.shutdown();
    }

    #[test]
    fn failover_preserves_data_with_replication() {
        let cluster = Cluster::launch(test_config(4).with_replication(1)).unwrap();
        let batch: Vec<Observation> = (0..500)
            .map(|i| obs(i, 0, (i as f64 * 11.0) % 1600.0, (i as f64 * 17.0) % 1600.0))
            .collect();
        cluster.ingest(batch).unwrap();
        cluster.flush().unwrap();
        let before = cluster.range_query(extent(), window_all()).unwrap().len();
        assert_eq!(before, 500);
        // Kill a worker holding data, recover, recount.
        cluster.kill_worker(NodeId(2));
        let failed = cluster.check_and_recover();
        assert_eq!(failed, vec![NodeId(2)]);
        let after = cluster.range_query(extent(), window_all()).unwrap().len();
        assert_eq!(
            after,
            500,
            "lost {} observations despite replication",
            500 - after
        );
        cluster.shutdown();
    }

    #[test]
    fn failover_without_replication_loses_only_dead_shard() {
        let cluster = Cluster::launch(test_config(4).with_replication(0)).unwrap();
        let batch: Vec<Observation> = (0..400)
            .map(|i| obs(i, 0, (i as f64 * 19.0) % 1600.0, (i as f64 * 23.0) % 1600.0))
            .collect();
        cluster.ingest(batch).unwrap();
        cluster.flush().unwrap();
        let stats = cluster.stats().unwrap();
        let dead_share = stats
            .workers
            .iter()
            .find(|(w, _)| *w == NodeId(3))
            .map(|(_, s)| s.primary_observations)
            .unwrap();
        cluster.kill_worker(NodeId(3));
        cluster.check_and_recover();
        let after = cluster.range_query(extent(), window_all()).unwrap().len();
        assert_eq!(after as u64, 400 - dead_share);
        // Ingest keeps working: the dead worker's cells have a new owner.
        cluster.ingest(vec![obs(9_999, 0, 800.0, 800.0)]).unwrap();
        cluster.flush().unwrap();
        cluster.shutdown();
    }

    #[test]
    fn failover_then_repair_restores_replica_coverage() {
        let cluster = Cluster::launch(test_config(4).with_replication(1)).unwrap();
        let batch: Vec<Observation> = (0..300)
            .map(|i| obs(i, 0, (i as f64 * 31.0) % 1600.0, (i as f64 * 43.0) % 1600.0))
            .collect();
        cluster.ingest(batch).unwrap();
        cluster.flush().unwrap();
        cluster.kill_worker(NodeId(1));
        cluster.check_and_recover();
        // The recovery tick already ran a repair pass: every surviving
        // cell must again have its full complement of replica copies.
        assert_eq!(cluster.under_replicated_cells(), 0);
        // And a second pass is a no-op.
        let report = cluster.repair();
        assert_eq!(report.rounds, 0);
        assert_eq!(report.under_replicated_before, 0);
        cluster.shutdown();
    }

    #[test]
    fn restarted_worker_rejoins_and_serves_strict_reads() {
        let cluster = Cluster::launch(test_config(4).with_replication(1)).unwrap();
        let batch: Vec<Observation> = (0..400)
            .map(|i| obs(i, 0, (i as f64 * 11.0) % 1600.0, (i as f64 * 17.0) % 1600.0))
            .collect();
        cluster.ingest(batch).unwrap();
        cluster.flush().unwrap();
        cluster.kill_worker(NodeId(2));
        assert_eq!(cluster.check_and_recover(), vec![NodeId(2)]);
        // More data lands while the worker is out.
        cluster.ingest(vec![obs(9_000, 0, 800.0, 800.0)]).unwrap();
        cluster.flush().unwrap();
        // Restart: the next tick re-detects it, bulk-syncs its shard, and
        // re-enters it into the ring.
        cluster.restart_worker(NodeId(2));
        assert!(cluster.check_and_recover().is_empty());
        let partition = cluster.partition();
        assert!(
            !partition.cells_of(NodeId(2)).is_empty(),
            "rejoined worker owns no cells"
        );
        // The rejoined worker answers stats (it is alive) and holds its
        // shard's data again.
        let stats = cluster.stats().unwrap();
        let rejoined = stats
            .workers
            .iter()
            .find(|(w, _)| *w == NodeId(2))
            .map(|(_, s)| s.primary_observations)
            .expect("rejoined worker missing from stats");
        assert!(rejoined > 0, "rejoined worker holds no data");
        assert_eq!(stats.under_replicated_cells, 0);
        // Strict reads see the complete data set under the new plan.
        let all = cluster.range_query(extent(), window_all()).unwrap();
        assert_eq!(all.len(), 401);
        cluster.shutdown();
    }

    #[test]
    fn rebalance_under_replication_preserves_data_and_coverage() {
        let cluster = Cluster::launch(test_config(4).with_replication(1)).unwrap();
        // Skewed load: everything in one corner, so the uniform map is
        // badly imbalanced and the rebalance has real moves to make.
        let batch: Vec<Observation> = (0..500)
            .map(|i| obs(i, 0, (i as f64 * 3.0) % 400.0, (i as f64 * 5.0) % 400.0))
            .collect();
        cluster.ingest(batch).unwrap();
        cluster.flush().unwrap();
        let report = cluster.rebalance().expect("rebalance with replication");
        assert!(report.cells_moved > 0, "skewed load moved nothing");
        assert!(report.imbalance_after <= report.imbalance_before);
        // No observation was lost by the copy-then-cutover migration, and
        // the moved cells' replica chains are full again.
        let all = cluster.range_query(extent(), window_all()).unwrap();
        assert_eq!(all.len(), 500);
        assert_eq!(cluster.under_replicated_cells(), 0);
        cluster.shutdown();
    }

    #[test]
    fn single_worker_cluster_works() {
        let cluster = Cluster::launch(test_config(1)).unwrap();
        cluster.ingest(vec![obs(0, 0, 800.0, 800.0)]).unwrap();
        cluster.flush().unwrap();
        assert_eq!(
            cluster.range_query(extent(), window_all()).unwrap().len(),
            1
        );
        cluster.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let cluster = Cluster::launch(test_config(2)).unwrap();
        cluster.shutdown();
        cluster.shutdown();
    }
}
