//! The centralized baseline: one node, no network.
//!
//! The evaluation compares the distributed framework against a single
//! server holding all observations. Two backends are provided: the same
//! time-sliced grid index the workers use (the fair "centralized-indexed"
//! baseline) and a flat scan (the naive lower bound).

use stcam_camnet::Observation;
use stcam_geo::{BBox, GridSpec, Point, TimeInterval, Timestamp};
use stcam_index::{FlatIndex, IndexConfig, StIndex};

#[derive(Debug)]
enum Backend {
    Indexed(StIndex),
    Flat(FlatIndex),
}

/// A single-node observation store with the same query surface as
/// [`Cluster`](crate::Cluster).
///
/// # Example
///
/// ```
/// use stcam::CentralizedStore;
/// use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
/// use stcam_index::IndexConfig;
///
/// let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
/// let config = IndexConfig::new(extent, 50.0, Duration::from_secs(10));
/// let store = CentralizedStore::indexed(config);
/// let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
/// assert!(store.range_query(extent, window).is_empty());
/// ```
#[derive(Debug)]
pub struct CentralizedStore {
    backend: Backend,
}

impl CentralizedStore {
    /// A centralized store backed by the time-sliced grid index.
    pub fn indexed(config: IndexConfig) -> Self {
        CentralizedStore {
            backend: Backend::Indexed(StIndex::new(config)),
        }
    }

    /// A centralized store backed by a flat scan (naive baseline).
    pub fn flat() -> Self {
        CentralizedStore {
            backend: Backend::Flat(FlatIndex::new()),
        }
    }

    /// Stores a batch.
    pub fn ingest(&mut self, batch: Vec<Observation>) {
        match &mut self.backend {
            Backend::Indexed(index) => index.insert_batch(batch),
            Backend::Flat(index) => index.extend(batch),
        }
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Indexed(index) => index.len(),
            Backend::Flat(index) => index.len(),
        }
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spatio-temporal range query (sorted by id).
    pub fn range_query(&self, region: BBox, window: TimeInterval) -> Vec<Observation> {
        match &self.backend {
            Backend::Indexed(index) => index.range(region, window),
            Backend::Flat(index) => index.range(region, window).into_iter().cloned().collect(),
        }
    }

    /// k-nearest-neighbour query (distance order).
    pub fn knn_query(&self, at: Point, window: TimeInterval, k: usize) -> Vec<Observation> {
        match &self.backend {
            Backend::Indexed(index) => index.knn(at, window, k),
            Backend::Flat(index) => index.knn(at, window, k).into_iter().cloned().collect(),
        }
    }

    /// Aggregate heat-map query.
    pub fn heatmap(&self, buckets: &GridSpec, window: TimeInterval) -> Vec<u64> {
        match &self.backend {
            Backend::Indexed(index) => index.heatmap(buckets, window),
            Backend::Flat(index) => index.heatmap(buckets, window),
        }
    }

    /// Ages out old observations.
    pub fn evict_before(&mut self, cutoff: Timestamp) {
        match &mut self.backend {
            Backend::Indexed(index) => index.evict_before(cutoff),
            Backend::Flat(index) => index.evict_before(cutoff),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_geo::Duration;
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_secs(1),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0))
    }

    #[test]
    fn both_backends_agree() {
        let config = IndexConfig::new(extent(), 50.0, Duration::from_secs(10));
        let mut indexed = CentralizedStore::indexed(config);
        let mut flat = CentralizedStore::flat();
        let batch: Vec<Observation> = (0..200)
            .map(|i| obs(i, (i as f64 * 37.0) % 1000.0, (i as f64 * 53.0) % 1000.0))
            .collect();
        indexed.ingest(batch.clone());
        flat.ingest(batch);
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
        let region = BBox::new(Point::new(100.0, 100.0), Point::new(700.0, 700.0));
        assert_eq!(
            indexed.range_query(region, window),
            flat.range_query(region, window)
        );
        let at = Point::new(500.0, 500.0);
        let a: Vec<_> = indexed
            .knn_query(at, window, 7)
            .iter()
            .map(|o| o.id)
            .collect();
        let b: Vec<_> = flat.knn_query(at, window, 7).iter().map(|o| o.id).collect();
        assert_eq!(a, b);
        let buckets = GridSpec::covering(extent(), 250.0);
        assert_eq!(
            indexed.heatmap(&buckets, window),
            flat.heatmap(&buckets, window)
        );
        assert_eq!(indexed.len(), 200);
        indexed.evict_before(Timestamp::from_secs(100));
        assert!(indexed.is_empty());
    }
}
