//! Continuous (standing) queries.
//!
//! A continuous query registers a [`Predicate`] with every worker whose
//! shard overlaps the predicate's region. At ingest time each worker
//! matches new observations against its registered predicates and streams
//! [`Notification`]s to the subscribing node — incremental positive
//! updates, never re-evaluation of the whole query.

use bytes::{Buf, BufMut};
use stcam_camnet::Observation;
use stcam_codec::{DecodeError, Wire};
use stcam_geo::BBox;
use stcam_world::EntityClass;

/// Cluster-unique identifier of a standing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContinuousQueryId(pub u64);

impl std::fmt::Display for ContinuousQueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cq{}", self.0)
    }
}

/// The match condition of a continuous query: a spatial region and an
/// optional entity-class filter. (Time is implicit — continuous queries
/// match *new* observations as they arrive.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// Observations must lie inside this region.
    pub region: BBox,
    /// When set, observations must carry this class.
    pub class: Option<EntityClass>,
}

impl Predicate {
    /// `true` when `obs` satisfies this predicate.
    pub fn matches(&self, obs: &Observation) -> bool {
        if !self.region.contains(obs.position) {
            return false;
        }
        match self.class {
            Some(class) => obs.class == class,
            None => true,
        }
    }
}

impl Wire for Predicate {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.region.encode(buf);
        self.class.map(EntityClass::as_u8).encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let region = BBox::decode(buf)?;
        let class = match Option::<u8>::decode(buf)? {
            None => None,
            Some(byte) => Some(EntityClass::from_u8(byte).ok_or(
                DecodeError::InvalidDiscriminant {
                    type_name: "EntityClass",
                    value: byte as u64,
                },
            )?),
        };
        Ok(Predicate { region, class })
    }
}

/// A batch of matches delivered to a subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The standing query that matched.
    pub query: ContinuousQueryId,
    /// The matching observations (from one ingest batch at one worker).
    pub matches: Vec<Observation>,
}

impl Wire for Notification {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.query.0.encode(buf);
        self.matches.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(Notification {
            query: ContinuousQueryId(u64::decode(buf)?),
            matches: Vec::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_codec::{decode_from_slice, encode_to_vec};
    use stcam_geo::{Point, Timestamp};
    use stcam_world::EntityId;

    fn obs(x: f64, y: f64, class: EntityClass) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), 0),
            camera: CameraId(0),
            time: Timestamp::ZERO,
            position: Point::new(x, y),
            class,
            signature: Signature::latent_for_entity(1),
            truth: Some(EntityId(1)),
        }
    }

    #[test]
    fn predicate_matching() {
        let p = Predicate {
            region: BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            class: Some(EntityClass::Truck),
        };
        assert!(p.matches(&obs(5.0, 5.0, EntityClass::Truck)));
        assert!(!p.matches(&obs(5.0, 5.0, EntityClass::Car)));
        assert!(!p.matches(&obs(15.0, 5.0, EntityClass::Truck)));
        let any_class = Predicate { class: None, ..p };
        assert!(any_class.matches(&obs(5.0, 5.0, EntityClass::Car)));
    }

    #[test]
    fn predicate_and_notification_round_trip() {
        let p = Predicate {
            region: BBox::new(Point::new(1.0, 2.0), Point::new(3.0, 4.0)),
            class: Some(EntityClass::Bicycle),
        };
        let bytes = encode_to_vec(&p);
        assert_eq!(decode_from_slice::<Predicate>(&bytes).unwrap(), p);

        let n = Notification {
            query: ContinuousQueryId(42),
            matches: vec![obs(1.5, 2.5, EntityClass::Bicycle)],
        };
        let bytes = encode_to_vec(&n);
        assert_eq!(decode_from_slice::<Notification>(&bytes).unwrap(), n);
    }

    #[test]
    fn bad_class_byte_rejected() {
        let p = Predicate {
            region: BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            class: Some(EntityClass::Car),
        };
        let mut bytes = encode_to_vec(&p);
        let last = bytes.len() - 1;
        bytes[last] = 77;
        assert!(matches!(
            decode_from_slice::<Predicate>(&bytes),
            Err(DecodeError::InvalidDiscriminant { .. })
        ));
    }
}
