//! Framework-level errors.

use std::error::Error;
use std::fmt;

use stcam_codec::DecodeError;
use stcam_net::NetError;

/// An error surfaced by the distributed framework's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StcamError {
    /// The underlying transport failed (timeout, down node, shutdown).
    Net(NetError),
    /// A peer's message could not be decoded (corruption or version skew).
    Codec(DecodeError),
    /// A peer answered with an application-level error.
    Remote(String),
    /// A request addressed data outside the deployment extent.
    OutOfExtent,
    /// The cluster has no alive worker able to serve the request.
    NoQuorum,
    /// The cluster facade has been shut down.
    Shutdown,
    /// The operation is not supported under the current configuration.
    Unsupported(&'static str),
}

impl fmt::Display for StcamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StcamError::Net(e) => write!(f, "transport error: {e}"),
            StcamError::Codec(e) => write!(f, "codec error: {e}"),
            StcamError::Remote(msg) => write!(f, "remote error: {msg}"),
            StcamError::OutOfExtent => write!(f, "request outside the deployment extent"),
            StcamError::NoQuorum => write!(f, "no alive worker can serve the request"),
            StcamError::Shutdown => write!(f, "cluster has been shut down"),
            StcamError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl Error for StcamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StcamError::Net(e) => Some(e),
            StcamError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for StcamError {
    fn from(e: NetError) -> Self {
        StcamError::Net(e)
    }
}

impl From<DecodeError> for StcamError {
    fn from(e: DecodeError) -> Self {
        StcamError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StcamError::from(NetError::Timeout);
        assert!(e.to_string().contains("timed out"));
        assert!(e.source().is_some());
        assert!(StcamError::NoQuorum.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<StcamError>();
    }
}
