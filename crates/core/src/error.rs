//! Framework-level errors.

use std::error::Error;
use std::fmt;

use stcam_codec::DecodeError;
use stcam_net::{NetError, NodeId};

/// An error surfaced by the distributed framework's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StcamError {
    /// The underlying transport failed (timeout, down node, shutdown).
    Net(NetError),
    /// A peer's message could not be decoded (corruption or version skew).
    Codec(DecodeError),
    /// A peer answered with an application-level error.
    Remote(String),
    /// A request addressed data outside the deployment extent.
    OutOfExtent,
    /// The cluster has no alive worker able to serve the request.
    NoQuorum,
    /// A strict-mode query lost one or more shards: neither the listed
    /// primaries nor any of their replicas answered. Best-effort callers
    /// receive the surviving subset instead (see `Degraded`).
    PartialFailure {
        /// The shard primaries whose data is missing from the answer.
        missing: Vec<NodeId>,
    },
    /// The cluster facade has been shut down.
    Shutdown,
    /// The operation is not supported under the current configuration.
    Unsupported(&'static str),
}

impl fmt::Display for StcamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StcamError::Net(e) => write!(f, "transport error: {e}"),
            StcamError::Codec(e) => write!(f, "codec error: {e}"),
            StcamError::Remote(msg) => write!(f, "remote error: {msg}"),
            StcamError::OutOfExtent => write!(f, "request outside the deployment extent"),
            StcamError::NoQuorum => write!(f, "no alive worker can serve the request"),
            StcamError::PartialFailure { missing } => {
                write!(
                    f,
                    "partial failure: {} shard(s) unanswered (",
                    missing.len()
                )?;
                for (i, node) in missing.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{node}")?;
                }
                write!(f, ")")
            }
            StcamError::Shutdown => write!(f, "cluster has been shut down"),
            StcamError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl Error for StcamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StcamError::Net(e) => Some(e),
            StcamError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for StcamError {
    fn from(e: NetError) -> Self {
        StcamError::Net(e)
    }
}

impl From<DecodeError> for StcamError {
    fn from(e: DecodeError) -> Self {
        StcamError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StcamError::from(NetError::Timeout);
        assert!(e.to_string().contains("timed out"));
        assert!(e.source().is_some());
        assert!(StcamError::NoQuorum.source().is_none());
    }

    #[test]
    fn partial_failure_lists_missing_shards() {
        let e = StcamError::PartialFailure {
            missing: vec![NodeId(3), NodeId(4)],
        };
        let text = e.to_string();
        assert!(text.contains("2 shard(s)"), "unexpected display: {text}");
        assert!(text.contains("n3, n4"), "unexpected display: {text}");
        // A leaf error: the missing set is the whole story.
        assert!(e.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<StcamError>();
    }
}
