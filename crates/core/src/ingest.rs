//! Direct edge ingestion and the reliable (acknowledged) write path.
//!
//! Routing every observation through the coordinator would make it the
//! ingest bottleneck. In a deployment, camera aggregation points hold a
//! copy of the partition map and stream straight to the owning workers;
//! the coordinator only manages membership and queries. An [`Ingestor`]
//! is that aggregation-point handle: it has its own fabric endpoint and a
//! cached snapshot of the routing plan, and many of them can ingest in
//! parallel.
//!
//! # Write-path reliability
//!
//! The default [`Ingestor::ingest`] (and `Coordinator::ingest`) is
//! *acknowledged*: batches carry per-sender sequence numbers, workers
//! reply `IngestAck`/`IngestNack`, and the sender retries lost traffic
//! with exponential backoff and deterministic jitter. A batch group is
//! only counted as accepted once its owner **and** a full replica set —
//! the first `replication` ring successors the plan calls alive — have
//! confirmed it. That set is exactly where failover reads look and what
//! a later promotion absorbs, so the returned count certifies both
//! durability *and* strict-read visibility under the configured
//! replication factor; a shortfall parks the group instead of acking.
//! When the owner is unreachable, the sender performs hinted handoff:
//! the batch is written to those same successors as replica-log
//! entries, which replica reads serve while the owner is down and a
//! later failover promotion absorbs into the successor's primary shard. Hints alone never produce an ack, though: the sender
//! cannot tell a dead owner from a partitioned one, and a partitioned
//! owner will return and answer strict reads from a primary that never
//! saw the batch. Hinted batches therefore stay *parked* and re-deliver
//! (idempotently) once recovery fails the owner out or the link heals —
//! acks stall during the grey window instead of lying.
//!
//! Ingestors are self-healing: a stale routing snapshot is refreshed
//! from the coordinator's published [`QueryPlan`] whenever a worker
//! NACKs misrouted observations or stops answering — no recreation
//! required. Parked observations are re-driven by
//! [`flush`](Ingestor::flush), which is a true write barrier: it drains
//! the parked window before running the ping round.
//!
//! The legacy fire-and-forget path survives as
//! [`ingest_unacked`](Ingestor::ingest_unacked) for benchmarks that
//! want minimal write latency and accept silent loss.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use parking_lot::Mutex;
use stcam_camnet::{Observation, ObservationId};
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_net::{Endpoint, NetError, NodeId};

use crate::error::StcamError;
use crate::plane::{QueryPlan, QueryPlane};
use crate::protocol::{Request, Response};

/// Max per-destination batch groups a single `ingest` call keeps in
/// flight concurrently (the backpressure window).
const INFLIGHT_WINDOW: usize = 8;
/// RPC attempts per destination before the sender gives up on it and
/// re-routes under a refreshed plan.
const MAX_ATTEMPTS: u32 = 5;
/// Routing rounds (deliver, refresh plan, re-route leftovers) per call.
const MAX_ROUNDS: usize = 4;
/// Backoff base: attempt `k` waits `BACKOFF_BASE_MS << k` milliseconds
/// plus jitter of up to the same amount.
const BACKOFF_BASE_MS: u64 = 3;

/// SplitMix64 finaliser, used for deterministic retry jitter so
/// concurrent senders desynchronise without any global randomness.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Exponential backoff with deterministic jitter derived from
/// `(sender, seq, attempt)`.
fn backoff(sender: NodeId, seq: u64, attempt: u32) -> StdDuration {
    let base = (BACKOFF_BASE_MS << attempt.min(5)).max(1);
    let jitter = mix(u64::from(sender.0) ^ seq.rotate_left(17) ^ u64::from(attempt)) % base;
    StdDuration::from_millis(base + jitter)
}

/// Result of trying to deliver one per-owner batch group.
struct GroupOutcome {
    /// Observations durably acknowledged (owner + alive replicas).
    accepted: usize,
    /// Observations to re-route under a refreshed plan this call.
    redo: Vec<Observation>,
    /// Observations that cannot be acknowledged under the current plan
    /// (owner unreachable or confirmed dead); hinted for durability and
    /// waiting in the pending window for `flush` to re-drive them.
    parked: Vec<Observation>,
}

/// The acked-write engine shared by [`Ingestor`] and the coordinator:
/// per-sender sequence numbers, bounded-window delivery, retry with
/// backoff, NACK-driven plan refresh, hinted handoff, and the parked
/// window that [`drain`](Self::drain) empties for `flush`.
///
/// The engine does not own an endpoint — callers pass theirs in — so the
/// coordinator can drive it over its existing control-plane endpoint.
#[derive(Debug)]
pub(crate) struct ReliableSender {
    plane: Arc<QueryPlane>,
    /// Cached routing snapshot; refreshed from `plane` on NACK/timeout,
    /// so a stale sender heals itself instead of needing recreation.
    plan: Mutex<Arc<QueryPlan>>,
    replication: usize,
    rpc_timeout: StdDuration,
    next_ingest_seq: AtomicU64,
    next_replicate_seq: AtomicU64,
    pending: Mutex<Vec<Observation>>,
}

impl ReliableSender {
    pub(crate) fn new(
        plane: Arc<QueryPlane>,
        replication: usize,
        rpc_timeout: StdDuration,
    ) -> Self {
        let plan = Mutex::new(plane.plan());
        ReliableSender {
            plane,
            plan,
            replication,
            rpc_timeout,
            next_ingest_seq: AtomicU64::new(0),
            next_replicate_seq: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// The cached routing snapshot (possibly stale).
    pub(crate) fn snapshot(&self) -> Arc<QueryPlan> {
        Arc::clone(&self.plan.lock())
    }

    /// Re-reads the published plan into the cache and returns it.
    pub(crate) fn refresh_plan(&self) -> Arc<QueryPlan> {
        let fresh = self.plane.plan();
        *self.plan.lock() = Arc::clone(&fresh);
        fresh
    }

    /// Observations accepted by no one yet (awaiting `drain`).
    pub(crate) fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Delivers `batch` with acknowledgement: groups by owner, sends at
    /// most [`INFLIGHT_WINDOW`] groups concurrently, retries with
    /// backoff, refreshes the plan and re-routes on NACK or exhaustion.
    /// Returns the number of observations durably accepted; the rest are
    /// parked for [`drain`](Self::drain).
    ///
    /// # Errors
    ///
    /// [`StcamError::NoQuorum`] when no worker is alive at all (ring
    /// membership is monotonic, so parking could never drain); otherwise
    /// fails only on local/protocol problems (codec errors, fabric
    /// shutdown) — unreachable workers park observations instead.
    pub(crate) fn ingest(
        &self,
        endpoint: &Endpoint,
        batch: Vec<Observation>,
    ) -> Result<usize, StcamError> {
        if self.snapshot().alive.is_empty() && self.refresh_plan().alive.is_empty() {
            return Err(StcamError::NoQuorum);
        }
        let mut accepted = 0usize;
        let mut work = batch;
        for round in 0..MAX_ROUNDS {
            if work.is_empty() {
                break;
            }
            // Round 0 trusts the cached snapshot; every re-route round
            // works against a freshly published plan.
            let plan = if round == 0 {
                self.snapshot()
            } else {
                self.refresh_plan()
            };
            let mut groups: HashMap<NodeId, Vec<Observation>> = HashMap::new();
            for obs in work.drain(..) {
                groups
                    .entry(plan.partition.owner_of(obs.position))
                    .or_default()
                    .push(obs);
            }
            let mut queue = groups.into_iter();
            loop {
                let wave: Vec<(NodeId, Vec<Observation>)> =
                    queue.by_ref().take(INFLIGHT_WINDOW).collect();
                if wave.is_empty() {
                    break;
                }
                let outcomes: Vec<GroupOutcome> = if wave.len() == 1 {
                    let (owner, obs) = wave.into_iter().next().expect("wave of one");
                    vec![self.deliver_group(endpoint, &plan, owner, obs)]
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = wave
                            .into_iter()
                            .map(|(owner, obs)| {
                                let plan = &plan;
                                scope.spawn(move || self.deliver_group(endpoint, plan, owner, obs))
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("ingest wave thread panicked"))
                            .collect()
                    })
                };
                for outcome in outcomes {
                    accepted += outcome.accepted;
                    work.extend(outcome.redo);
                    if !outcome.parked.is_empty() {
                        self.pending.lock().extend(outcome.parked);
                    }
                }
            }
        }
        if !work.is_empty() {
            // Re-routing did not converge within the round budget; park
            // the rest for the flush barrier to re-drive.
            self.pending.lock().extend(work);
        }
        Ok(accepted)
    }

    /// Routes one per-owner group. Suspicion alone never diverts a
    /// write (a falsely suspected owner would strand the hint copy in a
    /// replica log that is never promoted); only the plan's own alive
    /// set, or direct retry exhaustion inside
    /// [`deliver_primary`](Self::deliver_primary), triggers hinting.
    fn deliver_group(
        &self,
        endpoint: &Endpoint,
        plan: &QueryPlan,
        owner: NodeId,
        obs: Vec<Observation>,
    ) -> GroupOutcome {
        if plan.alive.contains(&owner) {
            self.deliver_primary(endpoint, plan, owner, obs)
        } else {
            // The plan itself calls the owner dead yet still routes its
            // cells there (no alive successor was available to reassign
            // to at recovery time): hint for durability and park.
            self.hint_and_park(endpoint, plan, owner, obs)
        }
    }

    /// Normal path: `IngestSeq` to the owner, then `ReplicateSeq` of the
    /// accepted subset to the first `replication` plan-alive ring
    /// successors. The group counts as acknowledged only once every one
    /// of those successors confirmed.
    fn deliver_primary(
        &self,
        endpoint: &Endpoint,
        plan: &QueryPlan,
        owner: NodeId,
        obs: Vec<Observation>,
    ) -> GroupOutcome {
        let seq = self.next_ingest_seq.fetch_add(1, Ordering::Relaxed);
        let request = Request::IngestSeq {
            sender: endpoint.id(),
            seq,
            epoch: plan.epoch,
            batch: obs.clone(),
        };
        let (kept, redo) = match self.call_with_retry(endpoint, owner, seq, &request) {
            Ok(Response::IngestAck { .. }) => (obs, Vec::new()),
            Ok(Response::IngestNack { misrouted, .. }) => {
                // The owner applied what it owns; the rest re-routes
                // under a refreshed plan (its NACK epoch tells us ours
                // is stale).
                let misrouted: HashSet<ObservationId> = misrouted.into_iter().collect();
                let (redo, kept): (Vec<Observation>, Vec<Observation>) =
                    obs.into_iter().partition(|o| misrouted.contains(&o.id));
                (kept, redo)
            }
            // The owner would not answer despite full retransmission.
            _ => {
                return if self.plane.epoch() > plan.epoch {
                    // A newer plan has been published since we routed:
                    // recovery probably reassigned these cells, so let
                    // the next round re-route under the fresh plan
                    // (retransmission is idempotent at the workers).
                    GroupOutcome {
                        accepted: 0,
                        redo: obs,
                        parked: Vec::new(),
                    }
                } else {
                    // Our plan is current: the owner is unreachable and
                    // recovery has not noticed yet. We cannot tell a
                    // dead owner from a partitioned one, and a
                    // partitioned owner will come back and serve strict
                    // reads from a primary that never saw this batch —
                    // so acking on replica-log copies alone would break
                    // read-your-acked-writes. Hint and park instead.
                    self.hint_and_park(endpoint, plan, owner, obs)
                };
            }
        };
        if !kept.is_empty() {
            let (targets, acks) =
                self.replicate_to_successors(endpoint, plan, owner, &kept, self.replication);
            if acks < targets {
                // A replica the plan calls alive would not confirm, so
                // durability is short of the contract. The owner holds
                // the batch and the copies that did land stand as hints;
                // park and re-deliver once the plan reflects whatever
                // failed (worker id dedup absorbs the duplicates).
                return GroupOutcome {
                    accepted: 0,
                    redo,
                    parked: kept,
                };
            }
        }
        GroupOutcome {
            accepted: kept.len(),
            redo,
            parked: Vec::new(),
        }
    }

    /// Sends `batch` as replica-log entries for `primary` to its first
    /// `want` *alive* ring successors — walking the ring past dead
    /// members ([`PartitionMap::alive_successors`]), so a shard keeps
    /// `want` certified copies as long as that many other nodes are
    /// alive. This is exactly the set a failover read consults and the
    /// repair planner maintains, which is what lets an ack certify
    /// visibility: writes cover, reads consult, and anti-entropy restores
    /// one and the same walked set. Unresponsive members of the set are
    /// still attempted so partial copies land as hints. Returns
    /// `(targets, acks)`.
    ///
    /// [`PartitionMap::alive_successors`]: crate::PartitionMap::alive_successors
    fn replicate_to_successors(
        &self,
        endpoint: &Endpoint,
        plan: &QueryPlan,
        primary: NodeId,
        batch: &[Observation],
        want: usize,
    ) -> (usize, usize) {
        let targets: Vec<NodeId> = plan.partition.alive_successors(primary, want, &plan.alive);
        let total = targets.len();
        let mut acks = 0usize;
        for target in targets {
            let rseq = self.next_replicate_seq.fetch_add(1, Ordering::Relaxed);
            let request = Request::ReplicateSeq {
                sender: endpoint.id(),
                seq: rseq,
                primary,
                batch: batch.to_vec(),
            };
            if matches!(
                self.call_with_retry(endpoint, target, rseq, &request),
                Ok(Response::IngestAck { .. })
            ) {
                acks += 1;
            }
        }
        (total, acks)
    }

    /// Hinted handoff: best-effort `ReplicateSeq` copies of the batch to
    /// the owner's first plan-alive ring successors, then park. The
    /// hints make the batch crash-durable — replica reads serve them
    /// while the owner is down, and a failover promotion absorbs them
    /// into the successor's primary — but they cannot certify an ack: a
    /// merely-partitioned owner will return and answer strict reads from
    /// a primary that never saw the batch. Only re-delivery (driven by
    /// `flush` or a later `ingest` round under a refreshed plan) can
    /// complete the acked contract; worker-side id dedup absorbs the
    /// duplicate copies this leaves behind.
    fn hint_and_park(
        &self,
        endpoint: &Endpoint,
        plan: &QueryPlan,
        owner: NodeId,
        obs: Vec<Observation>,
    ) -> GroupOutcome {
        let _ = self.replicate_to_successors(endpoint, plan, owner, &obs, self.replication.max(1));
        GroupOutcome {
            accepted: 0,
            redo: Vec::new(),
            parked: obs,
        }
    }

    /// One sequenced call with bounded retransmission: up to
    /// [`MAX_ATTEMPTS`] attempts, exponential backoff with deterministic
    /// jitter between them. Feeds the shared health view so routing
    /// diverts around nodes that stop answering.
    fn call_with_retry(
        &self,
        endpoint: &Endpoint,
        dest: NodeId,
        seq: u64,
        request: &Request,
    ) -> Result<Response, StcamError> {
        let payload = encode_to_vec(request);
        let health = self.plane.health();
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(backoff(endpoint.id(), seq, attempt));
            }
            match endpoint.call(dest, payload.clone(), self.rpc_timeout) {
                Ok(bytes) => {
                    let response = decode_from_slice::<Response>(&bytes)?;
                    health.record_success(dest);
                    if let Response::Error(message) = response {
                        return Err(StcamError::Remote(message));
                    }
                    return Ok(response);
                }
                Err(NetError::Timeout) => continue,
                Err(err) => {
                    health.record_failure(dest);
                    return Err(err.into());
                }
            }
        }
        health.record_failure(dest);
        Err(StcamError::Net(NetError::Timeout))
    }

    /// Re-drives the parked window under fresh routing until it is
    /// empty — the write-barrier half of `flush`. Returns how many
    /// parked observations were accepted.
    ///
    /// # Errors
    ///
    /// [`StcamError::PartialFailure`] naming the owners of observations
    /// that still cannot be acknowledged after the round budget.
    pub(crate) fn drain(&self, endpoint: &Endpoint) -> Result<usize, StcamError> {
        let mut drained = 0usize;
        for _ in 0..MAX_ROUNDS {
            let parked = std::mem::take(&mut *self.pending.lock());
            if parked.is_empty() {
                return Ok(drained);
            }
            self.refresh_plan();
            drained += self.ingest(endpoint, parked)?;
        }
        let leftover = self.pending.lock();
        if leftover.is_empty() {
            return Ok(drained);
        }
        let plan = self.snapshot();
        let mut missing: Vec<NodeId> = leftover
            .iter()
            .map(|o| plan.partition.owner_of(o.position))
            .collect();
        missing.sort();
        missing.dedup();
        Err(StcamError::PartialFailure { missing })
    }
}

/// A parallel ingest handle with its own network endpoint; see the
/// module documentation above for the routing model and the
/// acknowledged-write contract.
#[derive(Debug)]
pub struct Ingestor {
    endpoint: Endpoint,
    sender: ReliableSender,
}

impl Ingestor {
    pub(crate) fn new(
        endpoint: Endpoint,
        plane: Arc<QueryPlane>,
        replication: usize,
        rpc_timeout: StdDuration,
    ) -> Self {
        Ingestor {
            endpoint,
            sender: ReliableSender::new(plane, replication, rpc_timeout),
        }
    }

    /// This ingestor's node id on the fabric.
    pub fn id(&self) -> NodeId {
        self.endpoint.id()
    }

    /// Observations this handle could not get acknowledged yet; they are
    /// parked and re-driven by [`flush`](Self::flush).
    pub fn pending(&self) -> usize {
        self.sender.pending_count()
    }

    /// Acknowledged ingest: routes the batch to the owning workers and
    /// their replicas, retries lost traffic, and re-routes around stale
    /// or dead destinations (refreshing this handle's plan snapshot in
    /// place — no recreation needed after recovery or rebalance).
    /// Returns the number of observations durably **accepted**, not
    /// merely routed; anything unaccepted is parked and re-driven by
    /// [`flush`](Self::flush).
    ///
    /// # Errors
    ///
    /// Fails on local problems (codec errors, fabric shutdown);
    /// unreachable workers park observations instead of erroring.
    pub fn ingest(&self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        self.sender.ingest(&self.endpoint, batch)
    }

    /// Legacy fire-and-forget ingest: routes the batch under the cached
    /// plan snapshot with no acknowledgement and returns the number of
    /// observations *routed*. Lossy links, dead destinations, or a stale
    /// snapshot silently drop traffic — use [`ingest`](Self::ingest)
    /// unless you are benchmarking the unreliable baseline.
    ///
    /// # Errors
    ///
    /// Fails on transport-level problems (e.g. fabric shutdown).
    pub fn ingest_unacked(&self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        let n = batch.len();
        let plan = self.sender.snapshot();
        let mut groups: HashMap<NodeId, Vec<Observation>> = HashMap::new();
        for obs in batch {
            groups
                .entry(plan.partition.owner_of(obs.position))
                .or_default()
                .push(obs);
        }
        for (owner, group) in groups {
            self.endpoint
                .send(owner, encode_to_vec(&Request::Ingest(group)))?;
        }
        Ok(n)
    }

    /// Write barrier: first drains this handle's parked window (re-
    /// delivering under fresh routing), then confirms every alive worker
    /// has processed previously sent traffic (per-link FIFO + a ping
    /// round trip).
    ///
    /// # Errors
    ///
    /// [`StcamError::PartialFailure`] when parked observations still
    /// cannot be acknowledged; transport errors when an alive worker
    /// does not answer the ping in time.
    pub fn flush(&self) -> Result<(), StcamError> {
        self.sender.drain(&self.endpoint)?;
        let plan = self.sender.refresh_plan();
        for &worker in plan.partition.workers() {
            if !plan.alive.contains(&worker) {
                continue;
            }
            let bytes = self.endpoint.call(
                worker,
                encode_to_vec(&Request::Ping),
                self.sender.rpc_timeout,
            )?;
            let _ = decode_from_slice::<Response>(&bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_geo::{BBox, Point, TimeInterval, Timestamp};
    use stcam_net::LinkModel;
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_secs(1),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    #[test]
    fn parallel_ingestors_deliver_everything() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let cluster = Cluster::launch(
            ClusterConfig::new(extent, 4)
                .with_replication(0)
                .with_link(LinkModel::instant()),
        )
        .unwrap();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let ingestor = cluster.create_ingestor();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let seq = t * 250 + i;
                        let accepted = ingestor
                            .ingest(vec![obs(
                                seq,
                                (seq as f64 * 7.0) % 1000.0,
                                (seq as f64 * 13.0) % 1000.0,
                            )])
                            .unwrap();
                        assert_eq!(accepted, 1);
                    }
                    ingestor.flush().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
        assert_eq!(cluster.range_query(extent, window).unwrap().len(), 1000);
        cluster.shutdown();
    }

    #[test]
    fn ingestor_ids_are_distinct() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let cluster =
            Cluster::launch(ClusterConfig::new(extent, 2).with_link(LinkModel::instant())).unwrap();
        let a = cluster.create_ingestor();
        let b = cluster.create_ingestor();
        assert_ne!(a.id(), b.id());
        cluster.shutdown();
    }

    #[test]
    fn acked_ingest_survives_a_lossy_link() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let cluster = Cluster::launch(
            ClusterConfig::new(extent, 4)
                .with_replication(1)
                .with_link(LinkModel::instant())
                .with_rpc_timeout(StdDuration::from_millis(200)),
        )
        .unwrap();
        cluster.set_drop_probability(0.05);
        let ingestor = cluster.create_ingestor();
        let mut accepted = 0usize;
        for i in 0..200u64 {
            accepted += ingestor
                .ingest(vec![obs(
                    i,
                    (i as f64 * 7.0) % 1000.0,
                    (i as f64 * 13.0) % 1000.0,
                )])
                .unwrap();
        }
        cluster.set_drop_probability(0.0);
        ingestor.flush().unwrap();
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
        let stored = cluster.range_query(extent, window).unwrap().len();
        assert!(
            stored >= accepted,
            "acked {accepted} observations but only {stored} are queryable"
        );
        assert_eq!(stored, 200, "flush barrier must deliver the parked tail");
        cluster.shutdown();
    }

    #[test]
    fn unacked_ingest_still_routes_by_count() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let cluster = Cluster::launch(
            ClusterConfig::new(extent, 2)
                .with_replication(0)
                .with_link(LinkModel::instant()),
        )
        .unwrap();
        let ingestor = cluster.create_ingestor();
        let routed = ingestor
            .ingest_unacked(vec![obs(0, 100.0, 100.0), obs(1, 900.0, 900.0)])
            .unwrap();
        assert_eq!(routed, 2);
        ingestor.flush().unwrap();
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
        assert_eq!(cluster.range_query(extent, window).unwrap().len(), 2);
        cluster.shutdown();
    }

    #[test]
    fn stale_ingestor_recovers_routing_without_recreation() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let cluster = Cluster::launch(
            ClusterConfig::new(extent, 4)
                .with_replication(1)
                .with_link(LinkModel::instant())
                .with_rpc_timeout(StdDuration::from_millis(150)),
        )
        .unwrap();
        // The ingestor snapshots the pre-failure plan.
        let ingestor = cluster.create_ingestor();
        let target = Point::new(500.0, 500.0);
        let old_owner = cluster.partition().owner_of(target);
        cluster.kill_worker(old_owner);
        let failed = cluster.check_and_recover();
        assert_eq!(failed, vec![old_owner]);
        // Same handle, dead owner's cell: the acked path must time out,
        // refresh its snapshot, and deliver to the new owner.
        let accepted = ingestor.ingest(vec![obs(7, target.x, target.y)]).unwrap();
        assert_eq!(accepted, 1, "stale ingestor failed to self-heal");
        ingestor.flush().unwrap();
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
        let hits = cluster.range_query(extent, window).unwrap();
        assert!(hits
            .iter()
            .any(|o| o.id == ObservationId::compose(CameraId(0), 7)));
        cluster.shutdown();
    }
}
