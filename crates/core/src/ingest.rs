//! Direct edge ingestion.
//!
//! Routing every observation through the coordinator would make it the
//! ingest bottleneck. In a deployment, camera aggregation points hold a
//! copy of the partition map and stream straight to the owning workers;
//! the coordinator only manages membership and queries. An [`Ingestor`]
//! is that aggregation-point handle: it has its own fabric endpoint and a
//! snapshot of the partition map, and many of them can ingest in
//! parallel.
//!
//! An ingestor's map snapshot goes stale when the cluster recovers from a
//! failure; recreate ingestors (via
//! [`Cluster::create_ingestor`](crate::Cluster::create_ingestor)) after
//! [`check_and_recover`](crate::Cluster::check_and_recover) reports
//! failures.

use std::collections::HashMap;
use std::time::Duration as StdDuration;

use stcam_camnet::Observation;
use stcam_codec::encode_to_vec;
use stcam_net::{Endpoint, NodeId};

use crate::error::StcamError;
use crate::partition::PartitionMap;
use crate::protocol::Request;

/// A parallel ingest handle with its own network endpoint; see the
/// module documentation above for the routing model and staleness
/// caveat.
#[derive(Debug)]
pub struct Ingestor {
    endpoint: Endpoint,
    partition: PartitionMap,
    rpc_timeout: StdDuration,
}

impl Ingestor {
    pub(crate) fn new(
        endpoint: Endpoint,
        partition: PartitionMap,
        rpc_timeout: StdDuration,
    ) -> Self {
        Ingestor {
            endpoint,
            partition,
            rpc_timeout,
        }
    }

    /// This ingestor's node id on the fabric.
    pub fn id(&self) -> NodeId {
        self.endpoint.id()
    }

    /// Routes a batch directly to the owning workers (fire-and-forget).
    /// Returns the number of observations routed.
    ///
    /// # Errors
    ///
    /// Fails on transport problems (e.g. fabric shutdown). Messages to
    /// workers that crashed after this ingestor's partition snapshot was
    /// taken are silently dropped by the fabric — recreate the ingestor
    /// after recovery.
    pub fn ingest(&self, batch: Vec<Observation>) -> Result<usize, StcamError> {
        let n = batch.len();
        let mut groups: HashMap<NodeId, Vec<Observation>> = HashMap::new();
        for obs in batch {
            groups
                .entry(self.partition.owner_of(obs.position))
                .or_default()
                .push(obs);
        }
        for (owner, group) in groups {
            self.endpoint
                .send(owner, encode_to_vec(&Request::Ingest(group)))?;
        }
        Ok(n)
    }

    /// Barrier: confirms every worker has drained this ingestor's
    /// previously sent traffic (per-link FIFO + a ping round trip).
    ///
    /// # Errors
    ///
    /// Fails when a worker does not answer within the RPC timeout.
    pub fn flush(&self) -> Result<(), StcamError> {
        for &worker in self.partition.workers() {
            let bytes =
                self.endpoint
                    .call(worker, encode_to_vec(&Request::Ping), self.rpc_timeout)?;
            let _ = stcam_codec::decode_from_slice::<crate::protocol::Response>(&bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_geo::{BBox, Point, TimeInterval, Timestamp};
    use stcam_net::LinkModel;
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::from_secs(1),
            position: Point::new(x, y),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    #[test]
    fn parallel_ingestors_deliver_everything() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let cluster = Cluster::launch(
            ClusterConfig::new(extent, 4)
                .with_replication(0)
                .with_link(LinkModel::instant()),
        )
        .unwrap();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let ingestor = cluster.create_ingestor();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let seq = t * 250 + i;
                        ingestor
                            .ingest(vec![obs(
                                seq,
                                (seq as f64 * 7.0) % 1000.0,
                                (seq as f64 * 13.0) % 1000.0,
                            )])
                            .unwrap();
                    }
                    ingestor.flush().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100));
        assert_eq!(cluster.range_query(extent, window).unwrap().len(), 1000);
        cluster.shutdown();
    }

    #[test]
    fn ingestor_ids_are_distinct() {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let cluster =
            Cluster::launch(ClusterConfig::new(extent, 2).with_link(LinkModel::instant())).unwrap();
        let a = cluster.create_ingestor();
        let b = cluster.create_ingestor();
        assert_ne!(a.id(), b.id());
        cluster.shutdown();
    }
}
