//! Deterministic fault-schedule generation for chaos testing.
//!
//! A [`ChaosPlan`] is a seeded, reproducible sequence of fault events —
//! crashes, restarts, partitions, heals, recovery ticks — interleaved
//! with query batteries. The generator keeps every schedule *survivable*:
//! at most `max_dead` shards are unavailable at any instant, so a cluster
//! with replication factor ≥ `max_dead` never loses data and the
//! harness's truthfulness and final-equality invariants stay sound.
//!
//! The integration harness (`tests/chaos.rs`) executes plans against a
//! live cluster and checks every query against a centralized oracle;
//! printing the seed makes any failing schedule replayable.

use stcam_net::NodeId;

/// A small deterministic RNG (SplitMix64) for schedule generation.
///
/// Self-contained so chaos schedules depend on nothing but the seed —
/// not on a global RNG's call history or a platform's entropy source.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator from `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `0..n` (`n` must be nonzero).
    pub fn gen_range(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform draw in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One step of a chaos schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Crash a worker (fabric drops its traffic and pending RPCs).
    Kill(NodeId),
    /// Restart a previously crashed worker's transport. A node restarted
    /// before any recovery tick noticed its crash simply stops timing out
    /// (exercising suspicion decay); a node restarted after being failed
    /// out of the ring is readmitted — state reset, shard re-synced — by
    /// the next [`Recover`](ChaosEvent::Recover) tick's rejoin handshake.
    Restart(NodeId),
    /// Isolate this group from the rest of the cluster.
    Partition(Vec<NodeId>),
    /// Heal the active partition.
    Heal,
    /// Run a recovery tick (`check_and_recover`): failed shards are
    /// reassigned and promoted on their successors, restarted failed-out
    /// workers rejoin the ring, and replica coverage is repaired.
    Recover,
    /// Issue a battery of strict and best-effort queries and check them
    /// against the oracle.
    Queries,
    /// Set the uniform message-drop probability on **every** fabric link
    /// to `permille / 1000` (`0` restores a reliable network). Expressed
    /// in permille so the event stays `Eq`-comparable for plan replay.
    Loss {
        /// Drop probability in permille, `0..=1000`.
        permille: u16,
    },
    /// Ingest `count` fresh observations (deterministically derived from
    /// ids `base .. base + count`) through the **acked** write path while
    /// whatever fault the schedule last injected is still active. The
    /// harness records which observations were acknowledged; the
    /// write-durability oracle then asserts every acked observation
    /// appears in all subsequent strict query answers.
    Ingest {
        /// First observation id of the batch.
        base: u64,
        /// Number of observations in the batch.
        count: u32,
    },
}

/// A seeded, survivable fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The seed that generated this plan (printed on harness failure).
    pub seed: u64,
    /// The schedule, executed in order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Generates a deterministic plan for a cluster of `workers` nodes
    /// (ids `1..=workers`), about `steps` fault events long, never
    /// leaving more than `max_dead` in-ring shards unavailable at once.
    ///
    /// Set `max_dead` to the replication factor: then every unavailable
    /// shard still has a live replica, so queries can stay complete and
    /// recovery can always restore the data.
    ///
    /// The plan always starts with a kill (the interesting case), runs a
    /// `Queries` battery after every event, and ends healed + recovered
    /// with a final battery, so eventual-recovery invariants can assert
    /// completeness returns to full.
    pub fn generate(seed: u64, workers: u32, steps: usize, max_dead: usize) -> ChaosPlan {
        let (mut events, tail) = Self::schedule(seed, workers, steps, max_dead);
        events.extend(tail);
        ChaosPlan { seed, events }
    }

    /// Generates a *lossy-link* plan: the same survivable fault schedule
    /// as [`ChaosPlan::generate`] (same seed ⇒ same kills, partitions,
    /// and recovery ticks), wrapped in a link-loss phase of
    /// `loss_permille / 1000` drop probability and interleaved with
    /// [`ChaosEvent::Ingest`] batches after every mid-plan query battery,
    /// so writes land while faults and message loss are both active.
    ///
    /// Links are healed (`Loss { permille: 0 }`) right before the
    /// convergence tail: the closing battery asserts *durability* — every
    /// acknowledged observation is present — which must not depend on
    /// link luck during the final flush.
    ///
    /// # Panics
    ///
    /// Panics if `loss_permille > 1000` (more than certain loss).
    pub fn generate_lossy(
        seed: u64,
        workers: u32,
        steps: usize,
        max_dead: usize,
        loss_permille: u16,
    ) -> ChaosPlan {
        assert!(
            loss_permille <= 1000,
            "loss_permille must be ≤ 1000, got {loss_permille}"
        );
        let (body, tail) = Self::schedule(seed, workers, steps, max_dead);
        // A distinct RNG stream for batch sizing, so the fault schedule
        // itself stays byte-identical to the non-lossy plan.
        let mut rng = ChaosRng::new(seed ^ 0x1057_1057_1057_1057);
        // Synthetic ids far above any preloaded data set.
        let mut next_base: u64 = 1 << 32;
        let mut events = vec![ChaosEvent::Loss {
            permille: loss_permille,
        }];
        for event in body {
            let inject = matches!(event, ChaosEvent::Queries);
            events.push(event);
            if inject {
                let count = 8 + rng.gen_range(9) as u32; // 8..=16
                events.push(ChaosEvent::Ingest {
                    base: next_base,
                    count,
                });
                next_base += u64::from(count);
            }
        }
        events.push(ChaosEvent::Loss { permille: 0 });
        events.extend(tail);
        ChaosPlan { seed, events }
    }

    /// The shared schedule builder: returns the fault body (each event
    /// followed by a `Queries` battery) and the deterministic convergence
    /// tail (heal, recover, final battery) separately, so lossy plans can
    /// splice loss/ingest events around them.
    fn schedule(
        seed: u64,
        workers: u32,
        steps: usize,
        max_dead: usize,
    ) -> (Vec<ChaosEvent>, Vec<ChaosEvent>) {
        let mut rng = ChaosRng::new(seed);
        let mut events = Vec::new();
        // Membership bookkeeping mirroring the cluster's state machine:
        // failed-out shards leave `in_ring` at Recover (into `down_out`),
        // a Restart of a failed-out shard parks it in `up_out` until the
        // next Recover rejoins it, and crashed/isolated in-ring shards
        // are "unavailable" and must stay ≤ max_dead.
        let mut in_ring: Vec<NodeId> = (1..=workers).map(NodeId).collect();
        let mut crashed: Vec<NodeId> = Vec::new();
        let mut down_out: Vec<NodeId> = Vec::new();
        let mut up_out: Vec<NodeId> = Vec::new();
        let mut isolated: Option<Vec<NodeId>> = None;
        let unavailable = |in_ring: &[NodeId],
                           crashed: &[NodeId],
                           isolated: &Option<Vec<NodeId>>| {
            in_ring
                .iter()
                .filter(|n| crashed.contains(n) || isolated.as_ref().is_some_and(|g| g.contains(n)))
                .count()
        };
        for step in 0..steps {
            let down = unavailable(&in_ring, &crashed, &isolated);
            let budget = max_dead.saturating_sub(down);
            // Candidate victims: in-ring, currently fully available.
            let healthy: Vec<NodeId> = in_ring
                .iter()
                .copied()
                .filter(|n| {
                    !crashed.contains(n) && !isolated.as_ref().is_some_and(|g| g.contains(n))
                })
                .collect();
            let choice = if step == 0 { 0 } else { rng.gen_range(6) };
            match choice {
                // Kill — forced first so every plan exercises failover.
                0 | 1 if budget > 0 && healthy.len() > 2 => {
                    let victim = healthy[rng.gen_range(healthy.len())];
                    crashed.push(victim);
                    events.push(ChaosEvent::Kill(victim));
                }
                2 if !crashed.is_empty() || !down_out.is_empty() => {
                    // Restart either an in-ring crashed shard (comes back
                    // with its data, never noticed missing) or a
                    // failed-out one (comes back empty, rejoins at the
                    // next Recover).
                    let idx = rng.gen_range(crashed.len() + down_out.len());
                    let victim = if idx < crashed.len() {
                        crashed.swap_remove(idx)
                    } else {
                        let victim = down_out.swap_remove(idx - crashed.len());
                        up_out.push(victim);
                        victim
                    };
                    events.push(ChaosEvent::Restart(victim));
                }
                3 if isolated.is_none() && budget > 0 && healthy.len() > 2 => {
                    let size = 1 + rng.gen_range(budget.min(healthy.len() - 2));
                    let mut pool = healthy.clone();
                    let group: Vec<NodeId> = (0..size)
                        .map(|_| pool.swap_remove(rng.gen_range(pool.len())))
                        .collect();
                    isolated = Some(group.clone());
                    events.push(ChaosEvent::Partition(group));
                }
                4 if isolated.is_some() => {
                    isolated = None;
                    events.push(ChaosEvent::Heal);
                }
                5 if (down > 0 || !up_out.is_empty()) && in_ring.len() > 2 => {
                    // Recovery fails crashed shards out of the ring and
                    // rejoins restarted ones; an isolated group heals
                    // first (the coordinator cannot tell a partition from
                    // a crash, and failing out an isolated majority would
                    // not be survivable).
                    if isolated.is_some() {
                        isolated = None;
                        events.push(ChaosEvent::Heal);
                    }
                    in_ring.retain(|n| !crashed.contains(n));
                    down_out.append(&mut crashed);
                    in_ring.append(&mut up_out);
                    events.push(ChaosEvent::Recover);
                }
                _ => continue,
            }
            events.push(ChaosEvent::Queries);
        }
        // Deterministic convergence tail: heal, recover, final battery.
        let mut tail = Vec::new();
        if isolated.is_some() {
            tail.push(ChaosEvent::Heal);
        }
        if !crashed.is_empty() || !up_out.is_empty() {
            tail.push(ChaosEvent::Recover);
        }
        tail.push(ChaosEvent::Queries);
        (events, tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = ChaosPlan::generate(42, 8, 12, 2);
        let b = ChaosPlan::generate(42, 8, 12, 2);
        assert_eq!(a.events, b.events);
        let c = ChaosPlan::generate(43, 8, 12, 2);
        assert_ne!(a.events, c.events, "different seeds should diverge");
    }

    #[test]
    fn plans_respect_the_unavailability_budget() {
        for seed in 0..50 {
            let plan = ChaosPlan::generate(seed, 8, 20, 2);
            let mut in_ring: Vec<NodeId> = (1..=8).map(NodeId).collect();
            let mut crashed: Vec<NodeId> = Vec::new();
            let mut pending_rejoin: Vec<NodeId> = Vec::new();
            let mut isolated: Vec<NodeId> = Vec::new();
            for event in &plan.events {
                match event {
                    ChaosEvent::Kill(n) => {
                        assert!(!crashed.contains(n), "double kill in seed {seed}");
                        assert!(in_ring.contains(n), "killed out-of-ring shard, seed {seed}");
                        crashed.push(*n);
                    }
                    ChaosEvent::Restart(n) => {
                        if crashed.contains(n) {
                            crashed.retain(|c| c != n);
                        } else {
                            // Restart of a failed-out shard: it waits for
                            // the next Recover's rejoin handshake.
                            assert!(
                                !in_ring.contains(n),
                                "restart of a healthy in-ring shard, seed {seed}"
                            );
                            pending_rejoin.push(*n);
                        }
                    }
                    ChaosEvent::Partition(group) => isolated.clone_from(group),
                    ChaosEvent::Heal => isolated.clear(),
                    ChaosEvent::Recover => {
                        assert!(
                            isolated.is_empty(),
                            "recover while partitioned, seed {seed}"
                        );
                        in_ring.retain(|n| !crashed.contains(n));
                        crashed.clear();
                        in_ring.append(&mut pending_rejoin);
                    }
                    ChaosEvent::Queries | ChaosEvent::Loss { .. } | ChaosEvent::Ingest { .. } => {}
                }
                let down = in_ring
                    .iter()
                    .filter(|n| crashed.contains(n) || isolated.contains(n))
                    .count();
                assert!(down <= 2, "seed {seed}: {down} unavailable > budget");
                assert!(in_ring.len() >= 2, "seed {seed}: ring shrank below 2");
            }
            assert!(
                pending_rejoin.is_empty(),
                "seed {seed}: plan ends with a restarted shard never rejoined"
            );
        }
    }

    #[test]
    fn some_plans_rejoin_failed_out_workers() {
        // The generator must actually exercise the rejoin path: across a
        // modest seed range, at least one plan restarts a shard that a
        // Recover already failed out (so the next Recover readmits it).
        let mut rejoins = 0usize;
        for seed in 0..50u64 {
            let plan = ChaosPlan::generate(seed, 8, 20, 2);
            let mut crashed: Vec<NodeId> = Vec::new();
            let mut failed_out: Vec<NodeId> = Vec::new();
            for event in &plan.events {
                match event {
                    ChaosEvent::Kill(n) => crashed.push(*n),
                    ChaosEvent::Restart(n) => {
                        if crashed.contains(n) {
                            crashed.retain(|c| c != n);
                        } else if failed_out.contains(n) {
                            failed_out.retain(|c| c != n);
                            rejoins += 1;
                        }
                    }
                    ChaosEvent::Recover => failed_out.append(&mut crashed),
                    _ => {}
                }
            }
        }
        assert!(rejoins > 0, "no plan in 0..50 exercised worker rejoin");
    }

    #[test]
    fn plans_start_with_a_kill_and_end_converged() {
        for seed in [7u64, 11, 23, 47] {
            let plan = ChaosPlan::generate(seed, 8, 15, 2);
            assert!(
                matches!(plan.events.first(), Some(ChaosEvent::Kill(_))),
                "seed {seed}: first event should be a kill"
            );
            assert_eq!(
                plan.events.last(),
                Some(&ChaosEvent::Queries),
                "seed {seed}: plan must end with a final battery"
            );
            // After replaying the whole plan, nothing may remain crashed
            // in-ring, isolated, or restarted-but-never-rejoined.
            let mut crashed: Vec<NodeId> = Vec::new();
            let mut pending_rejoin: Vec<NodeId> = Vec::new();
            let mut in_ring: Vec<NodeId> = (1..=8).map(NodeId).collect();
            let mut partitioned = false;
            for event in &plan.events {
                match event {
                    ChaosEvent::Kill(n) => crashed.push(*n),
                    ChaosEvent::Restart(n) => {
                        if crashed.contains(n) {
                            crashed.retain(|c| c != n);
                        } else {
                            pending_rejoin.push(*n);
                        }
                    }
                    ChaosEvent::Partition(_) => partitioned = true,
                    ChaosEvent::Heal => partitioned = false,
                    ChaosEvent::Recover => {
                        in_ring.retain(|n| !crashed.contains(n));
                        crashed.clear();
                        in_ring.append(&mut pending_rejoin);
                    }
                    ChaosEvent::Queries | ChaosEvent::Loss { .. } | ChaosEvent::Ingest { .. } => {}
                }
            }
            assert!(
                pending_rejoin.is_empty(),
                "seed {seed}: plan ends with a pending rejoin"
            );
            assert!(!partitioned, "seed {seed}: plan ends partitioned");
            assert!(
                in_ring.iter().all(|n| !crashed.contains(n)),
                "seed {seed}: plan ends with a crashed in-ring shard"
            );
        }
    }

    #[test]
    fn lossy_plans_extend_the_base_schedule_without_perturbing_it() {
        for seed in [7u64, 11, 23, 47] {
            let base = ChaosPlan::generate(seed, 8, 15, 2);
            let lossy = ChaosPlan::generate_lossy(seed, 8, 15, 2, 50);
            // Stripping the loss/ingest events recovers the exact base
            // fault schedule: the lossy generator must not perturb it.
            let stripped: Vec<ChaosEvent> = lossy
                .events
                .iter()
                .filter(|e| !matches!(e, ChaosEvent::Loss { .. } | ChaosEvent::Ingest { .. }))
                .cloned()
                .collect();
            assert_eq!(stripped, base.events, "seed {seed}: fault schedule drifted");
            assert_eq!(
                lossy.events.first(),
                Some(&ChaosEvent::Loss { permille: 50 }),
                "seed {seed}: plan must open by degrading the links"
            );
            assert_eq!(
                lossy.events.last(),
                Some(&ChaosEvent::Queries),
                "seed {seed}: plan must end with a final battery"
            );
            // Links heal before the convergence battery, and some ingest
            // happened while they were lossy.
            let last_loss = lossy
                .events
                .iter()
                .rposition(|e| matches!(e, ChaosEvent::Loss { .. }))
                .unwrap();
            assert_eq!(
                lossy.events[last_loss],
                ChaosEvent::Loss { permille: 0 },
                "seed {seed}: links must be healed for the convergence tail"
            );
            let ingests: Vec<(u64, u32)> = lossy
                .events
                .iter()
                .filter_map(|e| match e {
                    ChaosEvent::Ingest { base, count } => Some((*base, *count)),
                    _ => None,
                })
                .collect();
            assert!(!ingests.is_empty(), "seed {seed}: no ingest-under-fault");
            // Id ranges are dense and non-overlapping.
            let mut expect = 1u64 << 32;
            for (batch_base, count) in ingests {
                assert_eq!(batch_base, expect, "seed {seed}: id ranges must chain");
                assert!(count > 0, "seed {seed}: empty ingest batch");
                expect = batch_base + u64::from(count);
            }
            let determinism = ChaosPlan::generate_lossy(seed, 8, 15, 2, 50);
            assert_eq!(lossy.events, determinism.events, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "loss_permille")]
    fn lossy_plans_reject_impossible_drop_rates() {
        let _ = ChaosPlan::generate_lossy(1, 8, 10, 2, 1001);
    }

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = ChaosRng::new(99);
        let mut b = ChaosRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = ChaosRng::new(1);
        let mut buckets = [0usize; 8];
        for _ in 0..800 {
            buckets[r.gen_range(8)] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 50), "skewed draw: {buckets:?}");
        let f = r.gen_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
