//! Coordinator-side failure suspicion.
//!
//! [`HealthView`] accumulates per-node suspicion from *every* RPC outcome
//! the coordinator observes — liveness probes and query-time sub-queries
//! alike (the executor feeds it through the endpoint's call observer).
//! Routing consults the view to prefer healthy replicas immediately,
//! instead of waiting for the next recovery tick to update membership.
//!
//! Suspicion is a simple consecutive-failure counter: any successful call
//! to a node clears it. This deliberately errs toward forgiveness — a
//! single timeout under load must not permanently divert traffic — while
//! still reacting to a dead node on the very first failed sub-query.
//!
//! The view is read-mostly: routing consults it on every ingest batch and
//! every query anchor, while writes happen only once per RPC completion.
//! It is therefore guarded by an `RwLock`, so concurrent query-plane
//! readers never serialise against each other.

use std::collections::HashMap;

use parking_lot::RwLock;
use stcam_net::NodeId;

#[derive(Debug, Default, Clone, Copy)]
struct NodeHealth {
    /// Consecutive failed calls since the last success.
    suspicion: u32,
    /// Lifetime failed calls (diagnostics only).
    total_failures: u64,
    /// Lifetime successful calls (diagnostics only).
    total_successes: u64,
}

/// A live, query-driven view of per-node health.
///
/// Shared between the executor (which records outcomes) and the
/// coordinator's routing logic (which ranks candidates by suspicion).
/// All methods take `&self`; the view is internally synchronised.
#[derive(Debug, Default)]
pub struct HealthView {
    inner: RwLock<HashMap<NodeId, NodeHealth>>,
}

impl HealthView {
    /// Creates an empty view: every node starts unsuspected.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful call to `node`, clearing its suspicion.
    pub fn record_success(&self, node: NodeId) {
        let mut inner = self.inner.write();
        let h = inner.entry(node).or_default();
        h.suspicion = 0;
        h.total_successes += 1;
    }

    /// Records a failed call to `node` (timeout or no response).
    pub fn record_failure(&self, node: NodeId) {
        let mut inner = self.inner.write();
        let h = inner.entry(node).or_default();
        h.suspicion = h.suspicion.saturating_add(1);
        h.total_failures += 1;
    }

    /// Consecutive failures observed against `node` since its last
    /// success (0 for unknown or healthy nodes).
    pub fn suspicion(&self, node: NodeId) -> u32 {
        self.inner.read().get(&node).map_or(0, |h| h.suspicion)
    }

    /// Whether `node` is currently suspected (at least one unanswered
    /// call since its last success).
    pub fn is_suspect(&self, node: NodeId) -> bool {
        self.suspicion(node) > 0
    }

    /// Stably reorders `candidates` by ascending suspicion: healthy nodes
    /// first, most-suspected last. Ties keep their original (ring) order.
    pub fn rank(&self, candidates: &mut [NodeId]) {
        let inner = self.inner.read();
        candidates.sort_by_key(|n| inner.get(n).map_or(0, |h| h.suspicion));
    }

    /// Drops all recorded history for `node`. Called when a restarted
    /// worker is readmitted to the plan: the suspicion it accumulated
    /// while dead describes the *old* incarnation and would otherwise
    /// demote the fresh one in replica ranking until enough successful
    /// calls drained the counter.
    pub fn forget(&self, node: NodeId) {
        self.inner.write().remove(&node);
    }

    /// Every node with recorded history and its current suspicion,
    /// sorted by node id.
    pub fn snapshot(&self) -> Vec<(NodeId, u32)> {
        let mut all: Vec<(NodeId, u32)> = self
            .inner
            .read()
            .iter()
            .map(|(&n, h)| (n, h.suspicion))
            .collect();
        all.sort_by_key(|&(n, _)| n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_clears_suspicion() {
        let view = HealthView::new();
        assert!(!view.is_suspect(NodeId(1)));
        view.record_failure(NodeId(1));
        view.record_failure(NodeId(1));
        assert_eq!(view.suspicion(NodeId(1)), 2);
        assert!(view.is_suspect(NodeId(1)));
        view.record_success(NodeId(1));
        assert_eq!(view.suspicion(NodeId(1)), 0);
        assert!(!view.is_suspect(NodeId(1)));
    }

    #[test]
    fn rank_prefers_healthy_and_keeps_ring_order_on_ties() {
        let view = HealthView::new();
        view.record_failure(NodeId(2));
        view.record_failure(NodeId(2));
        view.record_failure(NodeId(4));
        let mut candidates = vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)];
        view.rank(&mut candidates);
        assert_eq!(candidates, vec![NodeId(3), NodeId(5), NodeId(4), NodeId(2)]);
    }

    #[test]
    fn forget_erases_history() {
        let view = HealthView::new();
        view.record_failure(NodeId(4));
        view.record_failure(NodeId(4));
        view.record_failure(NodeId(5));
        view.forget(NodeId(4));
        assert_eq!(view.suspicion(NodeId(4)), 0);
        assert!(!view.is_suspect(NodeId(4)));
        // Other nodes keep their history; forgetting unknowns is a no-op.
        assert_eq!(view.suspicion(NodeId(5)), 1);
        view.forget(NodeId(99));
        assert_eq!(view.snapshot(), vec![(NodeId(5), 1)]);
    }

    #[test]
    fn snapshot_reports_known_nodes_sorted() {
        let view = HealthView::new();
        view.record_failure(NodeId(9));
        view.record_success(NodeId(3));
        assert_eq!(view.snapshot(), vec![(NodeId(3), 0), (NodeId(9), 1)]);
    }

    /// Contention regression: with the read-mostly `RwLock`, a pack of
    /// reader threads must make progress while writers interleave, and
    /// every write must still be observed exactly once. A return to an
    /// exclusive lock would still pass the consistency half but shows up
    /// as a wall-clock regression: the reader phase with a concurrent
    /// writer must not cost dramatically more than the same reads with
    /// the lock uncontended.
    #[test]
    fn concurrent_readers_are_not_serialised_by_a_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Instant;

        const READERS: usize = 8;
        const READS: usize = 20_000;
        let view = HealthView::new();
        for n in 0..4u32 {
            view.record_failure(NodeId(n));
        }

        let read_pass = |view: &HealthView| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..READERS)
                    .map(|i| {
                        let view = &view;
                        scope.spawn(move || {
                            let mut acc = 0u64;
                            for j in 0..READS {
                                let node = NodeId(((i + j) % 4) as u32);
                                acc += view.suspicion(node) as u64;
                                acc += view.is_suspect(node) as u64;
                            }
                            acc
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
        };

        // Uncontended baseline.
        let started = Instant::now();
        let baseline_acc = read_pass(&view);
        let baseline = started.elapsed();
        assert!(baseline_acc > 0);

        // Same read load with one writer hammering the view.
        let stop = AtomicBool::new(false);
        let (contended, writes) = std::thread::scope(|scope| {
            let writer = {
                let (view, stop) = (&view, &stop);
                scope.spawn(move || {
                    let mut writes = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        view.record_failure(NodeId(7));
                        writes += 1;
                    }
                    writes
                })
            };
            let started = Instant::now();
            let acc = read_pass(&view);
            let contended = started.elapsed();
            stop.store(true, Ordering::Relaxed);
            assert!(acc > 0);
            (contended, writer.join().unwrap())
        });

        // Every write landed (consistency under concurrency).
        assert_eq!(view.suspicion(NodeId(7)) as u64, writes);
        assert!(writes > 0, "writer never ran");
        // Generous bound: catches a reintroduced exclusive lock (which
        // serialises readers behind a busy writer and blows this up by
        // an order of magnitude) without flaking on slow CI.
        let ceiling = baseline.mul_f64(20.0) + std::time::Duration::from_millis(250);
        assert!(
            contended < ceiling,
            "reader pass under write load took {contended:?} (uncontended {baseline:?}); \
             readers appear to serialise against the writer"
        );
    }
}
