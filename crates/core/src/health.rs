//! Coordinator-side failure suspicion.
//!
//! [`HealthView`] accumulates per-node suspicion from *every* RPC outcome
//! the coordinator observes — liveness probes and query-time sub-queries
//! alike (the executor feeds it through the endpoint's call observer).
//! Routing consults the view to prefer healthy replicas immediately,
//! instead of waiting for the next recovery tick to update membership.
//!
//! Suspicion is a simple consecutive-failure counter: any successful call
//! to a node clears it. This deliberately errs toward forgiveness — a
//! single timeout under load must not permanently divert traffic — while
//! still reacting to a dead node on the very first failed sub-query.

use std::collections::HashMap;

use parking_lot::Mutex;
use stcam_net::NodeId;

#[derive(Debug, Default, Clone, Copy)]
struct NodeHealth {
    /// Consecutive failed calls since the last success.
    suspicion: u32,
    /// Lifetime failed calls (diagnostics only).
    total_failures: u64,
    /// Lifetime successful calls (diagnostics only).
    total_successes: u64,
}

/// A live, query-driven view of per-node health.
///
/// Shared between the executor (which records outcomes) and the
/// coordinator's routing logic (which ranks candidates by suspicion).
/// All methods take `&self`; the view is internally synchronised.
#[derive(Debug, Default)]
pub struct HealthView {
    inner: Mutex<HashMap<NodeId, NodeHealth>>,
}

impl HealthView {
    /// Creates an empty view: every node starts unsuspected.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful call to `node`, clearing its suspicion.
    pub fn record_success(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        let h = inner.entry(node).or_default();
        h.suspicion = 0;
        h.total_successes += 1;
    }

    /// Records a failed call to `node` (timeout or no response).
    pub fn record_failure(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        let h = inner.entry(node).or_default();
        h.suspicion = h.suspicion.saturating_add(1);
        h.total_failures += 1;
    }

    /// Consecutive failures observed against `node` since its last
    /// success (0 for unknown or healthy nodes).
    pub fn suspicion(&self, node: NodeId) -> u32 {
        self.inner.lock().get(&node).map_or(0, |h| h.suspicion)
    }

    /// Whether `node` is currently suspected (at least one unanswered
    /// call since its last success).
    pub fn is_suspect(&self, node: NodeId) -> bool {
        self.suspicion(node) > 0
    }

    /// Stably reorders `candidates` by ascending suspicion: healthy nodes
    /// first, most-suspected last. Ties keep their original (ring) order.
    pub fn rank(&self, candidates: &mut [NodeId]) {
        let inner = self.inner.lock();
        candidates.sort_by_key(|n| inner.get(n).map_or(0, |h| h.suspicion));
    }

    /// Every node with recorded history and its current suspicion,
    /// sorted by node id.
    pub fn snapshot(&self) -> Vec<(NodeId, u32)> {
        let mut all: Vec<(NodeId, u32)> = self
            .inner
            .lock()
            .iter()
            .map(|(&n, h)| (n, h.suspicion))
            .collect();
        all.sort_by_key(|&(n, _)| n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_clears_suspicion() {
        let view = HealthView::new();
        assert!(!view.is_suspect(NodeId(1)));
        view.record_failure(NodeId(1));
        view.record_failure(NodeId(1));
        assert_eq!(view.suspicion(NodeId(1)), 2);
        assert!(view.is_suspect(NodeId(1)));
        view.record_success(NodeId(1));
        assert_eq!(view.suspicion(NodeId(1)), 0);
        assert!(!view.is_suspect(NodeId(1)));
    }

    #[test]
    fn rank_prefers_healthy_and_keeps_ring_order_on_ties() {
        let view = HealthView::new();
        view.record_failure(NodeId(2));
        view.record_failure(NodeId(2));
        view.record_failure(NodeId(4));
        let mut candidates = vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)];
        view.rank(&mut candidates);
        assert_eq!(candidates, vec![NodeId(3), NodeId(5), NodeId(4), NodeId(2)]);
    }

    #[test]
    fn snapshot_reports_known_nodes_sorted() {
        let view = HealthView::new();
        view.record_failure(NodeId(9));
        view.record_success(NodeId(3));
        assert_eq!(view.snapshot(), vec![(NodeId(3), 0), (NodeId(9), 1)]);
    }
}
