//! `stcam` — a distributed framework for spatio-temporal analysis on
//! large-scale camera networks.
//!
//! This crate is the system's core: it shards the observation stream of a
//! metropolitan camera network across a cluster of worker nodes by space,
//! executes spatio-temporal queries by scatter/gather over the shards, and
//! layers trajectory analysis (cross-camera track stitching) and standing
//! continuous queries on top.
//!
//! # Architecture
//!
//! ```text
//!  cameras ──observations──▶ Coordinator ──route by cell──▶ Worker 1..N
//!                               │   ▲                        │ StIndex
//!      range / kNN / heatmap ───┘   └──── partial results ───┘ replicas
//! ```
//!
//! * [`PartitionMap`] — space is cut into macro-cells on a Z-order curve;
//!   contiguous curve runs are assigned to workers (uniform) or packed by
//!   measured load (load-aware).
//! * [`Worker`] — owns the `stcam-index` shard for its cells, answers
//!   sub-queries through a table-driven per-operation dispatch (with
//!   per-op serve counters), evaluates continuous-query predicates at
//!   ingest, and forwards replicas to its ring successors.
//! * [`exec`] — the typed scatter/gather layer. Every distributed
//!   operation is a [`exec::DistributedOp`] (targets / request / decode /
//!   merge); the [`exec::Executor`] owns parallel fan-out, per-operation
//!   timeout/retry policy ([`OpPolicy`] — idempotent reads retry
//!   deterministically after timeouts, migration steps never do), and
//!   per-operation telemetry ([`OpStats`]: sub-queries, retries, wire
//!   bytes, scatter/merge latency split).
//! * [`Coordinator`] — the mutex-guarded **control plane**: routes
//!   ingest batches, chains extract/adopt migrations for rebalance,
//!   turns probe failures into failover, and keeps the continuous-query
//!   registry. After every membership or partition mutation it
//!   *publishes* an immutable, epoch-tagged [`QueryPlan`] snapshot to
//!   the query plane.
//! * [`QueryPlane`] — the lock-free **read path**: composes queries
//!   (two-phase pruned kNN is [`exec::KnnPhase1Op`] feeding
//!   [`exec::KnnPhase2Op`], heat-maps, top-cells, …) against the current
//!   published plan, on a pool of fabric endpoints picked round-robin —
//!   N client threads scatter/gather concurrently with zero shared
//!   locking. Reads run in a [`QueryMode`]: `Strict` fails on any lost
//!   shard with [`StcamError::PartialFailure`]; `BestEffort` returns a
//!   [`Degraded`] value whose [`Completeness`] accounts for shards
//!   answered, replicas used, and shards missing. Either way the
//!   executor first tries replica failover — re-issuing a dead shard's
//!   sub-query to its ring successors — guided by a [`HealthView`] of
//!   per-node suspicion fed by every RPC outcome.
//! * [`stitch`] — converts per-camera observations into tracklets and
//!   associates them across adjacent cameras using appearance distance
//!   gated by learned transition-time windows.
//! * [`Cluster`] — the embeddable facade: spins up a fabric, N worker
//!   threads and a coordinator, and exposes the whole system behind plain
//!   method calls.
//!
//! # Example
//!
//! ```
//! use stcam::{Cluster, ClusterConfig};
//! use stcam_geo::{BBox, Point, TimeInterval, Timestamp};
//!
//! let extent = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0));
//! let cluster = Cluster::launch(ClusterConfig::new(extent, 4))?;
//! // No data ingested yet: queries come back empty.
//! let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
//! let hits = cluster.range_query(BBox::around(Point::new(1000.0, 1000.0), 200.0), window)?;
//! assert!(hits.is_empty());
//! cluster.shutdown();
//! # Ok::<(), stcam::StcamError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
pub mod chaos;
mod cluster;
mod continuous;
mod coordinator;
mod error;
pub mod exec;
mod health;
mod ingest;
mod partition;
pub(crate) mod plane;
mod protocol;
pub mod repair;
pub mod snapshot;
pub mod stitch;
mod worker;

pub use baseline::CentralizedStore;
pub use cluster::{Cluster, ClusterConfig};
pub use continuous::{ContinuousQueryId, Notification, Predicate};
pub use coordinator::{ClusterStats, Coordinator, RebalanceReport};
pub use error::StcamError;
pub use exec::{Completeness, Degraded, DistributedOp, Executor, OpPolicy, OpStats, QueryMode};
pub use health::HealthView;
pub use ingest::Ingestor;
pub use partition::{PartitionMap, PartitionPolicy};
pub use plane::{QueryPlan, QueryPlane};
pub use protocol::{
    DigestEntry, DigestReport, GridSpecMsg, ReplicaDigestEntry, Request, Response,
    SegmentDigestEntry, WorkerStatsMsg,
};
pub use repair::{RepairBudget, RepairReport};
pub use worker::{Worker, WorkerConfig, WorkerHandle};
